#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "planning/learner.hpp"

namespace coreda::planning {

/// Writes a trained policy snapshot — the Q table plus the state/action
/// vocabularies that give its indices meaning — as a line-oriented text
/// format ("coreda-policy v1"). A deployment saves after the training
/// phase so a server restart does not cost the user their learned routine.
void save_policy(std::ostream& out, const RoutineLearner& learner);

/// Restores a snapshot produced by save_policy into `learner`.
///
/// The learner must be built over the same ADL: step and tool
/// vocabularies are validated and a std::runtime_error is thrown on any
/// mismatch (or on a malformed/truncated snapshot), leaving the learner
/// unchanged on failure.
void load_policy(std::istream& in, RoutineLearner& learner);

// ---------------------------------------------------------------------------
// "coreda-policy v2" — the compact binary snapshot the serving tier uses
// (serve::PolicyStore). Layout, all integers little-endian u64, doubles as
// little-endian IEEE-754 bit patterns:
//
//   magic     8 bytes  "CRDAPOL2"
//   version   u64      monotonically increasing per write-back
//   n_steps   u64      |step vocabulary|
//   n_tools   u64      |tool vocabulary|
//   n_states  u64      Q rows
//   n_actions u64      Q columns
//   steps     n_steps  x u64
//   tools     n_tools  x u64
//   q         n_states x n_actions x f64, row-major
//   checksum  u64      FNV-1a 64 over every preceding byte
//
// The trailing checksum rejects torn or bit-flipped files; the vocabularies
// reject a snapshot from a different ADL. Loads stage into a scratch table
// and only commit on full validation, so the destination is never left
// half-written — the same contract as the v1 text loader.
// ---------------------------------------------------------------------------

/// The 8 magic bytes opening every v2 snapshot.
inline constexpr char kPolicyV2Magic[8] = {'C', 'R', 'D', 'A',
                                           'P', 'O', 'L', '2'};

/// Header + integrity summary of a v2 snapshot, readable without a learner
/// (the CLI `policy inspect` path).
struct PolicyV2Info {
  std::uint64_t version = 0;
  std::vector<adl::StepId> steps;
  std::vector<adl::ToolId> tools;
  std::size_t num_states = 0;
  std::size_t num_actions = 0;
  bool checksum_ok = false;
};

/// Writes a v2 snapshot of `q` stamped with `version` under the given
/// vocabularies (the PolicyStore write-back path, which owns the vocab and
/// the per-user table but no learner). Returns the bytes written, so stores
/// can account flush traffic.
std::size_t save_policy_v2(std::ostream& out,
                           std::span<const adl::StepId> steps,
                           std::span<const adl::ToolId> tools,
                           const rl::QTable& q, std::uint64_t version);

/// Writes a v2 snapshot of `learner`'s table and vocabularies.
void save_policy_v2(std::ostream& out, const RoutineLearner& learner,
                    std::uint64_t version = 1);

/// Restores a v2 snapshot into `q`, validating magic, checksum, and the
/// expected vocabularies/dimensions. Returns the snapshot version. Throws
/// std::runtime_error on any mismatch or corruption; `q` is only written
/// after full validation (unchanged on failure).
std::uint64_t load_policy_v2(std::istream& in,
                             std::span<const adl::StepId> steps,
                             std::span<const adl::ToolId> tools,
                             rl::QTable& q);

/// Restores a v2 snapshot into `learner` (vocabularies taken from its
/// codecs). Returns the snapshot version; learner unchanged on failure.
std::uint64_t load_policy_v2(std::istream& in, RoutineLearner& learner);

/// Parses a v2 header + integrity check without needing a learner. Throws
/// std::runtime_error when the stream is not a structurally complete v2
/// snapshot; a wrong checksum is reported via `checksum_ok`, not thrown,
/// so operators can inspect a damaged file.
PolicyV2Info inspect_policy_v2(std::istream& in);

// ---------------------------------------------------------------------------
// "coreda-policy v3" — delta-encoded snapshot chains.
//
// A v3 file is one *full* record (byte-identical to the v2 layout except the
// magic reads "CRDAPOL3") followed by zero or more appended *delta* records,
// each diffing changed Q rows against the table produced by everything
// before it:
//
//   magic     8 bytes  "CRDADEL3"
//   version   u64      version this delta produces
//   parent    u64      version it applies on top of (chain check)
//   n_rows    u64      changed Q rows in this delta
//   n_actions u64      row width (must match the anchor)
//   rows      n_rows x (u64 row_index + n_actions x f64)
//   checksum  u64      FNV-1a 64 over every preceding byte of THIS record
//
// Appending a delta touches only the file tail, so a snapshot of a
// 100-row table that changed 3 rows writes ~3 rows, not 100 — the
// write-amplification fix for large-vocab tables. Integrity inherits the
// v2 posture per record: a corrupt/torn/mis-parented delta ends the chain
// at the longest valid prefix (the loader returns that prefix's table and
// version — exactly what was durable before the bad append), while a
// corrupt full record rejects the file outright, as v2 does. Every K
// deltas the writer rebases: rewrites one fresh full record (atomic
// tmp+rename), bounding both chain-replay time and tail-corruption
// blast radius.
// ---------------------------------------------------------------------------

/// The 8 magic bytes opening a v3 snapshot file (full/anchor record).
inline constexpr char kPolicyV3Magic[8] = {'C', 'R', 'D', 'A',
                                           'P', 'O', 'L', '3'};
/// The 8 magic bytes opening each appended v3 delta record.
inline constexpr char kPolicyV3DeltaMagic[8] = {'C', 'R', 'D', 'A',
                                                'D', 'E', 'L', '3'};

/// Writes a v3 full (anchor) record. Returns the bytes written.
std::size_t save_policy_v3_full(std::ostream& out,
                                std::span<const adl::StepId> steps,
                                std::span<const adl::ToolId> tools,
                                const rl::QTable& q, std::uint64_t version);

/// Serializes one delta record carrying every row where `q` differs
/// bitwise from `base` (shapes must match — std::invalid_argument).
/// `parent` must name the version the chain currently ends at. Returns the
/// record's bytes so callers can account flush traffic; write it with
/// ostream::write in append mode.
std::string encode_policy_v3_delta(const rl::QTable& base,
                                   const rl::QTable& q,
                                   std::uint64_t version,
                                   std::uint64_t parent);

// Shared changed-row codec. Both the v3 snapshot files above and the fleet
// tier's segment delta records (serve/segment_store) encode "rows of q that
// differ bitwise from base" the same way: u64 row index followed by
// num_actions LE f64 values per changed row. These two helpers are that
// codec; keeping them here means the formats cannot drift apart.

/// Number of rows where `q` differs bitwise from `base` (shapes must match —
/// std::invalid_argument). Allocation-free.
std::size_t count_changed_rows(const rl::QTable& base, const rl::QTable& q);

/// Encodes every changed row into `dst`, which must have room for
/// count_changed_rows(base, q) * (1 + q.num_actions()) * 8 bytes. Returns
/// one past the last byte written. Allocation-free.
unsigned char* encode_changed_rows(const rl::QTable& base, const rl::QTable& q,
                                   unsigned char* dst);

/// Result of loading a v3 chain.
struct PolicyV3Chain {
  std::uint64_t version = 0;      ///< version after the applied prefix
  std::size_t deltas_applied = 0; ///< valid deltas folded in
  /// True when a torn/corrupt/mis-parented tail record was skipped (the
  /// crash-recovery path: everything durable before it was still loaded).
  bool tail_skipped = false;
};

/// Restores a v3 chain into `q`: validates the full record exactly as v2
/// (magic/checksum/vocabulary/dimensions — std::runtime_error, `q`
/// untouched), then applies the longest valid prefix of delta records.
PolicyV3Chain load_policy_v3(std::istream& in,
                             std::span<const adl::StepId> steps,
                             std::span<const adl::ToolId> tools,
                             rl::QTable& q);

/// Chain-level summary of a v3 file, readable without a learner (CLI
/// `policy inspect`). Throws only when the full record is structurally
/// invalid; a bad anchor checksum is reported, not thrown.
struct PolicyV3Info {
  PolicyV2Info anchor;             ///< the full record's header
  std::uint64_t version = 0;       ///< version after the valid chain
  std::size_t delta_count = 0;     ///< valid deltas since the anchor
  std::size_t on_disk_bytes = 0;   ///< anchor + valid delta bytes
  /// Bytes one fresh full snapshot of the reconstructed table would take —
  /// the denominator of the delta format's write savings.
  std::size_t reconstructed_bytes = 0;
  bool tail_skipped = false;       ///< invalid tail record(s) ignored
};
PolicyV3Info inspect_policy_v3(std::istream& in);

// ---------------------------------------------------------------------------
// "coreda-bundle v1" — one record holding every ADL policy of one user.
//
// A resident who interleaves ADLs mid-session needs all of their per-ADL
// policy snapshots restored together; storing them as separate records
// reintroduces torn multi-file states (tea restored, tooth-brushing not).
// The bundle frames several named v2 records inside ONE checksummed record,
// so a user's whole home policy set is durable or absent atomically:
//
//   magic     8 bytes  "CRDABNDL"
//   version   u64      monotonically increasing per write-back
//   count     u64      number of named entries
//   entries   count x { name_len u64, name bytes,
//                       full v2 record (self-checksummed, see above) }
//   checksum  u64      FNV-1a 64 over every preceding byte
//
// Loads are all-or-nothing: every entry must parse, pass both checksum
// layers, match a requested slot by name, and fill every slot — otherwise
// std::runtime_error and no destination table is touched.
// ---------------------------------------------------------------------------

/// The 8 magic bytes opening every bundle record.
inline constexpr char kPolicyBundleMagic[8] = {'C', 'R', 'D', 'A',
                                               'B', 'N', 'D', 'L'};

/// One named policy to embed when saving a bundle. Non-owning views; the
/// caller's vocabularies and table must stay alive across the call.
struct PolicyBundleItem {
  std::string_view name;
  std::span<const adl::StepId> steps;
  std::span<const adl::ToolId> tools;
  const rl::QTable* q = nullptr;
};

/// Writes a bundle of `items` stamped with `version`. Entry versions inside
/// the embedded v2 records carry the same stamp. Returns the bytes written.
/// Throws std::invalid_argument on duplicate names or a null table.
std::size_t save_policy_bundle(std::ostream& out,
                               std::span<const PolicyBundleItem> items,
                               std::uint64_t version);

/// One destination for a bundle entry, matched by name.
struct PolicyBundleSlot {
  std::string_view name;
  std::span<const adl::StepId> steps;
  std::span<const adl::ToolId> tools;
  rl::QTable* q = nullptr;
};

/// Restores a bundle into `slots`: every entry must match exactly one slot
/// by name and every slot must be filled. Validates the outer checksum,
/// then each embedded v2 record exactly as load_policy_v2 (magic, checksum,
/// vocabulary, dimensions). Returns the bundle version. Throws
/// std::runtime_error on any mismatch or corruption; no slot table is
/// written unless the whole bundle validates.
std::uint64_t load_policy_bundle(std::istream& in,
                                 std::span<const PolicyBundleSlot> slots);

/// Snapshot format sniffing for operator tooling: peeks at the stream head
/// and rewinds. kUnknown means no magic matched.
enum class PolicyFormat { kUnknown, kTextV1, kBinaryV2, kBinaryV3 };
PolicyFormat detect_policy_format(std::istream& in);

/// Loads either format into `learner` (v1 text snapshots predate versioning
/// and report version 0). Throws std::runtime_error when the stream is
/// neither format or fails its format's validation.
std::uint64_t load_policy_any(std::istream& in, RoutineLearner& learner);

}  // namespace coreda::planning
