#include "planning/learner.hpp"

namespace coreda::planning {

namespace {

std::vector<adl::StepId> step_vocabulary(const adl::Adl& adl) {
  // ToolIds double as StepIds, so the vocabulary is the ADL's tool set.
  std::vector<adl::StepId> out;
  for (adl::ToolId t : adl.tools()) out.push_back(t);
  return out;
}

}  // namespace

RoutineLearner::RoutineLearner(const adl::Adl& adl, util::Rng rng,
                               LearnerConfig config)
    : routine_(&adl.primary_routine()),
      config_(config),
      states_(step_vocabulary(adl)),
      actions_(adl.tools()),
      reward_(config.reward),
      learner_(states_.num_states(), actions_.num_actions(), config.td),
      policy_(config.epsilon, config.epsilon_decay, config.min_epsilon),
      rng_(rng) {
  const std::size_t num_actions = actions_.num_actions();
  decoded_actions_.reserve(num_actions);
  for (rl::ActionId a = 0; a < num_actions; ++a) {
    decoded_actions_.push_back(actions_.decode(a));
  }
  const auto& symbols = states_.symbols();
  step_rewards_.resize(symbols.size() * num_actions);
  terminal_rewards_.resize(symbols.size() * num_actions);
  for (std::size_t sym = 0; sym < symbols.size(); ++sym) {
    for (rl::ActionId a = 0; a < num_actions; ++a) {
      step_rewards_[sym * num_actions + a] =
          reward_(decoded_actions_[a], symbols[sym], /*completes=*/false);
      terminal_rewards_[sym * num_actions + a] =
          reward_(decoded_actions_[a], symbols[sym], /*completes=*/true);
    }
  }
}

void RoutineLearner::train_episode(std::span<const adl::StepId> steps) {
  // Keep only steps the codec knows; sensing can interleave noise from
  // tools of other ADLs, which must not crash the learner. Every recorded
  // process implicitly starts from "nothing is done" — the paper's
  // StepID 0, prefixed here — so training the <idle, idle> context teaches
  // the planner to prompt the *first* step of the routine, which the
  // deployed system needs when a user freezes before ever touching a tool.
  //
  // Encoding <idle, s> yields 0 * n + symbol_index(s), so the encode doubles
  // as the vocabulary test and hands back the symbol index the state and
  // reward-row lookups below are built from.
  episode_steps_.clear();
  episode_symbols_.clear();
  episode_steps_.push_back(adl::kIdleStep);
  episode_symbols_.push_back(0);
  for (adl::StepId s : steps) {
    if (const auto sym = states_.encode(PlannerState{adl::kIdleStep, s})) {
      episode_steps_.push_back(s);
      episode_symbols_.push_back(static_cast<std::uint32_t>(*sym));
    } else {
      ++skipped_;
    }
  }

  ++episodes_;
  if (episode_steps_.size() < 3) {  // idle prefix + fewer than two valid steps
    policy_.decay_epsilon();
    return;
  }

  const std::size_t num_symbols = states_.symbols().size();
  const std::size_t num_actions = actions_.num_actions();
  learner_.begin_episode();
  for (std::size_t i = 1; i < episode_steps_.size(); ++i) {
    const std::uint32_t prev_sym = i >= 2 ? episode_symbols_[i - 2] : 0;
    const std::uint32_t cur_sym = episode_symbols_[i - 1];
    const std::uint32_t next_sym = episode_symbols_[i];
    const auto s = static_cast<rl::StateId>(prev_sym * num_symbols + cur_sym);
    const auto s_next =
        static_cast<rl::StateId>(cur_sym * num_symbols + next_sym);

    const rl::ActionId a = policy_.select(learner_.q(), s, rng_);

    // A transition is terminal only when the ADL actually completed. A
    // sequence truncated by sensing loss just *ends* — flagging its last
    // transition terminal would erase the bootstrap and drag the correct
    // action's value toward the bare intermediate reward.
    const bool completes = i + 1 == episode_steps_.size() &&
                           routine_->is_terminal(episode_steps_[i]);
    const std::span<const double> rewards{
        (completes ? terminal_rewards_ : step_rewards_).data() +
            next_sym * num_actions,
        num_actions};

    learner_.observe(rl::Transition{s, a, rewards[a], s_next,
                                    /*terminal=*/completes});
    if (config_.counterfactual_sweep) {
      learner_.update_counterfactual_row(s, rewards, a, s_next, completes);
    }
  }
  policy_.decay_epsilon();
}

void RoutineLearner::import_q(const rl::QTable& q) {
  rl::QTable& mine = learner_.q();
  if (q.num_states() != mine.num_states() ||
      q.num_actions() != mine.num_actions()) {
    throw std::invalid_argument("RoutineLearner::import_q: shape mismatch");
  }
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      mine.set(s, a, q.get(s, a));
    }
  }
}

void RoutineLearner::begin_retraining(const rl::QTable& q, util::Rng rng) {
  import_q(q);
  rng_ = rng;
  policy_.reset_epsilon(config_.epsilon);
}

std::optional<PlannedPrompt> RoutineLearner::predict(
    PlannerState state) const {
  const auto s = states_.encode(state);
  if (!s) return std::nullopt;
  const rl::ActionId a = learner_.q().best_action(*s);
  return PlannedPrompt{decoded_actions_[a], learner_.q().get(*s, a)};
}

std::vector<PlannerState> RoutineLearner::predicting_states() const {
  std::vector<PlannerState> out;
  // The fully-idle context prompts the first step (session start).
  out.push_back(PlannerState{adl::kIdleStep, adl::kIdleStep});
  adl::StepId prev = adl::kIdleStep;
  const auto& steps = routine_->steps();
  // The terminal step has no successor to prompt, so it is excluded.
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    out.push_back(PlannerState{prev, steps[i].step_id()});
    prev = steps[i].step_id();
  }
  return out;
}

bool RoutineLearner::greedy_correct(PlannerState state) const {
  const auto prompt = predict(state);
  if (!prompt) return false;
  const adl::StepId want = state.cur == adl::kIdleStep
                               ? routine_->first_step()
                               : routine_->next_after(state.cur);
  return prompt->action.tool == want;
}

double RoutineLearner::greedy_accuracy() const {
  const auto states = predicting_states();
  std::size_t hits = 0;
  for (const PlannerState& s : states) {
    if (greedy_correct(s)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(states.size());
}

double RoutineLearner::behaviour_accuracy() const {
  const auto states = predicting_states();
  const double eps = policy_.epsilon();
  // Exploring uniformly, both reminding levels of the correct tool count as
  // a correct prompt.
  const double explore_hit =
      2.0 / static_cast<double>(actions_.num_actions());
  double sum = 0.0;
  for (const PlannerState& s : states) {
    const double greedy_hit = greedy_correct(s) ? 1.0 : 0.0;
    sum += (1.0 - eps) * greedy_hit + eps * explore_hit;
  }
  return sum / static_cast<double>(states.size());
}

}  // namespace coreda::planning
