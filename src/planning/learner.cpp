#include "planning/learner.hpp"

namespace coreda::planning {

namespace {

std::vector<adl::StepId> step_vocabulary(const adl::Adl& adl) {
  // ToolIds double as StepIds, so the vocabulary is the ADL's tool set.
  std::vector<adl::StepId> out;
  for (adl::ToolId t : adl.tools()) out.push_back(t);
  return out;
}

}  // namespace

RoutineLearner::RoutineLearner(const adl::Adl& adl, util::Rng rng,
                               LearnerConfig config)
    : routine_(&adl.primary_routine()),
      config_(config),
      states_(step_vocabulary(adl)),
      actions_(adl.tools()),
      reward_(config.reward),
      learner_(states_.num_states(), actions_.num_actions(), config.td),
      policy_(config.epsilon, config.epsilon_decay, config.min_epsilon),
      rng_(rng) {}

void RoutineLearner::train_episode(std::span<const adl::StepId> steps) {
  // Keep only steps the codec knows; sensing can interleave noise from
  // tools of other ADLs, which must not crash the learner.
  std::vector<adl::StepId> valid;
  valid.reserve(steps.size());
  for (adl::StepId s : steps) {
    if (states_.encode(PlannerState{adl::kIdleStep, s})) {
      valid.push_back(s);
    } else {
      ++skipped_;
    }
  }

  ++episodes_;
  if (valid.size() < 2) {
    policy_.decay_epsilon();
    return;
  }

  // Every recorded process implicitly starts from "nothing is done" — the
  // paper's StepID 0. Training the <idle, idle> context teaches the planner
  // to prompt the *first* step of the routine, which the deployed system
  // needs when a user freezes before ever touching a tool.
  std::vector<adl::StepId> with_idle;
  with_idle.reserve(valid.size() + 1);
  with_idle.push_back(adl::kIdleStep);
  with_idle.insert(with_idle.end(), valid.begin(), valid.end());
  valid = std::move(with_idle);

  learner_.begin_episode();
  adl::StepId prev = adl::kIdleStep;
  adl::StepId cur = valid[0];
  for (std::size_t i = 1; i < valid.size(); ++i) {
    const adl::StepId next = valid[i];
    const auto s = states_.encode(PlannerState{prev, cur});
    const auto s_next = states_.encode(PlannerState{cur, next});

    const rl::ActionId a = policy_.select(learner_.q(), *s, rng_);
    const PlannerAction action = actions_.decode(a);

    // A transition is terminal only when the ADL actually completed. A
    // sequence truncated by sensing loss just *ends* — flagging its last
    // transition terminal would erase the bootstrap and drag the correct
    // action's value toward the bare intermediate reward.
    const bool completes = i + 1 == valid.size() &&
                           routine_->is_terminal(next);
    const double r = reward_(action, next, completes);

    learner_.observe(rl::Transition{*s, a, r, *s_next,
                                    /*terminal=*/completes});

    if (config_.counterfactual_sweep) {
      for (rl::ActionId other = 0; other < actions_.num_actions(); ++other) {
        if (other == a) continue;
        const double r_other =
            reward_(actions_.decode(other), next, completes);
        learner_.update_counterfactual(*s, other, r_other, *s_next,
                                       completes);
      }
    }
    prev = cur;
    cur = next;
  }
  policy_.decay_epsilon();
}

void RoutineLearner::import_q(const rl::QTable& q) {
  rl::QTable& mine = learner_.q();
  if (q.num_states() != mine.num_states() ||
      q.num_actions() != mine.num_actions()) {
    throw std::invalid_argument("RoutineLearner::import_q: shape mismatch");
  }
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      mine.set(s, a, q.get(s, a));
    }
  }
}

std::optional<PlannedPrompt> RoutineLearner::predict(
    PlannerState state) const {
  const auto s = states_.encode(state);
  if (!s) return std::nullopt;
  const rl::ActionId a = learner_.q().best_action(*s);
  return PlannedPrompt{actions_.decode(a), learner_.q().get(*s, a)};
}

std::vector<PlannerState> RoutineLearner::predicting_states() const {
  std::vector<PlannerState> out;
  // The fully-idle context prompts the first step (session start).
  out.push_back(PlannerState{adl::kIdleStep, adl::kIdleStep});
  adl::StepId prev = adl::kIdleStep;
  const auto& steps = routine_->steps();
  // The terminal step has no successor to prompt, so it is excluded.
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    out.push_back(PlannerState{prev, steps[i].step_id()});
    prev = steps[i].step_id();
  }
  return out;
}

bool RoutineLearner::greedy_correct(PlannerState state) const {
  const auto prompt = predict(state);
  if (!prompt) return false;
  const adl::StepId want = state.cur == adl::kIdleStep
                               ? routine_->first_step()
                               : routine_->next_after(state.cur);
  return prompt->action.tool == want;
}

double RoutineLearner::greedy_accuracy() const {
  const auto states = predicting_states();
  std::size_t hits = 0;
  for (const PlannerState& s : states) {
    if (greedy_correct(s)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(states.size());
}

double RoutineLearner::behaviour_accuracy() const {
  const auto states = predicting_states();
  const double eps = policy_.epsilon();
  // Exploring uniformly, both reminding levels of the correct tool count as
  // a correct prompt.
  const double explore_hit =
      2.0 / static_cast<double>(actions_.num_actions());
  double sum = 0.0;
  for (const PlannerState& s : states) {
    const double greedy_hit = greedy_correct(s) ? 1.0 : 0.0;
    sum += (1.0 - eps) * greedy_hit + eps * explore_hit;
  }
  return sum / static_cast<double>(states.size());
}

}  // namespace coreda::planning
