#include "planning/lane_trainer.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::planning {

namespace {

std::vector<adl::StepId> step_vocabulary(const adl::Adl& adl) {
  std::vector<adl::StepId> out;
  for (adl::ToolId t : adl.tools()) out.push_back(t);
  return out;
}

}  // namespace

LaneTrainer::LaneTrainer(const adl::Adl& adl, std::size_t width,
                         LearnerConfig config, std::size_t max_episode_steps)
    : routine_(&adl.primary_routine()),
      config_(config),
      states_(step_vocabulary(adl)),
      actions_(adl.tools()),
      reward_(config.reward),
      engine_(width, states_.num_states(), actions_.num_actions(),
              // One trace entry per transition; the idle prefix adds one
              // step but no trailing transition.
              max_episode_steps == 0 ? 16 : max_episode_steps,
              config.td),
      slots_(width) {
  const std::size_t num_actions = actions_.num_actions();
  decoded_actions_.reserve(num_actions);
  for (rl::ActionId a = 0; a < num_actions; ++a) {
    decoded_actions_.push_back(actions_.decode(a));
  }
  const auto& symbols = states_.symbols();
  step_rewards_.resize(symbols.size() * num_actions);
  terminal_rewards_.resize(symbols.size() * num_actions);
  for (std::size_t sym = 0; sym < symbols.size(); ++sym) {
    for (rl::ActionId a = 0; a < num_actions; ++a) {
      step_rewards_[sym * num_actions + a] =
          reward_(decoded_actions_[a], symbols[sym], /*completes=*/false);
      terminal_rewards_[sym * num_actions + a] =
          reward_(decoded_actions_[a], symbols[sym], /*completes=*/true);
    }
  }

  // Direct-index symbol lookup: StateCodec::encode's linear find is the
  // scalar prologue's per-step cost; step ids are small (< 64 across the
  // ADL library), so a flat table replaces it with one load. Result-equal
  // to the codec by construction.
  adl::StepId max_id = 0;
  for (const adl::StepId id : symbols) max_id = std::max(max_id, id);
  tool_to_symbol_.assign(static_cast<std::size_t>(max_id) + 1, -1);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    tool_to_symbol_[symbols[i]] = static_cast<std::int32_t>(i);
  }

  // Pre-resolve the predicting states (RoutineLearner::predicting_states):
  // the fully-idle context plus each non-terminal routine position.
  const auto add_scored = [&](PlannerState ps, adl::StepId want) {
    ++predicting_states_;  // unencodable states still count in the mean
    if (const auto s = states_.encode(ps)) {
      scored_states_.push_back(ScoredState{*s, want});
    }
  };
  add_scored(PlannerState{adl::kIdleStep, adl::kIdleStep},
             routine_->first_step());
  adl::StepId prev = adl::kIdleStep;
  const auto& steps = routine_->steps();
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    add_scored(PlannerState{prev, steps[i].step_id()},
               routine_->next_after(steps[i].step_id()));
    prev = steps[i].step_id();
  }

  const std::size_t reserve =
      max_episode_steps == 0 ? 0 : max_episode_steps + 1;
  for (Slot& slot : slots_) {
    slot.epsilon = config_.epsilon;
    slot.symbols.reserve(reserve);
  }
  active_.reserve(slots_.size());
}

void LaneTrainer::reset_slot(std::size_t slot, util::Rng rng) {
  Slot& sl = slots_[slot];
  sl.rng = rng;
  sl.epsilon = config_.epsilon;
  sl.episodes = 0;
  sl.skipped = 0;
  sl.queued = false;
  double* q = engine_.slot_q(slot);
  std::fill(q, q + num_states() * num_actions(), config_.td.initial_q);
  engine_.begin_episode(slot);
}

void LaneTrainer::begin_retraining(std::size_t slot, const rl::QTable& q,
                                   util::Rng rng) {
  engine_.load(slot, q);  // shape-checked; also clears the slot's traces
  Slot& sl = slots_[slot];
  sl.rng = rng;
  sl.epsilon = config_.epsilon;
  sl.queued = false;
}

void LaneTrainer::queue_episode(std::size_t slot,
                                std::span<const adl::StepId> steps) {
  Slot& sl = slots_[slot];
  if (sl.queued) {
    throw std::logic_error("LaneTrainer: slot already has a queued episode");
  }
  sl.symbols.clear();
  sl.symbols.push_back(0);  // the idle prefix
  adl::StepId last = adl::kIdleStep;
  for (const adl::StepId s : steps) {
    const std::int32_t sym =
        s < tool_to_symbol_.size() ? tool_to_symbol_[s] : -1;
    if (sym >= 0) {
      sl.symbols.push_back(static_cast<std::uint32_t>(sym));
      last = s;
    } else {
      ++sl.skipped;
    }
  }
  sl.terminal_tail = sl.symbols.size() >= 2 && routine_->is_terminal(last);
  sl.queued = true;
}

void LaneTrainer::train_queued() {
  const std::size_t num_symbols = states_.symbols().size();
  const std::size_t num_actions = actions_.num_actions();
  const std::size_t width = slots_.size();
  const bool sweep = config_.counterfactual_sweep;
  const double* step_rewards = step_rewards_.data();
  const double* terminal_rewards = terminal_rewards_.data();

  // Build the round's active list: slots with at least two valid steps (an
  // episode below that trains nothing — ε still decays, the scalar path's
  // early return). The list carries each slot's symbol cursor so the tick
  // loop walks a dense array instead of re-deriving per-slot state.
  active_.clear();
  std::size_t max_transitions = 0;
  for (std::size_t i = 0; i < width; ++i) {
    Slot& sl = slots_[i];
    if (!sl.queued) continue;
    ++sl.episodes;
    if (sl.symbols.size() < 3) continue;
    const std::size_t n = sl.symbols.size() - 1;
    engine_.begin_episode(i);
    if (n > max_transitions) max_transitions = n;
    active_.push_back(ActiveSlot{&sl, static_cast<std::uint32_t>(i),
                                 static_cast<std::uint32_t>(sl.symbols.size()),
                                 sl.symbols.data(), 0, sl.symbols[0]});
  }
  if (max_transitions > engine_.trace_capacity()) {
    engine_.reserve_traces(max_transitions);  // all traces clear here
  }

  // Slot-major: each slot's episode runs to completion before the next
  // slot starts. Slots never interact (the engine's interleaving-freedom
  // contract), so this orders identically to the tick-lockstep sweep per
  // user — but the slot's RNG state, symbol cursor and Q slab stay
  // register- and L1-resident across its whole episode instead of being
  // reloaded every tick.
  for (ActiveSlot& a : active_) {
    Slot& sl = *a.sl;
    const double epsilon = sl.epsilon;
    std::uint32_t prev = a.prev;
    std::uint32_t cur = a.cur;
    rl::LaneEngine::MaxCarry carry;  // s_{t+1} == s'_t along a trajectory
    for (std::uint32_t i = 1; i < a.n; ++i) {
      const std::uint32_t next_sym = a.sym[i];
      const auto s = static_cast<rl::StateId>(prev * num_symbols + cur);
      const auto s_next =
          static_cast<rl::StateId>(cur * num_symbols + next_sym);

      const rl::LaneEngine::Selected sel =
          engine_.select(a.slot, s, epsilon, sl.rng, carry);

      const bool completes = i + 1 == a.n && sl.terminal_tail;
      const double* rewards =
          (completes ? terminal_rewards : step_rewards) +
          next_sym * num_actions;

      engine_.step(a.slot, sel, s, rewards, s_next, completes, sweep,
                   &carry);
      prev = cur;
      cur = next_sym;
    }
  }

  for (Slot& sl : slots_) {
    if (!sl.queued) continue;
    sl.queued = false;
    sl.epsilon = std::max(config_.min_epsilon, sl.epsilon * config_.epsilon_decay);
  }
}

double LaneTrainer::greedy_accuracy(std::size_t slot) const {
  const double* q = engine_.slot_q(slot);
  const std::size_t num_actions = actions_.num_actions();
  std::size_t hits = 0;
  for (const ScoredState& sc : scored_states_) {
    const double* row = q + static_cast<std::size_t>(sc.state) * num_actions;
    // QTable::best_action(s): first-max index.
    std::size_t best = 0;
    for (std::size_t a = 1; a < num_actions; ++a) {
      if (row[a] > row[best]) best = a;
    }
    if (decoded_actions_[best].tool == sc.want) ++hits;
  }
  return static_cast<double>(hits) /
         static_cast<double>(predicting_states_);
}

double LaneTrainer::q_sum(std::size_t slot) const {
  const double* q = engine_.slot_q(slot);
  const std::size_t n = num_states() * num_actions();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += q[i];
  return sum;
}

}  // namespace coreda::planning
