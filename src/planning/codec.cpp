#include "planning/codec.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::planning {

std::string to_string(RemindingLevel level) {
  return level == RemindingLevel::kMinimal ? "minimal" : "specific";
}

StateCodec::StateCodec(std::vector<adl::StepId> step_ids) {
  symbols_.push_back(adl::kIdleStep);
  for (adl::StepId id : step_ids) {
    if (id == adl::kIdleStep) {
      throw std::invalid_argument("StateCodec: StepId 0 is implicit");
    }
    if (std::find(symbols_.begin(), symbols_.end(), id) != symbols_.end()) {
      throw std::invalid_argument("StateCodec: duplicate StepId " +
                                  std::to_string(id));
    }
    symbols_.push_back(id);
  }
}

std::optional<std::size_t> StateCodec::symbol_index(
    adl::StepId id) const noexcept {
  const auto it = std::find(symbols_.begin(), symbols_.end(), id);
  if (it == symbols_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - symbols_.begin());
}

std::optional<rl::StateId> StateCodec::encode(
    PlannerState state) const noexcept {
  const auto prev = symbol_index(state.prev);
  const auto cur = symbol_index(state.cur);
  if (!prev || !cur) return std::nullopt;
  return static_cast<rl::StateId>(*prev * symbols_.size() + *cur);
}

PlannerState StateCodec::decode(rl::StateId id) const {
  if (id >= num_states()) {
    throw std::out_of_range("StateCodec: state id out of range");
  }
  return PlannerState{symbols_[id / symbols_.size()],
                      symbols_[id % symbols_.size()]};
}

ActionCodec::ActionCodec(std::vector<adl::ToolId> tool_ids)
    : tools_(std::move(tool_ids)) {
  if (tools_.empty()) {
    throw std::invalid_argument("ActionCodec: no tools");
  }
  for (std::size_t i = 0; i < tools_.size(); ++i) {
    if (tools_[i] == adl::kNoTool) {
      throw std::invalid_argument("ActionCodec: tool id 0 is reserved");
    }
    for (std::size_t j = i + 1; j < tools_.size(); ++j) {
      if (tools_[i] == tools_[j]) {
        throw std::invalid_argument("ActionCodec: duplicate tool id " +
                                    std::to_string(tools_[i]));
      }
    }
  }
}

std::optional<rl::ActionId> ActionCodec::encode(
    PlannerAction action) const noexcept {
  const auto it = std::find(tools_.begin(), tools_.end(), action.tool);
  if (it == tools_.end()) return std::nullopt;
  const auto tool_index = static_cast<std::size_t>(it - tools_.begin());
  return static_cast<rl::ActionId>(
      tool_index * 2 + (action.level == RemindingLevel::kMinimal ? 0 : 1));
}

PlannerAction ActionCodec::decode(rl::ActionId id) const {
  if (id >= num_actions()) {
    throw std::out_of_range("ActionCodec: action id out of range");
  }
  return PlannerAction{tools_[id / 2], (id % 2) == 0
                                           ? RemindingLevel::kMinimal
                                           : RemindingLevel::kSpecific};
}

}  // namespace coreda::planning
