#pragma once

#include "planning/codec.hpp"

namespace coreda::planning {

/// The paper's reward function (§2.2):
///
///   * 1000 when the prompted step is taken and it completes the ADL
///     ("a large reward 1000 is given to encourage the completion of ADL"),
///   * 100 for an intermediate step reached via a *minimal* prompt,
///   * 50 for an intermediate step reached via a *specific* prompt
///     ("this promotes the user to exercise his/her brain instead of
///     depending on the system"),
///   * 0 when the user's actual next step differs from the prompt — the
///     prompt did not help, so it earns nothing. (The paper leaves the
///     mis-prompt case implicit; zero is the neutral choice that still
///     makes every correct prompt strictly dominate.)
///
/// All values are configurable so the reward-shaping ablation (DESIGN.md A2)
/// can flatten or re-weight them.
struct RewardConfig {
  double terminal = 1000.0;
  double intermediate_minimal = 100.0;
  double intermediate_specific = 50.0;
  double mismatch = 0.0;
};

class CoredaRewardFunction {
 public:
  CoredaRewardFunction() = default;
  explicit CoredaRewardFunction(RewardConfig config) : config_(config) {}

  /// Reward for prompting `action` when the user's actual next step turned
  /// out to be `actual_next`; `completes_adl` marks the transition that
  /// finishes the routine.
  double operator()(PlannerAction action, adl::StepId actual_next,
                    bool completes_adl) const noexcept {
    if (action.tool != actual_next) return config_.mismatch;
    if (completes_adl) return config_.terminal;
    return action.level == RemindingLevel::kMinimal
               ? config_.intermediate_minimal
               : config_.intermediate_specific;
  }

  const RewardConfig& config() const noexcept { return config_; }

 private:
  RewardConfig config_;
};

}  // namespace coreda::planning
