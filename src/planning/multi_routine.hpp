#pragma once

#include <optional>
#include <span>
#include <vector>

#include "adl/routine.hpp"
#include "planning/codec.hpp"
#include "planning/learner.hpp"
#include "rl/policy.hpp"
#include "rl/td_lambda.hpp"
#include "util/rng.hpp"

namespace coreda::planning {

/// Encodes the last `depth` StepIds as one dense state (front-padded with
/// the idle step when the history is shorter). depth == 2 reproduces the
/// paper's <StepID_{i-1}, StepID_i> state exactly; deeper histories are the
/// mechanism behind the multi-routine extension.
class HistoryCodec {
 public:
  /// Throws std::invalid_argument on depth 0, duplicates, or id 0 in the
  /// vocabulary.
  HistoryCodec(std::vector<adl::StepId> step_ids, std::size_t depth);

  std::size_t depth() const noexcept { return depth_; }
  std::size_t num_states() const noexcept { return num_states_; }

  /// Encodes the trailing `depth` entries of `history` (shorter histories
  /// are padded with idle in front). nullopt if any used entry is outside
  /// the vocabulary.
  std::optional<rl::StateId> encode(
      std::span<const adl::StepId> history) const noexcept;

 private:
  std::optional<std::size_t> symbol_index(adl::StepId id) const noexcept;

  std::vector<adl::StepId> symbols_;
  std::size_t depth_;
  std::size_t num_states_;
};

/// Multi-routine planner — the paper's future-work item #1.
///
/// A user may have several acceptable routines for one ADL (dressing
/// shirt-first or trousers-first). The prototype's pair state cannot
/// represent "which routine am I in" when the routines share a transition;
/// widening the state to the last `depth` steps disambiguates any two
/// routines that differ within that horizon. The A5 experiment shows
/// depth 2 (the paper's encoding) mis-prompting at the shared context while
/// depth 3 reaches full accuracy on both dressing routines.
class MultiRoutineLearner {
 public:
  MultiRoutineLearner(const adl::Adl& adl, std::size_t history_depth,
                      util::Rng rng, LearnerConfig config = LearnerConfig());

  /// Learns from one complete process following *any* routine of the ADL.
  void train_episode(std::span<const adl::StepId> steps);

  /// Greedy prompt given the observed history (most recent step last).
  std::optional<PlannedPrompt> predict(
      std::span<const adl::StepId> history) const;

  /// Fraction of (routine, position) contexts across all routines whose
  /// greedy prompt names that routine's next tool.
  double routine_accuracy() const;

  /// Accuracy over a single routine's contexts.
  double routine_accuracy(const adl::AdlRoutine& routine) const;

  std::size_t episodes_trained() const noexcept { return episodes_; }
  const HistoryCodec& codec() const noexcept { return codec_; }
  const rl::QTable& q() const noexcept { return learner_.q(); }

 private:
  const adl::Adl* adl_;
  HistoryCodec codec_;
  ActionCodec actions_;
  CoredaRewardFunction reward_;
  rl::TdLambdaQLearning learner_;
  rl::EpsilonGreedyPolicy policy_;
  util::Rng rng_;
  std::size_t episodes_ = 0;
};

}  // namespace coreda::planning
