#include "planning/reward.hpp"

// Header-only logic; this translation unit anchors the target.
