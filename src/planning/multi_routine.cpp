#include "planning/multi_routine.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::planning {

HistoryCodec::HistoryCodec(std::vector<adl::StepId> step_ids,
                           std::size_t depth)
    : depth_(depth) {
  if (depth == 0) {
    throw std::invalid_argument("HistoryCodec: depth must be >= 1");
  }
  symbols_.push_back(adl::kIdleStep);
  for (adl::StepId id : step_ids) {
    if (id == adl::kIdleStep) {
      throw std::invalid_argument("HistoryCodec: StepId 0 is implicit");
    }
    if (std::find(symbols_.begin(), symbols_.end(), id) != symbols_.end()) {
      throw std::invalid_argument("HistoryCodec: duplicate StepId");
    }
    symbols_.push_back(id);
  }
  num_states_ = 1;
  for (std::size_t i = 0; i < depth_; ++i) num_states_ *= symbols_.size();
}

std::optional<std::size_t> HistoryCodec::symbol_index(
    adl::StepId id) const noexcept {
  const auto it = std::find(symbols_.begin(), symbols_.end(), id);
  if (it == symbols_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - symbols_.begin());
}

std::optional<rl::StateId> HistoryCodec::encode(
    std::span<const adl::StepId> history) const noexcept {
  std::size_t id = 0;
  for (std::size_t slot = 0; slot < depth_; ++slot) {
    // slot 0 is the oldest of the window; pad with idle when history is
    // shorter than the depth.
    adl::StepId step = adl::kIdleStep;
    if (history.size() + slot >= depth_) {
      step = history[history.size() + slot - depth_];
    }
    const auto idx = symbol_index(step);
    if (!idx) return std::nullopt;
    id = id * symbols_.size() + *idx;
  }
  return static_cast<rl::StateId>(id);
}

namespace {

std::vector<adl::StepId> step_vocabulary(const adl::Adl& adl) {
  std::vector<adl::StepId> out;
  for (adl::ToolId t : adl.tools()) out.push_back(t);
  return out;
}

}  // namespace

MultiRoutineLearner::MultiRoutineLearner(const adl::Adl& adl,
                                         std::size_t history_depth,
                                         util::Rng rng, LearnerConfig config)
    : adl_(&adl),
      codec_(step_vocabulary(adl), history_depth),
      actions_(adl.tools()),
      reward_(config.reward),
      learner_(codec_.num_states(), actions_.num_actions(), config.td),
      policy_(config.epsilon, config.epsilon_decay, config.min_epsilon),
      rng_(rng) {}

void MultiRoutineLearner::train_episode(std::span<const adl::StepId> steps) {
  ++episodes_;
  if (steps.size() < 2) {
    policy_.decay_epsilon();
    return;
  }
  learner_.begin_episode();
  for (std::size_t i = 1; i < steps.size(); ++i) {
    const auto s = codec_.encode(steps.subspan(0, i));
    const auto s_next = codec_.encode(steps.subspan(0, i + 1));
    if (!s || !s_next) continue;

    const rl::ActionId a = policy_.select(learner_.q(), *s, rng_);
    const PlannerAction action = actions_.decode(a);
    const adl::StepId next = steps[i];

    bool completes = false;
    if (i + 1 == steps.size()) {
      for (const adl::AdlRoutine& r : adl_->routines()) {
        if (r.is_terminal(next)) completes = true;
      }
    }
    const double r = reward_(action, next, completes);
    // Terminal only on genuine completion (see RoutineLearner for why).
    learner_.observe(rl::Transition{*s, a, r, *s_next, completes});
  }
  policy_.decay_epsilon();
}

std::optional<PlannedPrompt> MultiRoutineLearner::predict(
    std::span<const adl::StepId> history) const {
  const auto s = codec_.encode(history);
  if (!s) return std::nullopt;
  const rl::ActionId a = learner_.q().best_action(*s);
  return PlannedPrompt{actions_.decode(a), learner_.q().get(*s, a)};
}

double MultiRoutineLearner::routine_accuracy(
    const adl::AdlRoutine& routine) const {
  const auto& steps = routine.steps();
  std::size_t hits = 0;
  std::size_t total = 0;
  std::vector<adl::StepId> history;
  for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
    history.push_back(steps[i].step_id());
    const auto prompt = predict(history);
    ++total;
    if (prompt && prompt->action.tool == steps[i + 1].tool) ++hits;
  }
  return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
}

double MultiRoutineLearner::routine_accuracy() const {
  double sum = 0.0;
  for (const adl::AdlRoutine& r : adl_->routines()) {
    sum += routine_accuracy(r);
  }
  return sum / static_cast<double>(adl_->routines().size());
}

}  // namespace coreda::planning
