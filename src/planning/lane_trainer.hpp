#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "adl/routine.hpp"
#include "planning/codec.hpp"
#include "planning/learner.hpp"
#include "rl/lane_engine.hpp"
#include "util/rng.hpp"

namespace coreda::planning {

/// Lockstep trainer: N same-routine users trained through one rl::LaneEngine
/// lane, byte-identical per user to N independent RoutineLearners.
///
/// "Same routine" means the same reference Adl — the users share the codec
/// vocabulary (tool set AND first-seen order), hence the same Q-table shape
/// and reward slabs. Group a fleet by routine signature before batching;
/// tests/planning/lane_trainer_test.cpp proves the per-user equivalence
/// across widths and ragged batches.
///
/// Usage per round: queue_episode(slot, steps) for any subset of slots, then
/// train_queued() once. Slots advance independently (their ε schedules,
/// RNG streams and tables never interact); the lockstep interleaving only
/// exists so the engine's batched kernels get dense work.
class LaneTrainer {
 public:
  /// `max_episode_steps`, when nonzero, pre-sizes every per-slot scratch
  /// buffer and the trace slabs so steady-state training performs zero heap
  /// allocations (the retrain scheduler passes its transcript slot width).
  LaneTrainer(const adl::Adl& adl, std::size_t width,
              LearnerConfig config = LearnerConfig(),
              std::size_t max_episode_steps = 0);

  std::size_t width() const noexcept { return slots_.size(); }
  std::size_t num_states() const noexcept { return states_.num_states(); }
  std::size_t num_actions() const noexcept { return actions_.num_actions(); }
  const LearnerConfig& config() const noexcept { return config_; }
  const rl::LaneEngine& engine() const noexcept { return engine_; }

  /// Re-arms the slot for a fresh user: optimistic-initial table, cleared
  /// traces, ε restarted, new RNG. Equivalent to constructing a
  /// RoutineLearner(adl, rng, config).
  void reset_slot(std::size_t slot, util::Rng rng);

  /// Re-arms the slot on an adopted table —
  /// RoutineLearner::begin_retraining. Throws std::invalid_argument on a
  /// shape mismatch.
  void begin_retraining(std::size_t slot, const rl::QTable& q, util::Rng rng);

  /// Queues one recorded ADL process for the slot (at most one per slot per
  /// round). Vocabulary filtering happens here, exactly as
  /// RoutineLearner::train_episode's prologue.
  void queue_episode(std::size_t slot, std::span<const adl::StepId> steps);

  /// Trains every queued slot's episode, interleaved transition-by-
  /// transition across slots with one batched trace-decay kernel pass per
  /// tick. Clears the queue.
  void train_queued();

  /// RoutineLearner::greedy_accuracy over the slot's table.
  double greedy_accuracy(std::size_t slot) const;

  /// Sum of the slot's Q values in state-major, action-minor order — the
  /// accumulation order of bench_fleet_throughput's per-user checksum.
  double q_sum(std::size_t slot) const;

  /// Scatters the slot's table into `q` (shape-checked).
  void export_q(std::size_t slot, rl::QTable& q) const {
    engine_.store(slot, q);
  }

  double epsilon(std::size_t slot) const { return slots_[slot].epsilon; }
  std::size_t episodes_trained(std::size_t slot) const {
    return slots_[slot].episodes;
  }
  std::uint64_t skipped_steps(std::size_t slot) const {
    return slots_[slot].skipped;
  }

 private:
  struct Slot {
    util::Rng rng{0};
    double epsilon = 0.0;
    std::size_t episodes = 0;
    std::uint64_t skipped = 0;
    bool queued = false;
    /// Whether the queued episode's last valid step is the routine's
    /// terminal step — hoisted out of the transition loop (the scalar
    /// path's per-transition `i + 1 == size && is_terminal(steps[i])`
    /// check only ever consults the last step).
    bool terminal_tail = false;
    /// Filtered episode scratch (idle-prefixed), as in RoutineLearner —
    /// already encoded; the StepId form is never re-read after queueing.
    std::vector<std::uint32_t> symbols;
  };

  /// Per-round cursor over one trainable slot: the symbol stream pointer
  /// and the rolling (prev, cur) context, so the tick loop touches a dense
  /// array instead of re-deriving them from Slot each pass.
  struct ActiveSlot {
    Slot* sl = nullptr;
    std::uint32_t slot = 0;
    std::uint32_t n = 0;  ///< symbol count (transitions + 1)
    const std::uint32_t* sym = nullptr;
    std::uint32_t prev = 0;
    std::uint32_t cur = 0;
  };

  /// A predicting state pre-resolved against the codec: the encoded StateId
  /// and the ActionIds that count as a correct greedy prompt (both
  /// reminding levels of the wanted tool).
  struct ScoredState {
    rl::StateId state = 0;
    adl::ToolId want = 0;
  };

  const adl::AdlRoutine* routine_;
  LearnerConfig config_;
  StateCodec states_;
  ActionCodec actions_;
  CoredaRewardFunction reward_;
  std::vector<PlannerAction> decoded_actions_;
  std::vector<double> step_rewards_;      ///< symbol-major, width A
  std::vector<double> terminal_rewards_;  ///< symbol-major, width A
  std::vector<std::int32_t> tool_to_symbol_;  ///< StepId -> symbol, -1 miss
  std::vector<ScoredState> scored_states_;
  std::size_t predicting_states_ = 0;  ///< accuracy denominator
  rl::LaneEngine engine_;
  std::vector<Slot> slots_;
  std::vector<ActiveSlot> active_;  ///< train_queued scratch (alloc-free)
};

}  // namespace coreda::planning
