#include "planning/serialize.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace coreda::planning {

namespace {

constexpr const char* kMagic = "coreda-policy v1";

std::string read_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(std::string("load_policy: missing ") + what);
  }
  return line;
}

std::vector<std::uint64_t> parse_ids(const std::string& line,
                                     const char* what) {
  std::vector<std::uint64_t> out;
  std::istringstream is(line);
  std::uint64_t v;
  while (is >> v) out.push_back(v);
  if (out.empty()) {
    throw std::runtime_error(std::string("load_policy: empty ") + what);
  }
  return out;
}

}  // namespace

void save_policy(std::ostream& out, const RoutineLearner& learner) {
  out << kMagic << '\n';

  out << "steps";
  for (adl::StepId id : learner.state_codec().symbols()) out << ' ' << id;
  out << '\n';

  out << "tools";
  for (adl::ToolId id : learner.action_codec().tools()) out << ' ' << id;
  out << '\n';

  const rl::QTable& q = learner.q();
  out << q.num_states() << ' ' << q.num_actions() << '\n';
  out.precision(17);
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      if (a > 0) out << ' ';
      out << q.get(s, a);
    }
    out << '\n';
  }
}

void load_policy(std::istream& in, RoutineLearner& learner) {
  if (read_line(in, "magic") != kMagic) {
    throw std::runtime_error("load_policy: not a coreda-policy v1 snapshot");
  }

  const std::string steps_line = read_line(in, "step vocabulary");
  if (steps_line.rfind("steps ", 0) != 0) {
    throw std::runtime_error("load_policy: malformed step vocabulary");
  }
  const auto steps = parse_ids(steps_line.substr(6), "step vocabulary");
  const auto& symbols = learner.state_codec().symbols();
  if (steps.size() != symbols.size()) {
    throw std::runtime_error("load_policy: step vocabulary size mismatch");
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] != symbols[i]) {
      throw std::runtime_error("load_policy: step vocabulary mismatch");
    }
  }

  const std::string tools_line = read_line(in, "tool vocabulary");
  if (tools_line.rfind("tools ", 0) != 0) {
    throw std::runtime_error("load_policy: malformed tool vocabulary");
  }
  const auto tools = parse_ids(tools_line.substr(6), "tool vocabulary");
  const auto& known_tools = learner.action_codec().tools();
  if (tools.size() != known_tools.size()) {
    throw std::runtime_error("load_policy: tool vocabulary size mismatch");
  }
  for (std::size_t i = 0; i < tools.size(); ++i) {
    if (tools[i] != known_tools[i]) {
      throw std::runtime_error("load_policy: tool vocabulary mismatch");
    }
  }

  std::size_t states = 0;
  std::size_t actions = 0;
  {
    std::istringstream dims(read_line(in, "dimensions"));
    if (!(dims >> states >> actions)) {
      throw std::runtime_error("load_policy: malformed dimensions");
    }
  }
  const rl::QTable& current = learner.q();
  if (states != current.num_states() || actions != current.num_actions()) {
    throw std::runtime_error("load_policy: Q-table dimension mismatch");
  }

  // Parse the full table into a staging copy first so a truncated snapshot
  // cannot leave the learner half-loaded.
  rl::QTable staged(states, actions);
  for (rl::StateId s = 0; s < states; ++s) {
    std::istringstream row(read_line(in, "Q row"));
    for (rl::ActionId a = 0; a < actions; ++a) {
      double value;
      if (!(row >> value)) {
        throw std::runtime_error("load_policy: truncated Q row");
      }
      staged.set(s, a, value);
    }
  }
  learner.import_q(staged);
}

}  // namespace coreda::planning
