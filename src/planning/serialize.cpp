#include "planning/serialize.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/wire.hpp"

namespace coreda::planning {

namespace {

constexpr const char* kMagic = "coreda-policy v1";

std::string read_line(std::istream& in, const char* what) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error(std::string("load_policy: missing ") + what);
  }
  return line;
}

std::vector<std::uint64_t> parse_ids(const std::string& line,
                                     const char* what) {
  std::vector<std::uint64_t> out;
  std::istringstream is(line);
  std::uint64_t v;
  while (is >> v) out.push_back(v);
  if (out.empty()) {
    throw std::runtime_error(std::string("load_policy: empty ") + what);
  }
  return out;
}

}  // namespace

void save_policy(std::ostream& out, const RoutineLearner& learner) {
  out << kMagic << '\n';

  out << "steps";
  for (adl::StepId id : learner.state_codec().symbols()) out << ' ' << id;
  out << '\n';

  out << "tools";
  for (adl::ToolId id : learner.action_codec().tools()) out << ' ' << id;
  out << '\n';

  const rl::QTable& q = learner.q();
  out << q.num_states() << ' ' << q.num_actions() << '\n';
  out.precision(17);
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      if (a > 0) out << ' ';
      out << q.get(s, a);
    }
    out << '\n';
  }
}

void load_policy(std::istream& in, RoutineLearner& learner) {
  if (read_line(in, "magic") != kMagic) {
    throw std::runtime_error("load_policy: not a coreda-policy v1 snapshot");
  }

  const std::string steps_line = read_line(in, "step vocabulary");
  if (steps_line.rfind("steps ", 0) != 0) {
    throw std::runtime_error("load_policy: malformed step vocabulary");
  }
  const auto steps = parse_ids(steps_line.substr(6), "step vocabulary");
  const auto& symbols = learner.state_codec().symbols();
  if (steps.size() != symbols.size()) {
    throw std::runtime_error("load_policy: step vocabulary size mismatch");
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i] != symbols[i]) {
      throw std::runtime_error("load_policy: step vocabulary mismatch");
    }
  }

  const std::string tools_line = read_line(in, "tool vocabulary");
  if (tools_line.rfind("tools ", 0) != 0) {
    throw std::runtime_error("load_policy: malformed tool vocabulary");
  }
  const auto tools = parse_ids(tools_line.substr(6), "tool vocabulary");
  const auto& known_tools = learner.action_codec().tools();
  if (tools.size() != known_tools.size()) {
    throw std::runtime_error("load_policy: tool vocabulary size mismatch");
  }
  for (std::size_t i = 0; i < tools.size(); ++i) {
    if (tools[i] != known_tools[i]) {
      throw std::runtime_error("load_policy: tool vocabulary mismatch");
    }
  }

  std::size_t states = 0;
  std::size_t actions = 0;
  {
    std::istringstream dims(read_line(in, "dimensions"));
    if (!(dims >> states >> actions)) {
      throw std::runtime_error("load_policy: malformed dimensions");
    }
  }
  const rl::QTable& current = learner.q();
  if (states != current.num_states() || actions != current.num_actions()) {
    throw std::runtime_error("load_policy: Q-table dimension mismatch");
  }

  // Parse the full table into a staging copy first so a truncated snapshot
  // cannot leave the learner half-loaded.
  rl::QTable staged(states, actions);
  for (rl::StateId s = 0; s < states; ++s) {
    std::istringstream row(read_line(in, "Q row"));
    for (rl::ActionId a = 0; a < actions; ++a) {
      double value;
      if (!(row >> value)) {
        throw std::runtime_error("load_policy: truncated Q row");
      }
      staged.set(s, a, value);
    }
  }
  learner.import_q(staged);
}

// --------------------------------------------------------------------------
// v2 binary snapshots
// --------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Serializes little-endian u64/f64 into a growing byte buffer; the FNV-1a
/// checksum is computed over the buffer once at the end, so save and load
/// agree on "every preceding byte" by construction.
struct V2Writer {
  std::string bytes;

  void put_u64(std::uint64_t v) {
    char raw[8];
    for (int i = 0; i < 8; ++i) {
      raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    bytes.append(raw, 8);
  }
  void put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

  std::uint64_t checksum() const {
    std::uint64_t h = kFnvOffset;
    for (const char c : bytes) {
      h ^= static_cast<unsigned char>(c);
      h *= kFnvPrime;
    }
    return h;
  }
};

/// Mirror of V2Writer: pulls little-endian fields off an istream while
/// folding every consumed byte into the running checksum. Any short read
/// throws — a truncated snapshot can never validate.
struct V2Reader {
  std::istream& in;
  std::uint64_t hash = kFnvOffset;

  std::uint64_t take_u64(const char* what) {
    char raw[8];
    if (!in.read(raw, 8)) {
      throw std::runtime_error(
          std::string("load_policy_v2: truncated snapshot (") + what + ")");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      const auto byte = static_cast<unsigned char>(raw[i]);
      v |= static_cast<std::uint64_t>(byte) << (8 * i);
      hash ^= byte;
      hash *= kFnvPrime;
    }
    return v;
  }
  double take_f64(const char* what) {
    return std::bit_cast<double>(take_u64(what));
  }
  /// The trailing checksum field is read raw — it is not part of its own
  /// coverage.
  std::uint64_t take_checksum() {
    char raw[8];
    if (!in.read(raw, 8)) {
      throw std::runtime_error(
          "load_policy_v2: truncated snapshot (checksum)");
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(raw[i]))
           << (8 * i);
    }
    return v;
  }
};

/// Parsed body of a v2 snapshot, validated for structure + checksum but not
/// yet against any expected vocabulary.
struct V2Snapshot {
  std::uint64_t version = 0;
  std::vector<std::uint64_t> steps;
  std::vector<std::uint64_t> tools;
  std::size_t num_states = 0;
  std::size_t num_actions = 0;
  std::vector<double> q;
  bool checksum_ok = false;
};

/// Caps the header counts so a corrupt file cannot request a multi-GB
/// allocation before the checksum gets a chance to reject it. The real
/// spaces are tens of entries.
constexpr std::uint64_t kSaneCount = 1u << 20;

V2Snapshot read_full_record(std::istream& in, const char* expect_magic,
                            const char* not_msg) {
  V2Reader r{in};
  char magic[8];
  if (!in.read(magic, 8)) {
    throw std::runtime_error("load_policy_v2: truncated snapshot (magic)");
  }
  if (std::memcmp(magic, expect_magic, 8) != 0) {
    throw std::runtime_error(not_msg);
  }
  for (const char c : magic) {
    r.hash ^= static_cast<unsigned char>(c);
    r.hash *= kFnvPrime;
  }

  V2Snapshot snap;
  snap.version = r.take_u64("version");
  const std::uint64_t n_steps = r.take_u64("step count");
  const std::uint64_t n_tools = r.take_u64("tool count");
  const std::uint64_t n_states = r.take_u64("state count");
  const std::uint64_t n_actions = r.take_u64("action count");
  if (n_steps == 0 || n_tools == 0 || n_states == 0 || n_actions == 0 ||
      n_steps > kSaneCount || n_tools > kSaneCount ||
      n_states > kSaneCount || n_actions > kSaneCount) {
    throw std::runtime_error("load_policy_v2: implausible dimensions");
  }
  snap.num_states = static_cast<std::size_t>(n_states);
  snap.num_actions = static_cast<std::size_t>(n_actions);

  snap.steps.reserve(n_steps);
  for (std::uint64_t i = 0; i < n_steps; ++i) {
    snap.steps.push_back(r.take_u64("step vocabulary"));
  }
  snap.tools.reserve(n_tools);
  for (std::uint64_t i = 0; i < n_tools; ++i) {
    snap.tools.push_back(r.take_u64("tool vocabulary"));
  }
  snap.q.reserve(snap.num_states * snap.num_actions);
  for (std::size_t i = 0; i < snap.num_states * snap.num_actions; ++i) {
    snap.q.push_back(r.take_f64("Q value"));
  }
  const std::uint64_t expected = r.hash;
  snap.checksum_ok = (r.take_checksum() == expected);
  return snap;
}

V2Snapshot read_v2(std::istream& in) {
  return read_full_record(in, kPolicyV2Magic,
                          "load_policy_v2: not a coreda-policy v2 snapshot");
}

template <typename Id>
void check_vocab(std::span<const std::uint64_t> got, std::span<const Id> want,
                 const char* what) {
  if (got.size() != want.size()) {
    throw std::runtime_error(std::string("load_policy_v2: ") + what +
                             " vocabulary size mismatch");
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != static_cast<std::uint64_t>(want[i])) {
      throw std::runtime_error(std::string("load_policy_v2: ") + what +
                               " vocabulary mismatch");
    }
  }
}

}  // namespace

std::size_t save_policy_v2(std::ostream& out,
                           std::span<const adl::StepId> steps,
                           std::span<const adl::ToolId> tools,
                           const rl::QTable& q, std::uint64_t version) {
  V2Writer w;
  w.bytes.reserve(8 * (6 + steps.size() + tools.size() +
                       q.num_states() * q.num_actions() + 1));
  w.bytes.append(kPolicyV2Magic, 8);
  w.put_u64(version);
  w.put_u64(steps.size());
  w.put_u64(tools.size());
  w.put_u64(q.num_states());
  w.put_u64(q.num_actions());
  for (const adl::StepId id : steps) w.put_u64(id);
  for (const adl::ToolId id : tools) w.put_u64(id);
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (const double v : q.row(s)) w.put_f64(v);
  }
  const std::uint64_t sum = w.checksum();
  w.put_u64(sum);
  out.write(w.bytes.data(),
            static_cast<std::streamsize>(w.bytes.size()));
  return w.bytes.size();
}

void save_policy_v2(std::ostream& out, const RoutineLearner& learner,
                    std::uint64_t version) {
  save_policy_v2(out, learner.state_codec().symbols(),
                 learner.action_codec().tools(), learner.q(), version);
}

std::uint64_t load_policy_v2(std::istream& in,
                             std::span<const adl::StepId> steps,
                             std::span<const adl::ToolId> tools,
                             rl::QTable& q) {
  const V2Snapshot snap = read_v2(in);
  if (!snap.checksum_ok) {
    throw std::runtime_error("load_policy_v2: checksum mismatch");
  }
  check_vocab<adl::StepId>(snap.steps, steps, "step");
  check_vocab<adl::ToolId>(snap.tools, tools, "tool");
  if (snap.num_states != q.num_states() ||
      snap.num_actions != q.num_actions()) {
    throw std::runtime_error("load_policy_v2: Q-table dimension mismatch");
  }
  // Fully validated: commit. Row-wise copy into the caller's storage keeps
  // this allocation-free for a pre-shaped destination table.
  std::size_t i = 0;
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      q.set(s, a, snap.q[i++]);
    }
  }
  return snap.version;
}

std::uint64_t load_policy_v2(std::istream& in, RoutineLearner& learner) {
  rl::QTable staged(learner.q().num_states(), learner.q().num_actions());
  const std::uint64_t version =
      load_policy_v2(in, learner.state_codec().symbols(),
                     learner.action_codec().tools(), staged);
  learner.import_q(staged);
  return version;
}

PolicyV2Info inspect_policy_v2(std::istream& in) {
  const V2Snapshot snap = read_v2(in);
  PolicyV2Info info;
  info.version = snap.version;
  info.num_states = snap.num_states;
  info.num_actions = snap.num_actions;
  info.checksum_ok = snap.checksum_ok;
  info.steps.reserve(snap.steps.size());
  for (const std::uint64_t id : snap.steps) {
    info.steps.push_back(static_cast<adl::StepId>(id));
  }
  info.tools.reserve(snap.tools.size());
  for (const std::uint64_t id : snap.tools) {
    info.tools.push_back(static_cast<adl::ToolId>(id));
  }
  return info;
}

// --------------------------------------------------------------------------
// v3 delta chains
// --------------------------------------------------------------------------

namespace {

/// One parsed-and-verified delta record.
struct V3Delta {
  std::uint64_t version = 0;
  std::uint64_t parent = 0;
  std::vector<std::uint64_t> row_index;
  std::vector<double> row_values;  ///< n_rows x n_actions, packed
  std::size_t bytes = 0;           ///< on-disk record size
};

/// Reads the next delta record off `in`. Returns false — without throwing —
/// on clean EOF, a torn tail, a wrong magic, implausible counts, or a
/// checksum mismatch: the chain loader treats all of those identically
/// (stop at the longest valid prefix, which is exactly the durable state
/// before a crashed or corrupted append).
bool read_v3_delta(std::istream& in, std::size_t expect_actions,
                   std::size_t num_states, V3Delta& out) {
  char magic[8];
  if (!in.read(magic, 8)) return false;
  if (std::memcmp(magic, kPolicyV3DeltaMagic, 8) != 0) return false;

  V2Reader r{in};
  for (const char c : magic) {
    r.hash ^= static_cast<unsigned char>(c);
    r.hash *= kFnvPrime;
  }
  try {
    out.version = r.take_u64("delta version");
    out.parent = r.take_u64("delta parent");
    const std::uint64_t n_rows = r.take_u64("delta row count");
    const std::uint64_t n_actions = r.take_u64("delta action count");
    if (n_rows > kSaneCount || n_actions == 0 || n_actions > kSaneCount ||
        n_actions != expect_actions || n_rows > num_states) {
      return false;
    }
    out.row_index.clear();
    out.row_values.clear();
    out.row_index.reserve(n_rows);
    out.row_values.reserve(n_rows * n_actions);
    for (std::uint64_t i = 0; i < n_rows; ++i) {
      const std::uint64_t row = r.take_u64("delta row index");
      if (row >= num_states) return false;
      out.row_index.push_back(row);
      for (std::uint64_t a = 0; a < n_actions; ++a) {
        out.row_values.push_back(r.take_f64("delta row value"));
      }
    }
    const std::uint64_t expected = r.hash;
    if (r.take_checksum() != expected) return false;
    out.bytes = 8 * (5 + out.row_index.size() * (1 + n_actions) + 1);
    return true;
  } catch (const std::runtime_error&) {
    return false;  // short read: torn tail
  }
}

std::size_t full_record_bytes(std::size_t n_steps, std::size_t n_tools,
                              std::size_t n_states, std::size_t n_actions) {
  return 8 * (1 + 5 + n_steps + n_tools + n_states * n_actions + 1);
}

}  // namespace

std::size_t save_policy_v3_full(std::ostream& out,
                                std::span<const adl::StepId> steps,
                                std::span<const adl::ToolId> tools,
                                const rl::QTable& q, std::uint64_t version) {
  V2Writer w;
  w.bytes.reserve(full_record_bytes(steps.size(), tools.size(),
                                    q.num_states(), q.num_actions()));
  w.bytes.append(kPolicyV3Magic, 8);
  w.put_u64(version);
  w.put_u64(steps.size());
  w.put_u64(tools.size());
  w.put_u64(q.num_states());
  w.put_u64(q.num_actions());
  for (const adl::StepId id : steps) w.put_u64(id);
  for (const adl::ToolId id : tools) w.put_u64(id);
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (const double v : q.row(s)) w.put_f64(v);
  }
  w.put_u64(w.checksum());
  out.write(w.bytes.data(), static_cast<std::streamsize>(w.bytes.size()));
  return w.bytes.size();
}

std::size_t count_changed_rows(const rl::QTable& base, const rl::QTable& q) {
  if (base.num_states() != q.num_states() ||
      base.num_actions() != q.num_actions()) {
    throw std::invalid_argument("count_changed_rows: table shape mismatch");
  }
  std::size_t n_rows = 0;
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    const auto b = base.row(s);
    const auto n = q.row(s);
    if (std::memcmp(b.data(), n.data(), n.size() * sizeof(double)) != 0) {
      ++n_rows;
    }
  }
  return n_rows;
}

unsigned char* encode_changed_rows(const rl::QTable& base, const rl::QTable& q,
                                   unsigned char* dst) {
  if (base.num_states() != q.num_states() ||
      base.num_actions() != q.num_actions()) {
    throw std::invalid_argument("encode_changed_rows: table shape mismatch");
  }
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    const auto b = base.row(s);
    const auto n = q.row(s);
    if (std::memcmp(b.data(), n.data(), n.size() * sizeof(double)) == 0) {
      continue;
    }
    util::wire::store_u64(dst, s);
    dst += 8;
    for (const double v : n) {
      util::wire::store_f64(dst, v);
      dst += 8;
    }
  }
  return dst;
}

std::string encode_policy_v3_delta(const rl::QTable& base,
                                   const rl::QTable& q,
                                   std::uint64_t version,
                                   std::uint64_t parent) {
  if (base.num_states() != q.num_states() ||
      base.num_actions() != q.num_actions()) {
    throw std::invalid_argument(
        "encode_policy_v3_delta: table shape mismatch");
  }
  V2Writer w;
  w.bytes.append(kPolicyV3DeltaMagic, 8);
  w.put_u64(version);
  w.put_u64(parent);
  const std::size_t n_rows = count_changed_rows(base, q);
  w.put_u64(n_rows);
  w.put_u64(q.num_actions());
  const std::size_t head = w.bytes.size();
  w.bytes.resize(head + n_rows * (1 + q.num_actions()) * 8);
  encode_changed_rows(base, q,
                      reinterpret_cast<unsigned char*>(w.bytes.data()) + head);
  w.put_u64(w.checksum());
  return std::move(w.bytes);
}

PolicyV3Chain load_policy_v3(std::istream& in,
                             std::span<const adl::StepId> steps,
                             std::span<const adl::ToolId> tools,
                             rl::QTable& q) {
  V2Snapshot snap = read_full_record(
      in, kPolicyV3Magic, "load_policy_v3: not a coreda-policy v3 snapshot");
  if (!snap.checksum_ok) {
    throw std::runtime_error("load_policy_v3: anchor checksum mismatch");
  }
  check_vocab<adl::StepId>(snap.steps, steps, "step");
  check_vocab<adl::ToolId>(snap.tools, tools, "tool");
  if (snap.num_states != q.num_states() ||
      snap.num_actions != q.num_actions()) {
    throw std::runtime_error("load_policy_v3: Q-table dimension mismatch");
  }

  PolicyV3Chain chain;
  chain.version = snap.version;
  V3Delta delta;
  while (true) {
    if (in.peek() == std::char_traits<char>::eof()) break;  // clean end
    if (!read_v3_delta(in, snap.num_actions, snap.num_states, delta) ||
        delta.parent != chain.version) {
      chain.tail_skipped = true;
      break;
    }
    std::size_t src = 0;
    for (std::size_t i = 0; i < delta.row_index.size(); ++i) {
      const std::size_t dst = delta.row_index[i] * snap.num_actions;
      for (std::size_t a = 0; a < snap.num_actions; ++a) {
        snap.q[dst + a] = delta.row_values[src++];
      }
    }
    chain.version = delta.version;
    ++chain.deltas_applied;
  }

  std::size_t i = 0;
  for (rl::StateId s = 0; s < q.num_states(); ++s) {
    for (rl::ActionId a = 0; a < q.num_actions(); ++a) {
      q.set(s, a, snap.q[i++]);
    }
  }
  return chain;
}

PolicyV3Info inspect_policy_v3(std::istream& in) {
  V2Snapshot snap = read_full_record(
      in, kPolicyV3Magic, "inspect_policy_v3: not a coreda-policy v3 file");
  PolicyV3Info info;
  info.anchor.version = snap.version;
  info.anchor.num_states = snap.num_states;
  info.anchor.num_actions = snap.num_actions;
  info.anchor.checksum_ok = snap.checksum_ok;
  for (const std::uint64_t id : snap.steps) {
    info.anchor.steps.push_back(static_cast<adl::StepId>(id));
  }
  for (const std::uint64_t id : snap.tools) {
    info.anchor.tools.push_back(static_cast<adl::ToolId>(id));
  }
  info.version = snap.version;
  info.on_disk_bytes = full_record_bytes(snap.steps.size(), snap.tools.size(),
                                         snap.num_states, snap.num_actions);
  info.reconstructed_bytes = info.on_disk_bytes;
  if (!snap.checksum_ok) return info;  // chain state untrustworthy past here

  V3Delta delta;
  while (true) {
    if (in.peek() == std::char_traits<char>::eof()) break;
    if (!read_v3_delta(in, snap.num_actions, snap.num_states, delta) ||
        delta.parent != info.version) {
      info.tail_skipped = true;
      break;
    }
    info.version = delta.version;
    ++info.delta_count;
    info.on_disk_bytes += delta.bytes;
  }
  return info;
}

// --------------------------------------------------------------------------
// bundle records (one record = all ADL policies of one user)
// --------------------------------------------------------------------------

std::size_t save_policy_bundle(std::ostream& out,
                               std::span<const PolicyBundleItem> items,
                               std::uint64_t version) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (items[i].q == nullptr) {
      throw std::invalid_argument("save_policy_bundle: null table");
    }
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      if (items[i].name == items[j].name) {
        throw std::invalid_argument(
            "save_policy_bundle: duplicate entry name '" +
            std::string(items[i].name) + "'");
      }
    }
  }
  V2Writer w;
  w.bytes.append(kPolicyBundleMagic, 8);
  w.put_u64(version);
  w.put_u64(items.size());
  for (const PolicyBundleItem& item : items) {
    w.put_u64(item.name.size());
    w.bytes.append(item.name.data(), item.name.size());
    std::ostringstream embedded;
    save_policy_v2(embedded, item.steps, item.tools, *item.q, version);
    w.bytes += embedded.str();
  }
  w.put_u64(w.checksum());
  out.write(w.bytes.data(), static_cast<std::streamsize>(w.bytes.size()));
  return w.bytes.size();
}

std::uint64_t load_policy_bundle(std::istream& in,
                                 std::span<const PolicyBundleSlot> slots) {
  // The outer checksum is the last 8 bytes and covers everything before
  // it, so the whole record is pulled into memory first — also what lets
  // validation finish completely before any slot table is written.
  std::string blob(std::istreambuf_iterator<char>(in), {});
  if (blob.size() < 8 + 8 + 8 + 8) {
    throw std::runtime_error("load_policy_bundle: truncated bundle");
  }
  if (std::memcmp(blob.data(), kPolicyBundleMagic, 8) != 0) {
    throw std::runtime_error("load_policy_bundle: not a coreda bundle");
  }
  std::uint64_t stored = 0;
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < blob.size() - 8; ++i) {
    hash ^= static_cast<unsigned char>(blob[i]);
    hash *= kFnvPrime;
  }
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                  blob[blob.size() - 8 + i]))
              << (8 * i);
  }
  if (stored != hash) {
    throw std::runtime_error("load_policy_bundle: checksum mismatch");
  }

  std::istringstream body(blob.substr(8, blob.size() - 16));
  V2Reader r{body};
  const std::uint64_t version = r.take_u64("bundle version");
  const std::uint64_t count = r.take_u64("bundle entry count");
  if (count != slots.size()) {
    throw std::runtime_error("load_policy_bundle: entry count mismatch");
  }
  if (count > kSaneCount) {
    throw std::runtime_error("load_policy_bundle: implausible entry count");
  }

  // Stage every entry against its slot; commit only after the last one
  // validates.
  std::vector<rl::QTable> staged;
  std::vector<std::size_t> staged_slot;
  std::vector<bool> filled(slots.size(), false);
  staged.reserve(slots.size());
  staged_slot.reserve(slots.size());
  for (std::uint64_t e = 0; e < count; ++e) {
    const std::uint64_t name_len = r.take_u64("entry name length");
    if (name_len > kSaneCount) {
      throw std::runtime_error("load_policy_bundle: implausible name");
    }
    std::string name(name_len, '\0');
    if (!body.read(name.data(), static_cast<std::streamsize>(name_len))) {
      throw std::runtime_error("load_policy_bundle: truncated entry name");
    }
    std::size_t slot_index = slots.size();
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slots[s].name == name) {
        slot_index = s;
        break;
      }
    }
    if (slot_index == slots.size() || filled[slot_index]) {
      throw std::runtime_error(
          "load_policy_bundle: unexpected entry '" + name + "'");
    }
    const PolicyBundleSlot& slot = slots[slot_index];
    if (slot.q == nullptr) {
      throw std::runtime_error("load_policy_bundle: null slot table");
    }
    filled[slot_index] = true;
    staged.emplace_back(slot.q->num_states(), slot.q->num_actions());
    staged_slot.push_back(slot_index);
    // Embedded records validate exactly as standalone v2 snapshots.
    load_policy_v2(body, slot.steps, slot.tools, staged.back());
  }
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!filled[s]) {
      throw std::runtime_error("load_policy_bundle: missing entry '" +
                               std::string(slots[s].name) + "'");
    }
  }

  for (std::size_t i = 0; i < staged.size(); ++i) {
    rl::QTable& dst = *slots[staged_slot[i]].q;
    for (rl::StateId s = 0; s < dst.num_states(); ++s) {
      for (rl::ActionId a = 0; a < dst.num_actions(); ++a) {
        dst.set(s, a, staged[i].get(s, a));
      }
    }
  }
  return version;
}

PolicyFormat detect_policy_format(std::istream& in) {
  char head[16] = {};
  in.read(head, sizeof(head));
  const std::streamsize got = in.gcount();
  in.clear();
  in.seekg(0);
  if (got >= 8 && std::memcmp(head, kPolicyV2Magic, 8) == 0) {
    return PolicyFormat::kBinaryV2;
  }
  if (got >= 8 && std::memcmp(head, kPolicyV3Magic, 8) == 0) {
    return PolicyFormat::kBinaryV3;
  }
  if (got >= 16 && std::memcmp(head, kMagic, 16) == 0) {
    return PolicyFormat::kTextV1;
  }
  return PolicyFormat::kUnknown;
}

std::uint64_t load_policy_any(std::istream& in, RoutineLearner& learner) {
  switch (detect_policy_format(in)) {
    case PolicyFormat::kBinaryV2:
      return load_policy_v2(in, learner);
    case PolicyFormat::kBinaryV3: {
      rl::QTable staged(learner.q().num_states(),
                        learner.q().num_actions());
      const PolicyV3Chain chain =
          load_policy_v3(in, learner.state_codec().symbols(),
                         learner.action_codec().tools(), staged);
      learner.import_q(staged);
      return chain.version;
    }
    case PolicyFormat::kTextV1:
      load_policy(in, learner);
      return 0;  // v1 snapshots predate versioning
    case PolicyFormat::kUnknown:
      break;
  }
  throw std::runtime_error(
      "load_policy_any: not a v1, v2, or v3 policy snapshot");
}

}  // namespace coreda::planning
