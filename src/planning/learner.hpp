#pragma once

#include <optional>
#include <span>
#include <vector>

#include "adl/routine.hpp"
#include "planning/codec.hpp"
#include "planning/reward.hpp"
#include "rl/policy.hpp"
#include "rl/td_lambda.hpp"
#include "util/rng.hpp"

namespace coreda::planning {

/// The TD(λ) defaults the planning subsystem uses: optimistic initial Q at
/// the terminal reward so every prompt is tried before the policy commits —
/// without this, an early lucky action can absorb the bootstrap value and
/// ε-greedy exploration alone takes hundreds of episodes to displace it.
inline rl::TdLambdaConfig default_planner_td() {
  rl::TdLambdaConfig td;
  td.initial_q = 1000.0;
  // A small step size keeps the value estimates of aliased contexts (e.g.
  // tea-making's <idle, tea-box> state when the pot's weak signal was
  // missed) statistically separated instead of flapping.
  td.alpha = 0.1;
  return td;
}

/// Everything that parameterizes the planning subsystem's learner.
struct LearnerConfig {
  rl::TdLambdaConfig td = default_planner_td();
  RewardConfig reward{};
  /// ε-greedy exploration schedule. The initial policy is effectively
  /// random (zero Q table + random tie-breaks), and ε decays per training
  /// episode toward `min_epsilon`, which bounds the residual prompting
  /// mistakes a still-exploring deployed system would make.
  double epsilon = 0.2;
  double epsilon_decay = 0.978;
  double min_epsilon = 0.005;
  /// Offline training consumes *recorded* processes, so the user's next
  /// step never depends on the prompt the learner would have sent — the
  /// reward of every candidate prompt is computable from the recording.
  /// When enabled, each transition also applies a one-step counterfactual
  /// backup to every non-taken action, which removes the undersampling
  /// pathology of pure trajectory sampling on tiny exploration budgets.
  bool counterfactual_sweep = true;
};

/// A prompt the planner wants delivered, with its value estimate.
struct PlannedPrompt {
  PlannerAction action{};
  double q = 0.0;
};

/// The planning subsystem: learns one user's routine of one ADL with TD(λ)
/// Q-Learning and predicts the next step from the <prev, cur> StepId pair
/// (paper §2.2, Figure 3).
///
/// Training consumes StepId sequences as delivered by the sensing
/// subsystem — one sequence per completed ADL process ("training sample" in
/// the paper). Sequences may contain sensing noise (missed or spurious
/// steps); transitions that fall outside the codec vocabulary are counted
/// and skipped rather than corrupting the table.
class RoutineLearner {
 public:
  RoutineLearner(const adl::Adl& adl, util::Rng rng,
                 LearnerConfig config = LearnerConfig());

  /// Learns from one complete ADL process. Steps outside the ADL vocabulary
  /// are ignored (sensing glitches from other rooms' tools).
  void train_episode(std::span<const adl::StepId> steps);

  /// Greedy prompt for the given context; nullopt when the context is
  /// outside the vocabulary. The terminal state of the routine yields
  /// whatever the table says, but callers normally stop prompting there.
  std::optional<PlannedPrompt> predict(PlannerState state) const;

  /// Convenience: predict from raw StepIds.
  std::optional<PlannedPrompt> predict(adl::StepId prev,
                                       adl::StepId cur) const {
    return predict(PlannerState{prev, cur});
  }

  /// The contexts <S_{i-1}, S_i> of the reference routine from which a next
  /// step exists (the states scored by the learning curve).
  std::vector<PlannerState> predicting_states() const;

  /// True when the greedy prompt in `state` names the reference routine's
  /// next tool (the Figure 4 notion of a "correct" policy entry).
  bool greedy_correct(PlannerState state) const;

  /// Fraction of predicting states with a correct greedy prompt.
  double greedy_accuracy() const;

  /// Expected per-prompt accuracy of the *behaviour* policy (ε-greedy over
  /// the current table): (1-ε)·[greedy correct] + ε·(correct/|A|) averaged
  /// over predicting states. This is the smooth quantity whose 95 %/98 %
  /// crossings reproduce the paper's Figure 4 convergence numbers.
  double behaviour_accuracy() const;

  /// Replaces the value table with `q` (policy restore; see serialize.hpp).
  /// Throws std::invalid_argument on a dimension mismatch.
  void import_q(const rl::QTable& q);

  /// Re-arms the learner for a fresh training run over an adopted table:
  /// imports `q`, replaces the exploration RNG, and restarts the ε decay
  /// schedule from the configured initial value. The retrain outcome is a
  /// pure function of (`q`, `rng`, the episodes trained next), independent
  /// of whatever this learner trained before — which is what lets the
  /// serving tier's retrain lanes reuse one warm learner per lane across
  /// users and stay deterministic at any job count. Allocation-free (same
  /// shape, same codecs; only values and RNG state change).
  void begin_retraining(const rl::QTable& q, util::Rng rng);

  double epsilon() const noexcept { return policy_.epsilon(); }
  std::size_t episodes_trained() const noexcept { return episodes_; }
  std::uint64_t skipped_steps() const noexcept { return skipped_; }
  const rl::QTable& q() const noexcept { return learner_.q(); }
  const StateCodec& state_codec() const noexcept { return states_; }
  const ActionCodec& action_codec() const noexcept { return actions_; }
  const adl::AdlRoutine& reference_routine() const noexcept {
    return *routine_;
  }

 private:
  const adl::AdlRoutine* routine_;  ///< reference (primary) routine
  LearnerConfig config_;
  StateCodec states_;
  ActionCodec actions_;
  CoredaRewardFunction reward_;
  rl::TdLambdaQLearning learner_;
  rl::EpsilonGreedyPolicy policy_;
  util::Rng rng_;
  std::size_t episodes_ = 0;
  std::uint64_t skipped_ = 0;

  // --- training hot path (see DESIGN.md) ----------------------------------
  // Rewards depend only on (action, actual next step, completes-flag), so
  // both reward matrices are built once in the ctor; train_episode then
  // reads one row per transition instead of decoding every action and
  // re-evaluating the reward function |A| times. Layout: symbol-major,
  // row width = num_actions().
  std::vector<PlannerAction> decoded_actions_;  ///< ActionId -> action
  std::vector<double> step_rewards_;      ///< completes == false rows
  std::vector<double> terminal_rewards_;  ///< completes == true rows
  // Scratch for train_episode, reused across calls so the steady-state
  // episode performs zero heap allocations: the filtered step sequence
  // (idle-prefixed) and each step's codec symbol index.
  std::vector<adl::StepId> episode_steps_;
  std::vector<std::uint32_t> episode_symbols_;
};

}  // namespace coreda::planning
