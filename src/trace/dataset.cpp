#include "trace/dataset.hpp"

namespace coreda::trace {

DatasetBuilder::DatasetBuilder(const adl::AdlLibrary& library,
                               patient::PatientProfile profile,
                               std::uint64_t seed)
    : library_(&library), profile_(std::move(profile)), rng_(seed) {}

std::vector<std::vector<adl::StepId>> DatasetBuilder::clean_training_set(
    const adl::Adl& adl, std::size_t count) {
  patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                 rng_.fork());
  std::vector<std::vector<adl::StepId>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(gen.clean_steps());
  return out;
}

std::vector<std::vector<adl::StepId>> DatasetBuilder::sensed_training_set(
    const adl::Adl& adl, std::size_t count,
    const SensingPipeline::Params& params) {
  patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                 rng_.fork());
  SensingPipeline pipeline(library_->tools(), adl.tools(), rng_(), params);
  std::vector<std::vector<adl::StepId>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(pipeline.run(gen.timed_episode()).extracted);
  }
  return out;
}

std::vector<std::vector<patient::TimedStep>> DatasetBuilder::timed_set(
    const adl::Adl& adl, std::size_t count) {
  patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                 rng_.fork());
  std::vector<std::vector<patient::TimedStep>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(gen.timed_episode());
  return out;
}

}  // namespace coreda::trace
