#include "trace/dataset.hpp"

namespace coreda::trace {

DatasetBuilder::DatasetBuilder(const adl::AdlLibrary& library,
                               patient::PatientProfile profile,
                               std::uint64_t seed)
    : library_(&library), profile_(std::move(profile)), rng_(seed) {}

std::vector<std::vector<adl::StepId>> DatasetBuilder::clean_training_set(
    const adl::Adl& adl, std::size_t count) {
  patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                 rng_.fork());
  std::vector<std::vector<adl::StepId>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(gen.clean_steps());
  return out;
}

std::vector<std::vector<adl::StepId>> DatasetBuilder::sensed_training_set(
    const adl::Adl& adl, std::size_t count,
    const SensingPipeline::Params& params) {
  patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                 rng_.fork());
  SensingPipeline pipeline(library_->tools(), adl.tools(), rng_(), params);
  std::vector<std::vector<adl::StepId>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(pipeline.run(gen.timed_episode()).extracted);
  }
  return out;
}

std::vector<std::vector<adl::StepId>>
DatasetBuilder::sensed_training_set_parallel(
    const adl::Adl& adl, std::size_t count, exec::TrialRunner& runner,
    const SensingPipeline::Params& params) {
  // One draw from the builder's stream seeds the whole set, so repeated
  // calls produce fresh-but-reproducible sets just like the serial method.
  const std::uint64_t set_seed = rng_();
  return runner.run(
      count, set_seed,
      [this, &adl, &params](exec::TrialContext& ctx) {
        // Episode-private generator and sensing stack: nothing here touches
        // the builder's stream, so episodes are independent of placement.
        patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                       ctx.rng.fork());
        SensingPipeline pipeline(library_->tools(), adl.tools(), ctx.rng(),
                                 params);
        return pipeline.run(gen.timed_episode()).extracted;
      });
}

std::vector<std::vector<patient::TimedStep>> DatasetBuilder::timed_set(
    const adl::Adl& adl, std::size_t count) {
  patient::BehaviorGenerator gen(adl, library_->tools(), profile_,
                                 rng_.fork());
  std::vector<std::vector<patient::TimedStep>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(gen.timed_episode());
  return out;
}

}  // namespace coreda::trace
