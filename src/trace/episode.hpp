#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "adl/types.hpp"
#include "sim/time.hpp"

namespace coreda::trace {

/// One tool manipulation inside a recorded episode.
struct StepRecord {
  adl::ToolId tool = adl::kNoTool;
  sim::TimePoint start;
  sim::Duration duration;
};

/// A recorded ADL process: the unit the paper calls a "training sample"
/// (§3.2: "one training sample is a complete process of an ADL").
struct Episode {
  std::string adl_name;
  std::vector<StepRecord> records;

  /// The bare StepId sequence the planner trains on.
  std::vector<adl::StepId> step_ids() const;

  sim::Duration total_duration() const;
};

/// Serializes episodes as CSV (one row per step record) and reads them
/// back. Format: adl,episode_index,tool,start_us,duration_us.
void write_episodes_csv(std::ostream& out, const std::vector<Episode>& eps);
std::vector<Episode> read_episodes_csv(std::istream& in);

}  // namespace coreda::trace
