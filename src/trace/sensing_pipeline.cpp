#include "trace/sensing_pipeline.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "pavenet/base_station.hpp"
#include "pavenet/node.hpp"
#include "sensors/world.hpp"
#include "sim/scheduler.hpp"

namespace coreda::trace {

SensingPipeline::SensingPipeline(const adl::ToolRegistry& tools,
                                 std::vector<adl::ToolId> instrumented,
                                 std::uint64_t seed)
    : SensingPipeline(tools, std::move(instrumented), seed, Params{}) {}

SensingPipeline::SensingPipeline(const adl::ToolRegistry& tools,
                                 std::vector<adl::ToolId> instrumented,
                                 std::uint64_t seed, Params params)
    : tools_(&tools),
      instrumented_(std::move(instrumented)),
      seeder_(seed),
      params_(params) {}

SensedResult SensingPipeline::run(
    const std::vector<patient::TimedStep>& script) {
  sim::Scheduler scheduler;
  sensors::ManipulationWorld world;
  pavenet::RadioChannel channel(scheduler, seeder_.fork(), params_.radio);
  pavenet::BaseStation station(scheduler, channel);

  std::vector<std::unique_ptr<pavenet::PavenetNode>> nodes;
  nodes.reserve(instrumented_.size());
  for (adl::ToolId id : instrumented_) {
    nodes.push_back(std::make_unique<pavenet::PavenetNode>(
        tools_->at(id), scheduler, world, channel, seeder_.fork(),
        params_.firmware));
    nodes.back()->power_on();
  }

  // Script the manipulations onto the virtual timeline.
  sim::TimePoint cursor = sim::TimePoint::origin();
  std::map<adl::ToolId, std::size_t> scripted;  // tool -> manipulations
  for (const patient::TimedStep& step : script) {
    cursor = cursor + step.think;
    const sim::TimePoint start = cursor;
    scheduler.schedule_at(start, [&world, tool = step.tool, start,
                                  duration = step.manipulation] {
      world.begin(tool, start, duration);
    });
    ++scripted[step.tool];
    cursor = cursor + step.manipulation;
  }

  scheduler.run_until(cursor + params_.drain);

  // Power the nodes down so their periodic ticks cannot outlive this call.
  for (auto& node : nodes) node->power_off();

  SensedResult result;
  result.radio = channel.stats();

  std::map<adl::ToolId, std::size_t> extracted_count;
  for (const pavenet::ToolUsageEvent& ep : station.episodes()) {
    if (result.extracted.empty() || result.extracted.back() != ep.tool) {
      result.extracted.push_back(ep.tool);
    }
    ++extracted_count[ep.tool];
  }

  for (const auto& [tool, n] : scripted) {
    const std::size_t seen = extracted_count.count(tool)
                                 ? extracted_count[tool]
                                 : 0;
    result.missed += seen < n ? n - seen : 0;
  }
  for (const auto& [tool, n] : extracted_count) {
    const std::size_t expected =
        scripted.count(tool) ? scripted[tool] : 0;
    result.spurious += n > expected ? n - expected : 0;
  }
  return result;
}

bool SensingPipeline::single_tool_trial(adl::ToolId tool,
                                        sim::Duration duration) {
  const SensedResult result = run({patient::TimedStep{
      tool, sim::Duration::seconds(1.0), duration}});
  return std::find(result.extracted.begin(), result.extracted.end(), tool) !=
         result.extracted.end();
}

}  // namespace coreda::trace
