#pragma once

#include <cstdint>
#include <vector>

#include "adl/tool.hpp"
#include "patient/generator.hpp"
#include "pavenet/node_config.hpp"
#include "pavenet/radio.hpp"
#include "trace/episode.hpp"

namespace coreda::trace {

/// Outcome of pushing one scripted episode through the full sensing stack
/// (synthetic signals -> PAVENET firmware -> radio -> base station).
struct SensedResult {
  /// The StepId sequence the server extracted, in arrival order with
  /// consecutive duplicates collapsed.
  std::vector<adl::StepId> extracted;
  /// Scripted manipulations that produced no usage episode (detector or
  /// radio misses — the complement of Table 3's extract precision).
  std::size_t missed = 0;
  /// Extracted usage episodes for tools that were never manipulated
  /// (accidental-bump false positives surviving the vote).
  std::size_t spurious = 0;
  pavenet::ChannelStats radio;
};

/// Drives a complete, isolated sensing stack for offline experiments.
///
/// Each run builds a fresh scheduler, world, radio channel, base station and
/// one node per instrumented tool, replays the scripted manipulations, and
/// reports what the server saw. Runs are deterministic in (seed, script).
class SensingPipeline {
 public:
  struct Params {
    pavenet::FirmwareConfig firmware{};
    pavenet::RadioChannel::Params radio{};
    /// Idle air time appended after the last manipulation so trailing
    /// detector windows and packets drain.
    sim::Duration drain = sim::Duration::seconds(3.0);
  };

  /// `tools` must outlive the pipeline. `instrumented` lists the tools that
  /// carry nodes (normally all tools of the deployment).
  SensingPipeline(const adl::ToolRegistry& tools,
                  std::vector<adl::ToolId> instrumented,
                  std::uint64_t seed);
  SensingPipeline(const adl::ToolRegistry& tools,
                  std::vector<adl::ToolId> instrumented, std::uint64_t seed,
                  Params params);

  /// Replays `script` (think/manipulation pairs, sequentially) through a
  /// fresh stack.
  SensedResult run(const std::vector<patient::TimedStep>& script);

  /// Single-tool trial for the Table 3 experiment: one manipulation of
  /// `tool` lasting `duration`; returns true when the server extracted it.
  bool single_tool_trial(adl::ToolId tool, sim::Duration duration);

  const Params& params() const noexcept { return params_; }

 private:
  const adl::ToolRegistry* tools_;
  std::vector<adl::ToolId> instrumented_;
  util::Rng seeder_;
  Params params_;
};

}  // namespace coreda::trace
