#include "trace/episode.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"

namespace coreda::trace {

std::vector<adl::StepId> Episode::step_ids() const {
  std::vector<adl::StepId> out;
  out.reserve(records.size());
  for (const StepRecord& r : records) out.push_back(r.tool);
  return out;
}

sim::Duration Episode::total_duration() const {
  if (records.empty()) return sim::Duration();
  const StepRecord& last = records.back();
  return (last.start + last.duration) - records.front().start;
}

void write_episodes_csv(std::ostream& out, const std::vector<Episode>& eps) {
  util::CsvWriter csv(out);
  csv.header({"adl", "episode", "tool", "start_us", "duration_us"});
  for (std::size_t i = 0; i < eps.size(); ++i) {
    for (const StepRecord& r : eps[i].records) {
      csv.field(eps[i].adl_name)
          .field(static_cast<std::uint64_t>(i))
          .field(static_cast<std::uint64_t>(r.tool))
          .field(r.start.total_micros())
          .field(r.duration.total_micros());
      csv.end_row();
    }
  }
}

std::vector<Episode> read_episodes_csv(std::istream& in) {
  std::vector<Episode> out;
  std::map<std::size_t, std::size_t> index_map;  // csv episode -> out index
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (header) {
      header = false;
      continue;
    }
    const auto fields = util::parse_csv_line(line);
    if (fields.size() != 5) {
      throw std::runtime_error("read_episodes_csv: malformed row");
    }
    const auto ep_index = static_cast<std::size_t>(std::stoull(fields[1]));
    auto [it, inserted] = index_map.try_emplace(ep_index, out.size());
    if (inserted) {
      out.push_back(Episode{fields[0], {}});
    }
    Episode& ep = out[it->second];
    StepRecord r;
    r.tool = static_cast<adl::ToolId>(std::stoul(fields[2]));
    r.start = sim::TimePoint::from_micros(std::stoll(fields[3]));
    r.duration = sim::Duration::micros(std::stoll(fields[4]));
    ep.records.push_back(r);
  }
  return out;
}

}  // namespace coreda::trace
