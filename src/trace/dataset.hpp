#pragma once

#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "patient/generator.hpp"
#include "patient/profile.hpp"
#include "trace/episode.hpp"
#include "trace/sensing_pipeline.hpp"
#include "util/rng.hpp"

namespace coreda::trace {

/// Builds the paper's datasets (§3): 40 extraction trials per tool
/// (Table 3's "320 samples ... averagely 40 samples for each tool"),
/// 120 training samples per ADL (§3.2) and 30 test samples per ADL (§3.3).
///
/// Every dataset is a pure function of (library, profile, seed), so
/// experiments are reproducible bit-for-bit.
class DatasetBuilder {
 public:
  /// `library` must outlive the builder.
  DatasetBuilder(const adl::AdlLibrary& library,
                 patient::PatientProfile profile, std::uint64_t seed);

  /// Clean StepId sequences straight from the routine (no sensing noise).
  std::vector<std::vector<adl::StepId>> clean_training_set(
      const adl::Adl& adl, std::size_t count);

  /// StepId sequences extracted by the real sensing stack from synthetic
  /// signals — what the paper's planner actually trained on. Sequences may
  /// miss weakly-sensed steps or carry spurious ones.
  std::vector<std::vector<adl::StepId>> sensed_training_set(
      const adl::Adl& adl, std::size_t count,
      const SensingPipeline::Params& params = SensingPipeline::Params());

  /// Like sensed_training_set(), but fanned across `runner` with one
  /// generator + sensing stack per episode, seeded per-episode by SplitMix
  /// streams. Deterministic at any job count (including jobs=1), but the
  /// episode streams differ from the serial method's fork chain, so the two
  /// variants produce different (equally valid) datasets.
  std::vector<std::vector<adl::StepId>> sensed_training_set_parallel(
      const adl::Adl& adl, std::size_t count, exec::TrialRunner& runner,
      const SensingPipeline::Params& params = SensingPipeline::Params());

  /// Timed episodes (for pipeline and closed-loop experiments).
  std::vector<std::vector<patient::TimedStep>> timed_set(const adl::Adl& adl,
                                                         std::size_t count);

  const patient::PatientProfile& profile() const noexcept { return profile_; }

 private:
  const adl::AdlLibrary* library_;
  patient::PatientProfile profile_;
  util::Rng rng_;
};

}  // namespace coreda::trace
