#include "reminding/catalog.hpp"

#include <algorithm>

namespace coreda::reminding {

MessageCatalog::MessageCatalog(std::string user_name)
    : user_name_(std::move(user_name)) {}

std::string MessageCatalog::message(const adl::Tool& tool,
                                    planning::RemindingLevel level) const {
  if (level == planning::RemindingLevel::kMinimal) {
    return "Please use " + tool.name + ".";
  }
  return "Mr. " + user_name_ + ", please use the " + tool.name +
         " in front of you.";
}

std::string MessageCatalog::picture_ref(const adl::Tool& tool) const {
  std::string slug = tool.name;
  std::replace(slug.begin(), slug.end(), ' ', '_');
  return "assets/tools/" + slug + ".png";
}

std::string MessageCatalog::praise() const { return "Excellent!"; }

}  // namespace coreda::reminding
