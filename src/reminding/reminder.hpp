#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "adl/tool.hpp"
#include "pavenet/base_station.hpp"
#include "planning/codec.hpp"
#include "reminding/catalog.hpp"
#include "sim/time.hpp"

namespace coreda::reminding {

/// Why a reminder fired — the paper's two trigger situations.
enum class Trigger : std::uint8_t {
  kIdleTimeout,  ///< the user did nothing for the tool's waiting period
  kWrongTool,    ///< the user started using an incorrect tool
};

std::string_view to_string(Trigger trigger) noexcept;

/// A fully rendered reminder: everything the three output modalities show.
struct DeliveredReminder {
  sim::TimePoint at;
  Trigger trigger = Trigger::kIdleTimeout;
  adl::ToolId target_tool = adl::kNoTool;
  planning::RemindingLevel level = planning::RemindingLevel::kMinimal;
  std::string text;        ///< display message
  std::string picture;     ///< display picture asset
  std::uint8_t green_blinks = 0;
  std::optional<adl::ToolId> wrong_tool;  ///< red-blinked, situation 2 only
  std::uint8_t red_blinks = 0;
};

/// The reminding subsystem: renders prompts into the three modalities (text
/// message, tool picture, LED blinking) and pushes the LED commands to the
/// nodes through the base station (paper §2.3).
///
/// Serving-path design: display strings are rendered once per (tool, level)
/// into a dense cache on first use, and the log/display buffers are reused
/// across sessions with a high-water mark (begin_session rewinds the mark;
/// the retired entries keep their string capacity), so a warm subsystem
/// delivers reminders without allocating.
class RemindingSubsystem {
 public:
  struct Params {
    std::uint8_t minimal_blinks = 3;   ///< "less blinks"
    std::uint8_t specific_blinks = 8;  ///< "more blinks"
  };

  /// `station` and `tools` must outlive the subsystem.
  RemindingSubsystem(pavenet::BaseStation& station,
                     const adl::ToolRegistry& tools, MessageCatalog catalog);
  RemindingSubsystem(pavenet::BaseStation& station,
                     const adl::ToolRegistry& tools, MessageCatalog catalog,
                     Params params);

  /// Delivers a prompt for `target`: display text + picture, green LED on
  /// the target tool, and — for wrong-tool triggers — red LED on the tool
  /// being misused. Returns the rendered reminder (also appended to the
  /// log). Throws std::out_of_range for unknown tool ids.
  const DeliveredReminder& remind(sim::TimePoint at, Trigger trigger,
                                  adl::ToolId target,
                                  planning::RemindingLevel level,
                                  std::optional<adl::ToolId> wrong_tool);

  /// Shows praise on the display ("Excellent!", Figure 1) and turns the
  /// target tool's LEDs off.
  void praise(sim::TimePoint at, adl::ToolId tool);

  /// Rewinds the reminder log and display for a fresh serving session.
  /// Retired entries keep their allocated capacity for reuse.
  void begin_session() noexcept;

  /// Reminders delivered in the current session, oldest first.
  std::span<const DeliveredReminder> log() const noexcept {
    return {log_.data(), log_used_};
  }
  /// Display lines (reminders and praise) of the current session.
  std::span<const std::string> display_lines() const noexcept {
    return {display_.data(), display_used_};
  }
  const MessageCatalog& catalog() const noexcept { return catalog_; }

 private:
  /// Serving-pool pre-sizes: comfortably above the most prompt-heavy
  /// realistic session (a reminder every few seconds of a 15-minute
  /// session); sessions needing more still work, they just allocate.
  static constexpr std::size_t kLogReserve = 256;
  static constexpr std::size_t kDisplayReserve = 384;

  /// Rendered-once display strings of one tool.
  struct RenderedTool {
    std::string minimal;
    std::string specific;
    std::string picture;
    bool valid = false;
  };

  const RenderedTool& rendered(adl::ToolId id, const adl::Tool& tool);
  DeliveredReminder& next_log_slot();
  std::string& next_display_line();

  pavenet::BaseStation* station_;
  const adl::ToolRegistry* tools_;
  MessageCatalog catalog_;
  Params params_;
  std::vector<DeliveredReminder> log_;
  std::vector<std::string> display_;
  std::size_t log_used_ = 0;      ///< high-water mark into log_
  std::size_t display_used_ = 0;  ///< high-water mark into display_
  std::vector<RenderedTool> render_cache_;  ///< dense, indexed by ToolId
  std::string praise_text_;
};

}  // namespace coreda::reminding
