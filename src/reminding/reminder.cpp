#include "reminding/reminder.hpp"

namespace coreda::reminding {

std::string_view to_string(Trigger trigger) noexcept {
  return trigger == Trigger::kIdleTimeout ? "idle-timeout" : "wrong-tool";
}

RemindingSubsystem::RemindingSubsystem(pavenet::BaseStation& station,
                                       const adl::ToolRegistry& tools,
                                       MessageCatalog catalog)
    : RemindingSubsystem(station, tools, std::move(catalog), Params{}) {}

RemindingSubsystem::RemindingSubsystem(pavenet::BaseStation& station,
                                       const adl::ToolRegistry& tools,
                                       MessageCatalog catalog, Params params)
    : station_(&station),
      tools_(&tools),
      catalog_(std::move(catalog)),
      params_(params) {}

const DeliveredReminder& RemindingSubsystem::remind(
    sim::TimePoint at, Trigger trigger, adl::ToolId target,
    planning::RemindingLevel level, std::optional<adl::ToolId> wrong_tool) {
  const adl::Tool& tool = tools_->at(target);
  const std::uint8_t blinks = level == planning::RemindingLevel::kMinimal
                                  ? params_.minimal_blinks
                                  : params_.specific_blinks;

  DeliveredReminder out;
  out.at = at;
  out.trigger = trigger;
  out.target_tool = target;
  out.level = level;
  out.text = catalog_.message(tool, level);
  out.picture = catalog_.picture_ref(tool);
  out.green_blinks = blinks;

  station_->send_led_command(target, pavenet::LedColor::kGreen, blinks);
  display_.push_back(out.text);

  if (trigger == Trigger::kWrongTool && wrong_tool) {
    tools_->at(*wrong_tool);  // validate before commanding
    out.wrong_tool = wrong_tool;
    out.red_blinks = blinks;
    station_->send_led_command(*wrong_tool, pavenet::LedColor::kRed, blinks);
  }

  log_.push_back(std::move(out));
  return log_.back();
}

void RemindingSubsystem::praise(sim::TimePoint /*at*/, adl::ToolId tool) {
  display_.push_back(catalog_.praise());
  station_->send_led_command(tool, pavenet::LedColor::kGreen, 0);
}

}  // namespace coreda::reminding
