#include "reminding/reminder.hpp"

#include <algorithm>

namespace coreda::reminding {

std::string_view to_string(Trigger trigger) noexcept {
  return trigger == Trigger::kIdleTimeout ? "idle-timeout" : "wrong-tool";
}

RemindingSubsystem::RemindingSubsystem(pavenet::BaseStation& station,
                                       const adl::ToolRegistry& tools,
                                       MessageCatalog catalog)
    : RemindingSubsystem(station, tools, std::move(catalog), Params{}) {}

RemindingSubsystem::RemindingSubsystem(pavenet::BaseStation& station,
                                       const adl::ToolRegistry& tools,
                                       MessageCatalog catalog, Params params)
    : station_(&station),
      tools_(&tools),
      catalog_(std::move(catalog)),
      params_(params),
      praise_text_(catalog_.praise()) {
  // Provision the serving pools up front. Prompt counts vary session to
  // session, so high-water marks learned from early sessions can still be
  // outgrown later; rendering every tool now and pre-sizing the log and
  // display slots (including each slot's string capacity) makes a warm
  // remind()/praise() allocation-free no matter which tools a session
  // touches or how prompt-heavy it turns out to be.
  std::size_t max_len = praise_text_.size();
  for (const adl::Tool& tool : tools_->tools()) {
    const RenderedTool& strings = rendered(tool.id, tool);
    max_len = std::max({max_len, strings.minimal.size(),
                        strings.specific.size(), strings.picture.size()});
  }
  log_.resize(kLogReserve);
  for (DeliveredReminder& slot : log_) {
    slot.text.reserve(max_len);
    slot.picture.reserve(max_len);
  }
  display_.resize(kDisplayReserve);
  for (std::string& line : display_) line.reserve(max_len);
}

const RemindingSubsystem::RenderedTool& RemindingSubsystem::rendered(
    adl::ToolId id, const adl::Tool& tool) {
  if (id >= render_cache_.size()) render_cache_.resize(id + 1);
  RenderedTool& entry = render_cache_[id];
  if (!entry.valid) {
    entry.minimal = catalog_.message(tool, planning::RemindingLevel::kMinimal);
    entry.specific =
        catalog_.message(tool, planning::RemindingLevel::kSpecific);
    entry.picture = catalog_.picture_ref(tool);
    entry.valid = true;
  }
  return entry;
}

DeliveredReminder& RemindingSubsystem::next_log_slot() {
  if (log_used_ == log_.size()) {
    log_.emplace_back();
  }
  return log_[log_used_++];
}

std::string& RemindingSubsystem::next_display_line() {
  if (display_used_ == display_.size()) {
    display_.emplace_back();
  }
  return display_[display_used_++];
}

const DeliveredReminder& RemindingSubsystem::remind(
    sim::TimePoint at, Trigger trigger, adl::ToolId target,
    planning::RemindingLevel level, std::optional<adl::ToolId> wrong_tool) {
  const adl::Tool& tool = tools_->at(target);
  const RenderedTool& strings = rendered(target, tool);
  const std::uint8_t blinks = level == planning::RemindingLevel::kMinimal
                                  ? params_.minimal_blinks
                                  : params_.specific_blinks;

  DeliveredReminder& out = next_log_slot();
  out.at = at;
  out.trigger = trigger;
  out.target_tool = target;
  out.level = level;
  // assign() into the reused slot: string capacity survives the rewind, so
  // a warm subsystem renders without allocating.
  out.text.assign(level == planning::RemindingLevel::kMinimal
                      ? strings.minimal
                      : strings.specific);
  out.picture.assign(strings.picture);
  out.green_blinks = blinks;
  out.wrong_tool.reset();
  out.red_blinks = 0;

  station_->send_led_command(target, pavenet::LedColor::kGreen, blinks);
  next_display_line().assign(out.text);

  if (trigger == Trigger::kWrongTool && wrong_tool) {
    tools_->at(*wrong_tool);  // validate before commanding
    out.wrong_tool = wrong_tool;
    out.red_blinks = blinks;
    station_->send_led_command(*wrong_tool, pavenet::LedColor::kRed, blinks);
  }

  return out;
}

void RemindingSubsystem::praise(sim::TimePoint /*at*/, adl::ToolId tool) {
  next_display_line().assign(praise_text_);
  station_->send_led_command(tool, pavenet::LedColor::kGreen, 0);
}

void RemindingSubsystem::begin_session() noexcept {
  log_used_ = 0;
  display_used_ = 0;
}

}  // namespace coreda::reminding
