#include "reminding/trigger.hpp"

#include <stdexcept>

namespace coreda::reminding {

TriggerMonitor::TriggerMonitor(sim::Scheduler& scheduler, Callback callback)
    : TriggerMonitor(scheduler, callback, Params{}) {}

TriggerMonitor::TriggerMonitor(sim::Scheduler& scheduler, Callback callback,
                               Params params)
    : scheduler_(&scheduler),
      callback_(callback),
      params_(params) {
  if (!callback_) {
    throw std::invalid_argument("TriggerMonitor: null callback");
  }
}

void TriggerMonitor::arm(adl::ToolId expected, sim::Duration timeout) {
  if (expected == adl::kNoTool) {
    throw std::invalid_argument("TriggerMonitor: cannot expect tool 0");
  }
  armed_ = true;
  expected_ = expected;
  timeout_ = timeout > sim::Duration() ? timeout : params_.default_timeout;
  start_timer();
}

sim::Duration TriggerMonitor::timeout_for(const adl::Tool& expected) const {
  return params_.allowance_base +
         expected.typical_usage_stddev * params_.allowance_factor +
         expected.typical_usage_mean;
}

void TriggerMonitor::disarm() {
  armed_ = false;
  expected_ = adl::kNoTool;
  timer_.cancel();
}

bool TriggerMonitor::notify_usage(adl::ToolId tool) {
  if (!armed_) return false;
  if (tool == expected_) {
    disarm();
    return true;
  }
  ++wrong_fired_;
  // Restart the waiting period: the intrusion proved the user is active but
  // off-track; give the prompt time to work before the idle path also fires.
  start_timer();
  callback_(Trigger::kWrongTool, tool);
  return false;
}

void TriggerMonitor::start_timer() {
  timer_.cancel();
  timer_ = scheduler_->schedule_after(timeout_, [this] {
    if (!armed_) return;
    ++idle_fired_;
    // Stay armed: if the user remains idle, the timer restarts so the
    // system keeps re-prompting.
    start_timer();
    callback_(Trigger::kIdleTimeout, adl::kNoTool);
  });
}

}  // namespace coreda::reminding
