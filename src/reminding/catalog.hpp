#pragma once

#include <string>

#include "adl/tool.hpp"
#include "planning/codec.hpp"

namespace coreda::reminding {

/// Builds the display strings of the reminding subsystem (paper §2.3).
///
/// Minimal prompts are terse imperatives ("use tea cup"); specific prompts
/// address the user by name and describe the tool ("Mr. Kim, use the black
/// tea-box in front of you."). Pictures are referenced by a stable asset
/// path derived from the tool name.
class MessageCatalog {
 public:
  explicit MessageCatalog(std::string user_name);

  std::string message(const adl::Tool& tool,
                      planning::RemindingLevel level) const;

  /// Asset reference of the tool picture shown on the display.
  std::string picture_ref(const adl::Tool& tool) const;

  /// The praise shown when the user takes the correct step ("Excellent!").
  std::string praise() const;

  const std::string& user_name() const noexcept { return user_name_; }

 private:
  std::string user_name_;
};

}  // namespace coreda::reminding
