#pragma once

#include "adl/tool.hpp"
#include "reminding/reminder.hpp"
#include "sim/scheduler.hpp"
#include "util/fn_ref.hpp"

namespace coreda::reminding {

/// Watches the sensed usage stream for the two situations that require a
/// reminder (paper §2.3):
///
///   1. idle timeout — the expected tool has not been used "for a certain
///      moment"; the waiting period is derived from usage statistics
///      (footnote 1 of the paper), here: expected think time plus a
///      configurable number of standard deviations.
///   2. wrong tool — a usage report for a tool other than the expected one.
///
/// The monitor is armed with the expected next tool after each completed
/// step; usage notifications either complete the step (disarming the
/// timer), or fire the wrong-tool callback immediately.
class TriggerMonitor {
 public:
  /// Non-owning: the callable (or bound object) must outlive the monitor.
  /// Bound once at construction; firing a trigger never allocates.
  using Callback = util::FnRef<void(Trigger trigger,
                                    adl::ToolId observed_tool)>;

  struct Params {
    /// Fallback waiting period (the "30 s" of the paper's Figure 1 note).
    sim::Duration default_timeout = sim::Duration::seconds(30.0);
    /// When arming with a tool, timeout = allowance_base +
    /// allowance_factor * typical usage of the *previous* tool.
    sim::Duration allowance_base = sim::Duration::seconds(12.0);
    double allowance_factor = 2.0;
  };

  TriggerMonitor(sim::Scheduler& scheduler, Callback callback);
  TriggerMonitor(sim::Scheduler& scheduler, Callback callback, Params params);

  /// Arms the idle timer expecting `expected`; `timeout` <= 0 uses the
  /// default. Re-arming replaces the previous expectation.
  void arm(adl::ToolId expected,
           sim::Duration timeout = sim::Duration::micros(0));

  /// Computes the statistical waiting period for a step (footnote 1):
  /// base allowance plus `allowance_factor` standard deviations of the
  /// expected tool's usage time.
  sim::Duration timeout_for(const adl::Tool& expected) const;

  /// Stops watching (ADL finished or paused).
  void disarm();

  /// Feeds one sensed usage event. Correct tool: disarms and returns true.
  /// Wrong tool: fires the wrong-tool callback (stays armed, the timer
  /// restarts) and returns false. Unarmed: returns false without firing.
  bool notify_usage(adl::ToolId tool);

  bool armed() const noexcept { return armed_; }
  adl::ToolId expected() const noexcept { return expected_; }
  std::uint64_t idle_triggers() const noexcept { return idle_fired_; }
  std::uint64_t wrong_tool_triggers() const noexcept { return wrong_fired_; }

 private:
  void start_timer();

  sim::Scheduler* scheduler_;
  Callback callback_;
  Params params_;
  bool armed_ = false;
  adl::ToolId expected_ = adl::kNoTool;
  sim::Duration timeout_{};
  sim::EventHandle timer_;
  std::uint64_t idle_fired_ = 0;
  std::uint64_t wrong_fired_ = 0;
};

}  // namespace coreda::reminding
