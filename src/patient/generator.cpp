#include "patient/generator.hpp"

#include <algorithm>

namespace coreda::patient {

BehaviorGenerator::BehaviorGenerator(const adl::Adl& adl,
                                     const adl::ToolRegistry& tools,
                                     PatientProfile profile, util::Rng rng)
    : adl_(&adl), tools_(&tools), profile_(std::move(profile)), rng_(rng) {}

const adl::AdlRoutine& BehaviorGenerator::pick_routine() {
  const auto& routines = adl_->routines();
  return routines[rng_.pick_index(routines.size())];
}

sim::Duration BehaviorGenerator::draw_manipulation(adl::ToolId tool) {
  const adl::Tool& t = tools_->at(tool);
  const double mean = t.typical_usage_mean.to_seconds() * profile_.pace;
  const double stddev = t.typical_usage_stddev.to_seconds();
  // Floor at 40 % of the mean: even a rushed manipulation takes real time.
  const double drawn = std::max(mean * 0.4, rng_.normal(mean, stddev));
  return sim::Duration::seconds(drawn);
}

sim::Duration BehaviorGenerator::draw_think() {
  const double drawn = std::max(
      0.5, rng_.normal(profile_.think_mean.to_seconds(),
                       profile_.think_stddev.to_seconds()));
  return sim::Duration::seconds(drawn);
}

std::vector<adl::StepId> BehaviorGenerator::clean_steps() {
  const adl::AdlRoutine& routine = pick_routine();
  std::vector<adl::StepId> out;
  out.reserve(routine.size());
  for (const adl::AdlStep& s : routine.steps()) out.push_back(s.step_id());
  return out;
}

std::vector<adl::StepId> BehaviorGenerator::noisy_steps() {
  const adl::AdlRoutine& routine = pick_routine();
  const auto adl_tools = adl_->tools();
  std::vector<adl::StepId> out;
  for (const adl::AdlStep& s : routine.steps()) {
    // A wrong-tool intrusion shows up in the sensed stream before the
    // correct step eventually happens (after a caregiver or the system
    // intervenes).
    if (rng_.bernoulli(profile_.p_wrong_tool) && adl_tools.size() > 1) {
      adl::ToolId wrong;
      do {
        wrong = adl_tools[rng_.pick_index(adl_tools.size())];
      } while (wrong == s.tool);
      out.push_back(wrong);
    }
    out.push_back(s.step_id());
  }
  return out;
}

std::vector<TimedStep> BehaviorGenerator::timed_episode() {
  const adl::AdlRoutine& routine = pick_routine();
  std::vector<TimedStep> out;
  out.reserve(routine.size());
  for (const adl::AdlStep& s : routine.steps()) {
    out.push_back(
        TimedStep{s.tool, draw_think(), draw_manipulation(s.tool)});
  }
  return out;
}

}  // namespace coreda::patient
