#pragma once

#include <string>

#include "sim/time.hpp"

namespace coreda::patient {

/// Behavioural parameters of one simulated care recipient.
///
/// This model replaces the paper's human participants (25 dementia patients
/// of NPO Nenrin Support, aged 72-91). The two error modes mirror the two
/// situations that trigger reminders in the paper (§2.3): freezing mid-ADL
/// ("does not use the tool s/he should use for a certain moment") and
/// wrong-tool intrusions ("incorrectly uses another tool").
struct PatientProfile {
  std::string name = "Tanaka";

  /// Dementia severity in [0, 1]. with_severity() derives the error rates
  /// below from it; they can also be set directly for targeted tests.
  double severity = 0.0;

  /// Per-decision probability of freezing (doing nothing until prompted).
  double p_idle = 0.0;
  /// Per-decision probability of reaching for an incorrect tool.
  double p_wrong_tool = 0.0;

  /// Probability of acting on a prompt, by reminding level. Specific
  /// prompts (long message, more blinks) get through more reliably — the
  /// trade the reward function prices at 100 vs 50.
  double comply_minimal = 0.85;
  double comply_specific = 0.97;

  /// Pause between finishing one step and starting the next.
  sim::Duration think_mean = sim::Duration::seconds(4.0);
  sim::Duration think_stddev = sim::Duration::seconds(1.5);

  /// Delay between perceiving a prompt and touching the tool.
  sim::Duration reaction_mean = sim::Duration::seconds(3.0);
  sim::Duration reaction_stddev = sim::Duration::seconds(1.0);

  /// Multiplier on tool manipulation durations (slowness with age).
  double pace = 1.0;

  /// Derives a coherent profile from a severity level: a severity-0 user
  /// never errs; at severity 1 roughly half the decisions go wrong.
  static PatientProfile with_severity(std::string name, double severity);

  /// In-place flavor of with_severity for hot paths that recycle one
  /// profile object per shard (FleetEngine): rewrites only the
  /// severity-derived fields, leaving `name` (and its string capacity)
  /// alone — no allocation. Throws on severity outside [0, 1].
  void apply_severity(double severity);
};

}  // namespace coreda::patient
