#pragma once

#include <functional>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "adl/routine.hpp"
#include "adl/tool.hpp"
#include "patient/profile.hpp"
#include "planning/codec.hpp"
#include "sensors/world.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace coreda::patient {

/// What the simulated patient did, for tests and the scenario player.
struct PatientEvent {
  enum class Kind : std::uint8_t {
    kStartedStep,    ///< began manipulating the correct next tool
    kWrongTool,      ///< began manipulating an incorrect tool
    kFroze,          ///< decided to do nothing (waits for a prompt)
    kCompliedPrompt, ///< acted on a received prompt
    kIgnoredPrompt,  ///< prompt did not get through
    kFinishedAdl,
  };
  sim::TimePoint at;
  Kind kind = Kind::kStartedStep;
  adl::ToolId tool = adl::kNoTool;
};

std::string_view to_string(PatientEvent::Kind kind) noexcept;

/// Closed-loop simulated care recipient.
///
/// The actor runs on the shared scheduler: after finishing a step it thinks,
/// then either proceeds to the correct next tool, freezes, or grabs a wrong
/// tool (per its profile). Manipulations are written into the
/// ManipulationWorld where the PAVENET nodes sense them. Prompts arrive via
/// receive_prompt() — from CoReDA's reminding subsystem in the full loop —
/// and are obeyed with level-dependent probability.
class PatientActor {
 public:
  PatientActor(sim::Scheduler& scheduler, sensors::ManipulationWorld& world,
               const adl::ToolRegistry& tools, PatientProfile profile,
               util::Rng rng);

  /// Cancels any still-scheduled behaviour callback: a session that hits
  /// its deadline destroys the actor while its next think/act event is
  /// still in the queue, and that event must not fire into freed memory.
  ~PatientActor() { pending_.cancel(); }

  PatientActor(const PatientActor&) = delete;
  PatientActor& operator=(const PatientActor&) = delete;

  /// Starts performing `routine` (must outlive the run). `resume_from`
  /// continues from that many already-completed steps (segment resume in
  /// scripted multi-ADL sessions); 0 starts fresh. Resuming at or past the
  /// routine's end marks the ADL finished without acting.
  void begin(const adl::AdlRoutine& routine, std::size_t resume_from = 0);

  /// Halts self-initiated behaviour without forgetting progress: cancels
  /// the scheduled think/act event (caregiver interruption, or a scripted
  /// segment handing the session to another ADL). begin() restarts acting.
  void pause();

  /// Re-seats the actor for its next session without reconstructing it:
  /// swaps in the new profile and RNG stream, cancels any scheduled
  /// behaviour and forgets queued forced decisions. Buffers (the event
  /// log) keep their capacity. Call begin() afterwards to start acting.
  void reset(const PatientProfile& profile, util::Rng rng);

  /// Delivers a prompt (tool to use next + reminding level). No-op when the
  /// patient is mid-manipulation or the ADL is finished.
  void receive_prompt(adl::ToolId tool, planning::RemindingLevel level);

  bool finished() const noexcept { return finished_; }
  bool waiting_for_help() const noexcept { return waiting_; }
  std::size_t steps_completed() const noexcept { return completed_; }
  const std::vector<PatientEvent>& events() const noexcept { return events_; }
  const PatientProfile& profile() const noexcept { return profile_; }

  /// Queues a forced decision outcome (for deterministic scenario replay).
  /// Each decision point consumes one queued entry before falling back to
  /// the stochastic profile. kStartedStep = proceed correctly, kFroze =
  /// freeze, kWrongTool = grab `wrong_tool` (random wrong tool when 0).
  void force_next_decision(PatientEvent::Kind kind,
                           adl::ToolId wrong_tool = adl::kNoTool);

 private:
  /// Event-log pre-size: above the busiest realistic session (a decision
  /// or prompt reaction every few seconds of a 15-minute session).
  static constexpr std::size_t kEventReserve = 512;

  void think_then_act();
  void act();
  void manipulate(adl::ToolId tool);
  void on_manipulation_done(adl::ToolId tool);
  void record(PatientEvent::Kind kind, adl::ToolId tool);

  sim::Scheduler* scheduler_;
  sensors::ManipulationWorld* world_;
  const adl::ToolRegistry* tools_;
  PatientProfile profile_;
  util::Rng rng_;

  const adl::AdlRoutine* routine_ = nullptr;
  std::size_t completed_ = 0;
  bool busy_ = false;      ///< currently manipulating a tool
  bool waiting_ = false;   ///< frozen/confused, needs a prompt
  bool finished_ = false;
  sim::EventHandle pending_;
  std::vector<PatientEvent> events_;

  /// Queued forced decisions, consumed front to back via forced_next_.
  /// A vector + cursor (not a deque): pops are index bumps, and the warm
  /// buffer never re-allocates block-by-block the way a deque ring does.
  std::vector<std::pair<PatientEvent::Kind, adl::ToolId>> forced_;
  std::size_t forced_next_ = 0;
  /// A prompt that arrived mid-manipulation; acted on once the current
  /// manipulation ends (people notice the blinking LED but finish the
  /// motion first).
  std::optional<std::pair<adl::ToolId, planning::RemindingLevel>>
      pending_prompt_;
};

}  // namespace coreda::patient
