#pragma once

#include <vector>

#include "adl/library.hpp"
#include "adl/routine.hpp"
#include "patient/profile.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace coreda::patient {

/// One planned tool manipulation of an offline-generated episode.
struct TimedStep {
  adl::ToolId tool = adl::kNoTool;
  sim::Duration think;         ///< pause before touching the tool
  sim::Duration manipulation;  ///< how long the tool is handled
};

/// Offline episode generator: produces the raw material of the paper's
/// datasets (320 extraction samples, 120 training samples per ADL, 30 test
/// samples per ADL) without running the closed loop.
///
/// Training samples are "a complete process of an ADL" (paper §3.2): the
/// user follows one of their routines start to finish. Durations are drawn
/// from each tool's typical-usage statistics scaled by the patient's pace.
class BehaviorGenerator {
 public:
  /// References must outlive the generator.
  BehaviorGenerator(const adl::Adl& adl, const adl::ToolRegistry& tools,
                    PatientProfile profile, util::Rng rng);

  /// The StepId sequence of one complete, correctly-ordered process.
  /// Multi-routine ADLs pick a routine uniformly at random.
  std::vector<adl::StepId> clean_steps();

  /// Like clean_steps() but through the patient's error model: steps may be
  /// repeated after a wrong-tool intrusion (the intruding tool appears in
  /// the sequence) — the kind of noise the sensing subsystem actually
  /// delivers to the planner.
  std::vector<adl::StepId> noisy_steps();

  /// A fully timed episode of the chosen routine, for feeding the sensing
  /// pipeline.
  std::vector<TimedStep> timed_episode();

  const PatientProfile& profile() const noexcept { return profile_; }

 private:
  const adl::AdlRoutine& pick_routine();
  sim::Duration draw_manipulation(adl::ToolId tool);
  sim::Duration draw_think();

  const adl::Adl* adl_;
  const adl::ToolRegistry* tools_;
  PatientProfile profile_;
  util::Rng rng_;
};

}  // namespace coreda::patient
