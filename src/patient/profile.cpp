#include "patient/profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::patient {

PatientProfile PatientProfile::with_severity(std::string name,
                                             double severity) {
  if (severity < 0.0 || severity > 1.0) {
    throw std::invalid_argument("PatientProfile: severity not in [0, 1]");
  }
  PatientProfile p;
  p.name = std::move(name);
  p.severity = severity;
  // Freezes dominate wrong-tool intrusions roughly 3:2 in observational
  // dementia-care literature; total error rate scales to ~50 % at the top.
  p.p_idle = 0.30 * severity;
  p.p_wrong_tool = 0.20 * severity;
  p.comply_minimal = std::max(0.5, 0.90 - 0.25 * severity);
  p.comply_specific = std::max(0.75, 0.99 - 0.10 * severity);
  p.pace = 1.0 + 0.6 * severity;
  p.think_mean = sim::Duration::seconds(4.0 + 6.0 * severity);
  return p;
}

}  // namespace coreda::patient
