#include "patient/profile.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::patient {

PatientProfile PatientProfile::with_severity(std::string name,
                                             double severity) {
  PatientProfile p;
  p.name = std::move(name);
  p.apply_severity(severity);
  return p;
}

void PatientProfile::apply_severity(double new_severity) {
  if (new_severity < 0.0 || new_severity > 1.0) {
    throw std::invalid_argument("PatientProfile: severity not in [0, 1]");
  }
  severity = new_severity;
  // Freezes dominate wrong-tool intrusions roughly 3:2 in observational
  // dementia-care literature; total error rate scales to ~50 % at the top.
  p_idle = 0.30 * severity;
  p_wrong_tool = 0.20 * severity;
  comply_minimal = std::max(0.5, 0.90 - 0.25 * severity);
  comply_specific = std::max(0.75, 0.99 - 0.10 * severity);
  pace = 1.0 + 0.6 * severity;
  think_mean = sim::Duration::seconds(4.0 + 6.0 * severity);
}

}  // namespace coreda::patient
