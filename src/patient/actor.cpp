#include "patient/actor.hpp"

#include <algorithm>

namespace coreda::patient {

std::string_view to_string(PatientEvent::Kind kind) noexcept {
  using enum PatientEvent::Kind;
  switch (kind) {
    case kStartedStep:
      return "started-step";
    case kWrongTool:
      return "wrong-tool";
    case kFroze:
      return "froze";
    case kCompliedPrompt:
      return "complied-prompt";
    case kIgnoredPrompt:
      return "ignored-prompt";
    case kFinishedAdl:
      return "finished-adl";
  }
  return "?";
}

PatientActor::PatientActor(sim::Scheduler& scheduler,
                           sensors::ManipulationWorld& world,
                           const adl::ToolRegistry& tools,
                           PatientProfile profile, util::Rng rng)
    : scheduler_(&scheduler),
      world_(&world),
      tools_(&tools),
      profile_(std::move(profile)),
      rng_(rng) {
  // Event counts vary session to session; pre-size for the worst realistic
  // session so record() stays allocation-free on a warm actor.
  events_.reserve(kEventReserve);
}

void PatientActor::reset(const PatientProfile& profile, util::Rng rng) {
  pending_.cancel();
  profile_ = profile;
  rng_ = rng;
  forced_.clear();
  forced_next_ = 0;
  routine_ = nullptr;
}

void PatientActor::begin(const adl::AdlRoutine& routine,
                         std::size_t resume_from) {
  pending_.cancel();
  routine_ = &routine;
  completed_ = std::min(resume_from, routine.size());
  busy_ = false;
  waiting_ = false;
  finished_ = completed_ == routine.size();
  pending_prompt_.reset();
  events_.clear();
  if (!finished_) think_then_act();
}

void PatientActor::pause() {
  pending_.cancel();
  busy_ = false;
  waiting_ = false;
  pending_prompt_.reset();
}

void PatientActor::think_then_act() {
  const double think = std::max(
      0.5, rng_.normal(profile_.think_mean.to_seconds(),
                       profile_.think_stddev.to_seconds()));
  pending_ = scheduler_->schedule_after(sim::Duration::seconds(think),
                                        [this] { act(); });
}

void PatientActor::act() {
  if (finished_ || routine_ == nullptr) return;
  const adl::ToolId correct = routine_->step(completed_).tool;

  PatientEvent::Kind outcome = PatientEvent::Kind::kStartedStep;
  adl::ToolId wrong = adl::kNoTool;
  if (forced_next_ < forced_.size()) {
    outcome = forced_[forced_next_].first;
    wrong = forced_[forced_next_].second;
    if (++forced_next_ == forced_.size()) {
      forced_.clear();
      forced_next_ = 0;
    }
  } else {
    const double draw = rng_.uniform();
    if (draw < profile_.p_idle) {
      outcome = PatientEvent::Kind::kFroze;
    } else if (draw < profile_.p_idle + profile_.p_wrong_tool) {
      outcome = PatientEvent::Kind::kWrongTool;
    }
  }

  switch (outcome) {
    case PatientEvent::Kind::kFroze:
      waiting_ = true;
      record(PatientEvent::Kind::kFroze, adl::kNoTool);
      return;
    case PatientEvent::Kind::kWrongTool: {
      if (wrong == adl::kNoTool) {
        const auto& all = tools_->tools();
        do {
          wrong = all[rng_.pick_index(all.size())].id;
        } while (wrong == correct && all.size() > 1);
      }
      record(PatientEvent::Kind::kWrongTool, wrong);
      manipulate(wrong);
      return;
    }
    default:
      record(PatientEvent::Kind::kStartedStep, correct);
      manipulate(correct);
      return;
  }
}

void PatientActor::manipulate(adl::ToolId tool) {
  busy_ = true;
  waiting_ = false;
  const adl::Tool& t = tools_->at(tool);
  const double mean = t.typical_usage_mean.to_seconds() * profile_.pace;
  const double duration = std::max(
      mean * 0.4, rng_.normal(mean, t.typical_usage_stddev.to_seconds()));
  world_->begin(tool, scheduler_->now(), sim::Duration::seconds(duration));
  pending_ = scheduler_->schedule_after(
      sim::Duration::seconds(duration),
      [this, tool] { on_manipulation_done(tool); });
}

void PatientActor::on_manipulation_done(adl::ToolId tool) {
  busy_ = false;
  const adl::ToolId correct = routine_->step(completed_).tool;
  if (tool == correct) {
    pending_prompt_.reset();
    ++completed_;
    if (completed_ == routine_->size()) {
      finished_ = true;
      record(PatientEvent::Kind::kFinishedAdl, tool);
      return;
    }
    think_then_act();
  } else if (pending_prompt_) {
    // A prompt arrived while fumbling with the wrong tool; act on it now.
    const auto [prompted_tool, level] = *pending_prompt_;
    pending_prompt_.reset();
    receive_prompt(prompted_tool, level);
  } else {
    // A wrong manipulation leaves the patient confused: wait for help.
    waiting_ = true;
  }
}

void PatientActor::receive_prompt(adl::ToolId tool,
                                  planning::RemindingLevel level) {
  if (finished_ || routine_ == nullptr) return;
  if (busy_) {
    pending_prompt_ = {tool, level};
    return;
  }
  const double comply = level == planning::RemindingLevel::kMinimal
                            ? profile_.comply_minimal
                            : profile_.comply_specific;
  if (!rng_.bernoulli(comply)) {
    record(PatientEvent::Kind::kIgnoredPrompt, tool);
    return;
  }
  record(PatientEvent::Kind::kCompliedPrompt, tool);
  pending_.cancel();  // abandon any scheduled self-initiated action
  const double reaction = std::max(
      0.5, rng_.normal(profile_.reaction_mean.to_seconds(),
                       profile_.reaction_stddev.to_seconds()));
  pending_ = scheduler_->schedule_after(sim::Duration::seconds(reaction),
                                        [this, tool] { manipulate(tool); });
}

void PatientActor::force_next_decision(PatientEvent::Kind kind,
                                       adl::ToolId wrong_tool) {
  forced_.emplace_back(kind, wrong_tool);
}

void PatientActor::record(PatientEvent::Kind kind, adl::ToolId tool) {
  events_.push_back(PatientEvent{scheduler_->now(), kind, tool});
}

}  // namespace coreda::patient
