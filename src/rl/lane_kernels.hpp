#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__x86_64__) && defined(__GNUC__)
#define COREDA_LANE_KERNELS_X86 1
#endif

namespace coreda::rl::kern {

namespace detail {
#ifdef COREDA_LANE_KERNELS_X86
/// Cached result of the startup AVX2 probe (see simd_enabled()).
extern const bool g_simd;
/// Out-of-line AVX2 bodies (lane_kernels.cpp, function-level target
/// attributes). Callers must check g_simd and the stated width
/// preconditions — the inline dispatchers below are the only intended
/// call sites.
double row_max_avx2(const double* row, std::size_t n) noexcept;  // n >= 4
std::size_t count_ge_avx2(const double* row, double threshold,
                          std::size_t n) noexcept;
struct RowStatsResult {
  double max;
  std::uint64_t tie_mask;
  std::uint32_t near_count;
};
RowStatsResult row_stats_avx2(const double* row, double tolerance,
                              std::size_t n) noexcept;  // 4 <= n <= 64
RowStatsResult row_stats_given_max_avx2(const double* row, double max,
                                        double tolerance,
                                        std::size_t n) noexcept;  // n <= 64
void cf_update_avx2(double* row, const double* rewards, double bootstrap,
                    double alpha, std::size_t taken, std::size_t n) noexcept;
void cf_update_terminal_avx2(double* row, const double* rewards, double alpha,
                             std::size_t taken, std::size_t n) noexcept;
void decay_compact_avx2(double* vals, std::uint32_t* idxs, std::uint32_t* len,
                        double factor, double cutoff) noexcept;  // *len >= 4
#endif
}  // namespace detail

/// Whether the explicit SIMD kernel path is active. True when the CPU
/// reports AVX2 and the COREDA_LANE_SIMD environment variable is not "0"
/// (the override exists so the equivalence tests can exercise both paths on
/// the same machine). Decided once per process.
bool simd_enabled() noexcept;

/// Maximum of `row[0..n)` — the value std::max_element would return.
/// n must be >= 1. The AVX2 path falls back to the scalar scan whenever the
/// maximum is a zero: a vector max reduction may return the other-signed
/// zero of a {+0.0, -0.0} tie, and the lane engine's contract is
/// bit-identical doubles, not just numerically-equal ones.
///
/// The scalar bodies of all five kernels live here in the header: a lane
/// transition makes four to six kernel calls over rows of a handful of
/// doubles, and the cross-TU call + dispatch overhead measurably exceeded
/// the work itself on bench_fleet_throughput. The dispatch reads one cached
/// bool; the AVX2 bodies stay out of line behind it.
inline double row_max(const double* row, std::size_t n) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd && n >= 4) return detail::row_max_avx2(row, n);
#endif
  double m = row[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (row[i] > m) m = row[i];
  }
  return m;
}

/// Number of entries with row[i] >= threshold (the tie count of
/// QTable::is_uniquely_greedy).
inline std::size_t count_ge(const double* row, double threshold,
                            std::size_t n) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd) return detail::count_ge_avx2(row, threshold, n);
#endif
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (row[i] >= threshold) ++count;
  }
  return count;
}

/// Everything ε-greedy selection + the Watkins unique-greedy test need from
/// one Q row, in one fused pass: the row maximum (row_max semantics,
/// including the signed-zero rule), a bitmask of the exact ties
/// (bit a set iff row[a] == max — the reservoir's candidate set) and the
/// count of entries within `tolerance` of the maximum (count_ge's tie
/// count). Branch-free accumulation: the separate reservoir scan +
/// count_ge pass cost two data-dependent branch streams per transition.
/// n must be in [1, 64] (the mask is one word; Q rows are action counts).
struct RowStats {
  double max = 0.0;
  std::uint64_t tie_mask = 0;    ///< bit a set iff row[a] == max
  std::uint32_t near_count = 0;  ///< entries with row[a] >= max - tolerance
};

inline RowStats row_stats(const double* row, double tolerance,
                          std::size_t n) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd && n >= 4) {
    const detail::RowStatsResult r = detail::row_stats_avx2(row, tolerance, n);
    return RowStats{r.max, r.tie_mask, r.near_count};
  }
#endif
  RowStats st;
  st.max = row[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (row[i] > st.max) st.max = row[i];
  }
  const double threshold = st.max - tolerance;
  for (std::size_t i = 0; i < n; ++i) {
    st.tie_mask |= static_cast<std::uint64_t>(row[i] == st.max) << i;
    st.near_count += row[i] >= threshold;
  }
  return st;
}

/// row_stats when the row maximum is already known (carried from a prior
/// row_max over bitwise-identical row bytes): skips the max reduction and
/// performs only the tie-mask / tolerance-count sweep. Callers must
/// guarantee `max` is exactly what row_max(row, n) would return — the lane
/// engine's transition carry proves this via its touched-row tracking.
inline RowStats row_stats_given_max(const double* row, double max,
                                    double tolerance,
                                    std::size_t n) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd && n >= 4) {
    const detail::RowStatsResult r =
        detail::row_stats_given_max_avx2(row, max, tolerance, n);
    return RowStats{r.max, r.tie_mask, r.near_count};
  }
#endif
  RowStats st;
  st.max = max;
  const double threshold = max - tolerance;
  for (std::size_t i = 0; i < n; ++i) {
    st.tie_mask |= static_cast<std::uint64_t>(row[i] == max) << i;
    st.near_count += row[i] >= threshold;
  }
  return st;
}

/// Fused counterfactual row backup for a non-terminal transition:
///   row[a] += alpha * ((rewards[a] + bootstrap) - row[a])   for a != taken.
/// Per-cell IEEE ops in the exact shape of
/// TdLambdaQLearning::update_counterfactual_row; the AVX2 path keeps
/// mul and add separate (no FMA contraction) and preserves row[taken]
/// bit-exactly via a blend instead of adding a zero delta.
inline void cf_update(double* row, const double* rewards, double bootstrap,
                      double alpha, std::size_t taken,
                      std::size_t n) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd) {
    detail::cf_update_avx2(row, rewards, bootstrap, alpha, taken, n);
    return;
  }
#endif
  for (std::size_t a = 0; a < n; ++a) {
    if (a == taken) continue;
    const double target = rewards[a] + bootstrap;
    const double delta = target - row[a];
    row[a] += alpha * delta;
  }
}

/// Terminal variant: target is rewards[a] alone. Kept separate instead of
/// passing bootstrap = 0.0 because rewards[a] + 0.0 flips the sign of a
/// -0.0 reward — the scalar path never performs that add.
inline void cf_update_terminal(double* row, const double* rewards,
                               double alpha, std::size_t taken,
                               std::size_t n) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd) {
    detail::cf_update_terminal_avx2(row, rewards, alpha, taken, n);
    return;
  }
#endif
  for (std::size_t a = 0; a < n; ++a) {
    if (a == taken) continue;
    const double delta = rewards[a] - row[a];
    row[a] += alpha * delta;
  }
}

/// Batched eligibility-trace decay over one lane slot: vals[i] *= factor
/// for the first `*len` entries, then compacts out entries whose decayed
/// value fell below `cutoff` (dropping an entry zeroes nothing — entries
/// are a sparse set, identical to EligibilityTraces' swap-pop semantics).
/// idxs is compacted in step with vals; *len is updated.
inline void decay_compact(double* vals, std::uint32_t* idxs,
                          std::uint32_t* len, double factor,
                          double cutoff) noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  if (detail::g_simd && *len >= 4) {
    detail::decay_compact_avx2(vals, idxs, len, factor, cutoff);
    return;
  }
#endif
  const std::uint32_t n = *len;
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    // Branchless compaction: always store, advance only on kept entries
    // (out <= i, so the store never outruns the read cursor).
    const double v = vals[i] * factor;
    vals[out] = v;
    idxs[out] = idxs[i];
    out += !(v < cutoff);  // NOT v >= cutoff: NaN must stay kept, as before
  }
  *len = out;
}

}  // namespace coreda::rl::kern
