#pragma once

#include <span>

#include "rl/q_table.hpp"
#include "rl/traces.hpp"
#include "rl/types.hpp"

namespace coreda::rl {

/// Hyper-parameters of the TD(λ) Q-Learning learner.
struct TdLambdaConfig {
  double alpha = 0.2;   ///< learning rate
  double gamma = 0.9;   ///< discount ("converge factor" β in the paper)
  double lambda = 0.7;  ///< trace decay; 0 reduces to one-step Q-Learning
  TraceType trace_type = TraceType::kReplacing;
  /// Watkins' Q(λ): cut all traces after a non-greedy (exploratory) action,
  /// keeping the backup target consistent with the greedy policy.
  bool watkins_cut = true;
  /// Initial Q value. Optimistic initialization (>= the best attainable
  /// return) makes the greedy policy try untested actions first, which is
  /// what keeps tabular Q-Learning from locking onto a lucky early action
  /// in reward-sparse tasks.
  double initial_q = 0.0;
};

/// Watkins' TD(λ) Q-Learning — the algorithm the paper runs via
/// RL Toolbox 2.0 (its planning subsystem, §2.2).
///
/// Off-policy: the TD target bootstraps from max_a' Q(s',a') regardless of
/// the action the behaviour policy will actually take. Eligibility traces
/// credit earlier (s,a) pairs of the same episode, which is what lets the
/// big terminal reward (1000 for completing an ADL) propagate down a
/// four-step routine in a handful of episodes rather than four separate
/// sweeps.
class TdLambdaQLearning {
 public:
  /// Throws std::invalid_argument when alpha/gamma/lambda are outside
  /// [0, 1] or alpha is zero.
  TdLambdaQLearning(std::size_t num_states, std::size_t num_actions,
                    TdLambdaConfig config = TdLambdaConfig());

  /// Resets traces at an episode boundary (the Q table persists).
  void begin_episode();

  /// Performs one backup for transition `t`. `t.action` must be the action
  /// actually taken in `t.state`. Returns the TD error δ.
  double observe(const Transition& t);

  /// One-step backup of a *counterfactual* action: updates Q(s, a) toward
  /// r + γ max Q(s') without touching the eligibility traces. Used by
  /// offline trainers in environments whose transitions do not depend on
  /// the action (the reward of every action is then computable from the
  /// recorded trajectory). Returns the TD error δ.
  double update_counterfactual(StateId s, ActionId a, double reward,
                               StateId next_state, bool terminal);

  /// Fused counterfactual sweep: exactly equivalent to calling
  /// update_counterfactual(s, a, rewards[a], next_state, terminal) for
  /// every action a != taken in ascending order, but with the bootstrap
  /// max Q(s') hoisted out of the loop (it is re-read per action only in
  /// the aliased s == s' case, where the sweep's own writes can move the
  /// row maximum). `rewards` must be num_actions() wide
  /// (std::invalid_argument otherwise).
  void update_counterfactual_row(StateId s, std::span<const double> rewards,
                                 ActionId taken, StateId next_state,
                                 bool terminal);

  const QTable& q() const noexcept { return q_; }
  QTable& q() noexcept { return q_; }
  const TdLambdaConfig& config() const noexcept { return config_; }
  const EligibilityTraces& traces() const noexcept { return traces_; }
  std::uint64_t updates() const noexcept { return updates_; }

 private:
  TdLambdaConfig config_;
  QTable q_;
  EligibilityTraces traces_;
  std::uint64_t updates_ = 0;
};

}  // namespace coreda::rl
