#include "rl/td_lambda.hpp"

#include <stdexcept>

namespace coreda::rl {

namespace {

void validate(const TdLambdaConfig& c) {
  if (c.alpha <= 0.0 || c.alpha > 1.0) {
    throw std::invalid_argument("TdLambdaConfig: alpha must be in (0,1]");
  }
  if (c.gamma < 0.0 || c.gamma > 1.0) {
    throw std::invalid_argument("TdLambdaConfig: gamma must be in [0,1]");
  }
  if (c.lambda < 0.0 || c.lambda > 1.0) {
    throw std::invalid_argument("TdLambdaConfig: lambda must be in [0,1]");
  }
}

}  // namespace

TdLambdaQLearning::TdLambdaQLearning(std::size_t num_states,
                                     std::size_t num_actions,
                                     TdLambdaConfig config)
    : config_((validate(config), config)),
      q_(num_states, num_actions, config.initial_q),
      traces_(num_states, num_actions, config.trace_type) {}

void TdLambdaQLearning::begin_episode() { traces_.clear(); }

double TdLambdaQLearning::observe(const Transition& t) {
  // Watkins' condition for keeping traces is "the behaviour followed the
  // greedy policy". We apply it strictly: a *tied* maximum is treated as
  // non-greedy, because with ties (e.g. an optimistic fresh table) the TD
  // error of the taken action says nothing about the value of the path the
  // earlier pairs bootstrapped through — propagating it backward would drag
  // correct earlier actions down with every exploratory mistake.
  const bool strictly_greedy =
      !config_.watkins_cut || q_.is_uniquely_greedy(t.state, t.action);

  const double target =
      t.terminal ? t.reward : t.reward + config_.gamma * q_.max_q(t.next_state);
  const double delta = target - q_.get(t.state, t.action);
  ++updates_;

  if (!strictly_greedy) {
    // Exploratory step: one-step update of the taken pair only, and the
    // trace history is no longer on the greedy path — drop it.
    q_.add(t.state, t.action, config_.alpha * delta);
    traces_.clear();
    return delta;
  }

  if (config_.trace_type == TraceType::kReplacing) {
    traces_.clear_state_actions(t.state, t.action);
  }
  traces_.visit(t.state, t.action);
  traces_.for_each([this, delta](StateId s, ActionId a, double e) {
    q_.add(s, a, config_.alpha * delta * e);
  });

  if (t.terminal) {
    traces_.clear();
  } else {
    traces_.decay(config_.gamma * config_.lambda);
  }
  return delta;
}

void TdLambdaQLearning::update_counterfactual_row(
    StateId s, std::span<const double> rewards, ActionId taken,
    StateId next_state, bool terminal) {
  const std::span<double> row = q_.row_mut(s);
  if (rewards.size() != row.size()) {
    throw std::invalid_argument(
        "TdLambdaQLearning::update_counterfactual_row: width mismatch");
  }
  // When the sweep writes into the very row it bootstraps from (s == s'),
  // each update can move max Q(s'); re-reading it per action preserves
  // exact equivalence with the one-call-per-action formulation.
  const bool aliased = !terminal && next_state == s;
  double bootstrap = (terminal || aliased)
                         ? 0.0
                         : config_.gamma * q_.max_q(next_state);
  for (ActionId a = 0; a < row.size(); ++a) {
    if (a == taken) continue;
    if (aliased) bootstrap = config_.gamma * q_.max_q(next_state);
    const double target = terminal ? rewards[a] : rewards[a] + bootstrap;
    const double delta = target - row[a];
    row[a] += config_.alpha * delta;
    ++updates_;
  }
}

double TdLambdaQLearning::update_counterfactual(StateId s, ActionId a,
                                                double reward,
                                                StateId next_state,
                                                bool terminal) {
  const double target =
      terminal ? reward : reward + config_.gamma * q_.max_q(next_state);
  const double delta = target - q_.get(s, a);
  q_.add(s, a, config_.alpha * delta);
  ++updates_;
  return delta;
}

}  // namespace coreda::rl
