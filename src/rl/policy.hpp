#pragma once

#include <memory>

#include "rl/q_table.hpp"
#include "rl/types.hpp"
#include "util/rng.hpp"

namespace coreda::rl {

/// Behaviour policy: selects the action to try in a state given the current
/// value estimates.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual ActionId select(const QTable& q, StateId state, util::Rng& rng) = 0;
};

/// ε-greedy with optional multiplicative decay per episode.
///
/// With a zero-initialized QTable the greedy arm is itself a uniform random
/// tie-break, so the initial behaviour matches the paper's "start from a
/// random policy" regardless of ε.
class EpsilonGreedyPolicy final : public Policy {
 public:
  /// Throws std::invalid_argument for epsilon outside [0, 1] or decay
  /// outside (0, 1].
  explicit EpsilonGreedyPolicy(double epsilon, double decay = 1.0,
                               double min_epsilon = 0.0);

  ActionId select(const QTable& q, StateId state, util::Rng& rng) override;

  /// Applies one decay step (call between episodes).
  void decay_epsilon() noexcept;

  /// Restarts the decay schedule from `epsilon` (same validation as the
  /// constructor). Lets a long-lived learner begin a fresh training run —
  /// the serving tier's retrain lanes — without rebuilding the policy.
  void reset_epsilon(double epsilon);

  double epsilon() const noexcept { return epsilon_; }

 private:
  double epsilon_;
  double decay_;
  double min_epsilon_;
};

/// Boltzmann exploration: P(a) ∝ exp(Q(s,a) / temperature).
class SoftmaxPolicy final : public Policy {
 public:
  /// Throws std::invalid_argument for a non-positive temperature.
  explicit SoftmaxPolicy(double temperature);

  ActionId select(const QTable& q, StateId state, util::Rng& rng) override;

  double temperature() const noexcept { return temperature_; }
  void set_temperature(double t);

 private:
  double temperature_;
};

/// Pure exploitation with random tie-breaking.
class GreedyPolicy final : public Policy {
 public:
  ActionId select(const QTable& q, StateId state, util::Rng& rng) override;
};

}  // namespace coreda::rl
