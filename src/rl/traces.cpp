#include "rl/traces.hpp"

#include <limits>
#include <stdexcept>

namespace coreda::rl {

EligibilityTraces::EligibilityTraces(std::size_t num_states,
                                     std::size_t num_actions, TraceType type,
                                     double cutoff)
    : type_(type),
      cutoff_(cutoff),
      num_states_(num_states),
      num_actions_(num_actions) {
  if (num_states == 0 || num_actions == 0) {
    throw std::invalid_argument(
        "EligibilityTraces: dimensions must be positive");
  }
  if (num_states > (std::numeric_limits<std::uint32_t>::max() - 1) /
                       num_actions) {
    throw std::invalid_argument(
        "EligibilityTraces: state-action space overflows 32-bit indexing");
  }
  if (cutoff < 0.0) {
    throw std::invalid_argument("EligibilityTraces: cutoff must be >= 0");
  }
  values_.assign(num_states * num_actions, 0.0);
  pos_.assign(num_states * num_actions, kInactive);
  active_.reserve(num_states * num_actions);
}

std::size_t EligibilityTraces::index(StateId s, ActionId a) const {
  if (s >= num_states_ || a >= num_actions_) {
    throw std::out_of_range("EligibilityTraces: state/action out of range");
  }
  return static_cast<std::size_t>(s) * num_actions_ + a;
}

void EligibilityTraces::deactivate_at(std::size_t position) noexcept {
  const std::uint32_t idx = active_[position];
  const std::uint32_t last = active_.back();
  active_[position] = last;
  pos_[last] = static_cast<std::uint32_t>(position);
  active_.pop_back();
  pos_[idx] = kInactive;
  values_[idx] = 0.0;
}

void EligibilityTraces::visit(StateId s, ActionId a) {
  const std::size_t idx = index(s, a);
  if (pos_[idx] == kInactive) {
    pos_[idx] = static_cast<std::uint32_t>(active_.size());
    active_.push_back(static_cast<std::uint32_t>(idx));
    values_[idx] = 1.0;
    return;
  }
  if (type_ == TraceType::kAccumulating) {
    values_[idx] += 1.0;
  } else {
    values_[idx] = 1.0;
  }
}

void EligibilityTraces::clear_state_actions(StateId s, ActionId keep) {
  const std::size_t base = index(s, 0);
  for (std::size_t a = 0; a < num_actions_; ++a) {
    if (a == keep) continue;
    const std::uint32_t p = pos_[base + a];
    if (p != kInactive) deactivate_at(p);
  }
}

void EligibilityTraces::decay(double factor) {
  for (std::size_t i = 0; i < active_.size();) {
    const std::uint32_t idx = active_[i];
    values_[idx] *= factor;
    if (values_[idx] < cutoff_) {
      // Swap-pop pulls an unprocessed entry into slot i; stay put.
      deactivate_at(i);
    } else {
      ++i;
    }
  }
}

void EligibilityTraces::clear() noexcept {
  for (const std::uint32_t idx : active_) {
    values_[idx] = 0.0;
    pos_[idx] = kInactive;
  }
  active_.clear();
}

double EligibilityTraces::get(StateId s, ActionId a) const {
  return values_[index(s, a)];
}

std::vector<EligibilityTraces::Entry> EligibilityTraces::entries() const {
  std::vector<Entry> out;
  out.reserve(active_.size());
  for (const std::uint32_t idx : active_) {
    out.push_back(Entry{static_cast<StateId>(idx / num_actions_),
                        static_cast<ActionId>(idx % num_actions_),
                        values_[idx]});
  }
  return out;
}

}  // namespace coreda::rl
