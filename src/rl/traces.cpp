#include "rl/traces.hpp"

#include <stdexcept>

namespace coreda::rl {

EligibilityTraces::EligibilityTraces(TraceType type, double cutoff)
    : type_(type), cutoff_(cutoff) {
  if (cutoff < 0.0) {
    throw std::invalid_argument("EligibilityTraces: cutoff must be >= 0");
  }
}

void EligibilityTraces::visit(StateId s, ActionId a) {
  double& e = entries_[key_of(s, a)];
  if (type_ == TraceType::kAccumulating) {
    e += 1.0;
  } else {
    e = 1.0;
  }
}

void EligibilityTraces::clear_state_actions(StateId s, ActionId keep) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const auto state = static_cast<StateId>(it->first >> 32);
    const auto action = static_cast<ActionId>(it->first & 0xffffffffULL);
    if (state == s && action != keep) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void EligibilityTraces::decay(double factor) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    it->second *= factor;
    if (it->second < cutoff_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void EligibilityTraces::clear() noexcept { entries_.clear(); }

double EligibilityTraces::get(StateId s, ActionId a) const {
  const auto it = entries_.find(key_of(s, a));
  return it != entries_.end() ? it->second : 0.0;
}

std::vector<EligibilityTraces::Entry> EligibilityTraces::entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, value] : entries_) {
    out.push_back(Entry{static_cast<StateId>(key >> 32),
                        static_cast<ActionId>(key & 0xffffffffULL), value});
  }
  return out;
}

}  // namespace coreda::rl
