// Explicit AVX2 lane-kernel bodies + the startup SIMD probe. The scalar
// reference bodies live inline in lane_kernels.hpp (the dispatchers there
// are the only intended callers of these).
//
// The scalar bodies are the reference: they perform byte-for-byte the same
// IEEE-754 operation sequence as the TdLambdaQLearning / EligibilityTraces
// code they replace (see lane_engine.hpp for the equivalence argument). The
// AVX2 variants are compiled via function-level target attributes — the
// translation unit itself builds at the project baseline, so the binary
// still runs on any x86-64 — and are selected once at startup through
// __builtin_cpu_supports. Two rules keep the vector code bit-exact:
//
//   * no FMA: the baseline build contracts nothing (SSE2 mulsd/addsd), so
//     the vector path uses separate mul and add too (AVX2 != FMA; the
//     target attribute deliberately does not enable fma);
//   * no signed-zero shortcuts: vmaxpd of {+0.0, -0.0} may return either
//     zero, so row_max falls back to the scalar first-max scan whenever the
//     reduction lands on a zero, and the counterfactual update blends the
//     taken action's cell through untouched instead of adding a 0.0 delta
//     (-0.0 + 0.0 is +0.0 — an add the scalar path never does).

#include "rl/lane_kernels.hpp"

#include <cstdlib>

#ifdef COREDA_LANE_KERNELS_X86
#include <immintrin.h>
#endif

namespace coreda::rl::kern {

namespace {

bool detect_simd() noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  const char* env = std::getenv("COREDA_LANE_SIMD");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') return false;
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#ifdef COREDA_LANE_KERNELS_X86

double row_max_scalar(const double* row, std::size_t n) noexcept {
  double m = row[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (row[i] > m) m = row[i];
  }
  return m;
}

#endif

}  // namespace

namespace detail {

#ifdef COREDA_LANE_KERNELS_X86

extern const bool g_simd = detect_simd();

__attribute__((target("avx2"))) double row_max_avx2(const double* row,
                                                    std::size_t n) noexcept {
  __m256d acc = _mm256_loadu_pd(row);  // callers guarantee n >= 4 here
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(row + i));
  }
  __m128d lo = _mm256_castpd256_pd128(acc);
  __m128d hi = _mm256_extractf128_pd(acc, 1);
  lo = _mm_max_pd(lo, hi);
  lo = _mm_max_sd(lo, _mm_unpackhi_pd(lo, lo));
  double m = _mm_cvtsd_f64(lo);
  for (; i < n; ++i) {
    if (row[i] > m) m = row[i];
  }
  // A zero maximum may carry the wrong zero sign out of vmaxpd; re-derive
  // it with the scalar first-max scan (0.0 == -0.0, so this also triggers
  // for -0.0).
  if (m == 0.0) return row_max_scalar(row, n);
  return m;
}

__attribute__((target("avx2"))) RowStatsResult row_stats_avx2(
    const double* row, double tolerance, std::size_t n) noexcept {
  // Max reduction first (row_max_avx2's body, callers guarantee n >= 4).
  __m256d acc = _mm256_loadu_pd(row);
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_max_pd(acc, _mm256_loadu_pd(row + i));
  }
  __m128d lo = _mm256_castpd256_pd128(acc);
  __m128d hi = _mm256_extractf128_pd(acc, 1);
  lo = _mm_max_pd(lo, hi);
  lo = _mm_max_sd(lo, _mm_unpackhi_pd(lo, lo));
  double m = _mm_cvtsd_f64(lo);
  for (; i < n; ++i) {
    if (row[i] > m) m = row[i];
  }
  if (m == 0.0) m = row_max_scalar(row, n);  // signed-zero rule of row_max
  return row_stats_given_max_avx2(row, m, tolerance, n);
}

__attribute__((target("avx2"))) RowStatsResult row_stats_given_max_avx2(
    const double* row, double max, double tolerance,
    std::size_t n) noexcept {
  // Tie mask (exact equality — ±0.0 compare equal, like the scalar scan)
  // and tolerance-tie count in one masked sweep.
  const __m256d mv = _mm256_set1_pd(max);
  const __m256d tv = _mm256_set1_pd(max - tolerance);
  RowStatsResult st{max, 0, 0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(row + i);
    const unsigned eq = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, mv, _CMP_EQ_OQ)));
    const unsigned ge = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v, tv, _CMP_GE_OQ)));
    st.tie_mask |= static_cast<std::uint64_t>(eq) << i;
    st.near_count += static_cast<std::uint32_t>(__builtin_popcount(ge));
  }
  for (; i < n; ++i) {
    st.tie_mask |= static_cast<std::uint64_t>(row[i] == max) << i;
    st.near_count += row[i] >= max - tolerance;
  }
  return st;
}

__attribute__((target("avx2"))) std::size_t count_ge_avx2(
    const double* row, double threshold, std::size_t n) noexcept {
  const __m256d t = _mm256_set1_pd(threshold);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ge = _mm256_cmp_pd(_mm256_loadu_pd(row + i), t, _CMP_GE_OQ);
    count += static_cast<std::size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_pd(ge))));
  }
  for (; i < n; ++i) {
    if (row[i] >= threshold) ++count;
  }
  return count;
}

__attribute__((target("avx2"))) void cf_update_avx2(
    double* row, const double* rewards, double bootstrap, double alpha,
    std::size_t taken, std::size_t n) noexcept {
  const __m256d b = _mm256_set1_pd(bootstrap);
  const __m256d al = _mm256_set1_pd(alpha);
  const __m256i lane_ids = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i taken_v =
      _mm256_set1_epi64x(static_cast<long long>(taken));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(row + i);
    const __m256d target = _mm256_add_pd(_mm256_loadu_pd(rewards + i), b);
    const __m256d delta = _mm256_sub_pd(target, r);
    const __m256d updated = _mm256_add_pd(r, _mm256_mul_pd(al, delta));
    // Blend the taken action's cell through untouched.
    const __m256i ids = _mm256_add_epi64(
        lane_ids, _mm256_set1_epi64x(static_cast<long long>(i)));
    const __m256d keep =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(ids, taken_v));
    _mm256_storeu_pd(row + i, _mm256_blendv_pd(updated, r, keep));
  }
  for (; i < n; ++i) {
    if (i == taken) continue;
    const double target = rewards[i] + bootstrap;
    const double delta = target - row[i];
    row[i] += alpha * delta;
  }
}

__attribute__((target("avx2"))) void cf_update_terminal_avx2(
    double* row, const double* rewards, double alpha, std::size_t taken,
    std::size_t n) noexcept {
  const __m256d al = _mm256_set1_pd(alpha);
  const __m256i lane_ids = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i taken_v =
      _mm256_set1_epi64x(static_cast<long long>(taken));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(row + i);
    const __m256d delta = _mm256_sub_pd(_mm256_loadu_pd(rewards + i), r);
    const __m256d updated = _mm256_add_pd(r, _mm256_mul_pd(al, delta));
    const __m256i ids = _mm256_add_epi64(
        lane_ids, _mm256_set1_epi64x(static_cast<long long>(i)));
    const __m256d keep =
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(ids, taken_v));
    _mm256_storeu_pd(row + i, _mm256_blendv_pd(updated, r, keep));
  }
  for (; i < n; ++i) {
    if (i == taken) continue;
    const double delta = rewards[i] - row[i];
    row[i] += alpha * delta;
  }
}

__attribute__((target("avx2"))) void decay_compact_avx2(
    double* vals, std::uint32_t* idxs, std::uint32_t* len, double factor,
    double cutoff) noexcept {
  const std::uint32_t n = *len;
  const __m256d f = _mm256_set1_pd(factor);
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(vals + i,
                     _mm256_mul_pd(_mm256_loadu_pd(vals + i), f));
  }
  for (; i < n; ++i) vals[i] = vals[i] * factor;
  // Compaction is a sparse-set filter; do it scalar (entry counts are an
  // episode's transitions, a few dozen at most).
  std::uint32_t out = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    if (vals[k] < cutoff) continue;
    vals[out] = vals[k];
    idxs[out] = idxs[k];
    ++out;
  }
  *len = out;
}

#endif  // COREDA_LANE_KERNELS_X86

}  // namespace detail

bool simd_enabled() noexcept {
#ifdef COREDA_LANE_KERNELS_X86
  return detail::g_simd;
#else
  return detect_simd();
#endif
}

}  // namespace coreda::rl::kern
