#pragma once

#include <span>
#include <vector>

#include "rl/types.hpp"
#include "util/rng.hpp"

namespace coreda::rl {

/// Dense tabular action-value function Q(s, a).
///
/// The CoReDA state/action spaces are tiny (tens of states, tens of
/// actions), so a flat row-major matrix is both the simplest and the fastest
/// representation. Ties in argmax are broken by the caller-supplied Rng so a
/// zero-initialized table behaves as the paper's "random [initial] policy";
/// the deterministic best_action() overload breaks ties toward the lowest
/// action id for reproducible greedy evaluation.
class QTable {
 public:
  /// Throws std::invalid_argument when either dimension is zero.
  QTable(std::size_t num_states, std::size_t num_actions,
         double initial_value = 0.0);

  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_actions() const noexcept { return num_actions_; }

  double get(StateId s, ActionId a) const;
  void set(StateId s, ActionId a, double value);
  void add(StateId s, ActionId a, double delta);

  /// The whole row for state `s` (one value per action).
  std::span<const double> row(StateId s) const;

  /// Mutable view of row `s` — the hot-path API that lets a learner apply a
  /// fused per-action update without one bounds check per cell.
  std::span<double> row_mut(StateId s);

  /// Row-wise fused update: Q(s, a) += scale * values[a] for every action.
  /// Throws std::invalid_argument when `values` is not num_actions() wide.
  void add_scaled_row(StateId s, std::span<const double> values, double scale);

  /// Highest Q value in state `s`.
  double max_q(StateId s) const;

  /// Greedy action, ties broken toward the lowest action id.
  ActionId best_action(StateId s) const;

  /// Greedy action, ties broken uniformly at random.
  ActionId best_action(StateId s, util::Rng& rng) const;

  /// Whether `a` attains the maximum of row `s` (within `tolerance`).
  bool is_greedy(StateId s, ActionId a, double tolerance = 1e-12) const;

  /// Whether `a` is the *unique* maximizer of row `s`. Distinguishes a
  /// sharp greedy choice from a tie — Watkins' trace-keeping condition
  /// ("the behaviour followed the greedy policy") is only meaningful when
  /// the greedy policy is unambiguous.
  bool is_uniquely_greedy(StateId s, ActionId a,
                          double tolerance = 1e-12) const;

  void fill(double value);

 private:
  std::size_t index(StateId s, ActionId a) const;

  std::size_t num_states_;
  std::size_t num_actions_;
  std::vector<double> values_;
};

}  // namespace coreda::rl
