#include "rl/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace coreda::rl {

EpsilonGreedyPolicy::EpsilonGreedyPolicy(double epsilon, double decay,
                                         double min_epsilon)
    : epsilon_(epsilon), decay_(decay), min_epsilon_(min_epsilon) {
  if (epsilon < 0.0 || epsilon > 1.0) {
    throw std::invalid_argument("EpsilonGreedyPolicy: epsilon not in [0,1]");
  }
  if (decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument("EpsilonGreedyPolicy: decay not in (0,1]");
  }
  if (min_epsilon < 0.0 || min_epsilon > epsilon) {
    throw std::invalid_argument(
        "EpsilonGreedyPolicy: min_epsilon not in [0, epsilon]");
  }
}

ActionId EpsilonGreedyPolicy::select(const QTable& q, StateId state,
                                     util::Rng& rng) {
  if (rng.bernoulli(epsilon_)) {
    return static_cast<ActionId>(rng.pick_index(q.num_actions()));
  }
  return q.best_action(state, rng);
}

void EpsilonGreedyPolicy::decay_epsilon() noexcept {
  epsilon_ = std::max(min_epsilon_, epsilon_ * decay_);
}

void EpsilonGreedyPolicy::reset_epsilon(double epsilon) {
  if (epsilon < 0.0 || epsilon > 1.0) {
    throw std::invalid_argument("EpsilonGreedyPolicy: epsilon not in [0,1]");
  }
  if (min_epsilon_ > epsilon) {
    throw std::invalid_argument(
        "EpsilonGreedyPolicy: epsilon below configured min_epsilon");
  }
  epsilon_ = epsilon;
}

SoftmaxPolicy::SoftmaxPolicy(double temperature) : temperature_(temperature) {
  if (temperature <= 0.0) {
    throw std::invalid_argument("SoftmaxPolicy: temperature must be > 0");
  }
}

void SoftmaxPolicy::set_temperature(double t) {
  if (t <= 0.0) {
    throw std::invalid_argument("SoftmaxPolicy: temperature must be > 0");
  }
  temperature_ = t;
}

ActionId SoftmaxPolicy::select(const QTable& q, StateId state,
                               util::Rng& rng) {
  const auto row = q.row(state);
  // Shift by the max for numeric stability before exponentiating.
  const double maxq = *std::max_element(row.begin(), row.end());
  std::vector<double> weights(row.size());
  for (std::size_t a = 0; a < row.size(); ++a) {
    weights[a] = std::exp((row[a] - maxq) / temperature_);
  }
  return static_cast<ActionId>(rng.pick_weighted(weights));
}

ActionId GreedyPolicy::select(const QTable& q, StateId state,
                              util::Rng& rng) {
  return q.best_action(state, rng);
}

}  // namespace coreda::rl
