#include "rl/sarsa.hpp"

#include <stdexcept>

namespace coreda::rl {

SarsaLambda::SarsaLambda(std::size_t num_states, std::size_t num_actions)
    : SarsaLambda(num_states, num_actions, Config{}) {}

SarsaLambda::SarsaLambda(std::size_t num_states, std::size_t num_actions,
                         Config config)
    : config_(config),
      q_(num_states, num_actions),
      traces_(num_states, num_actions, config.trace_type) {
  if (config.alpha <= 0.0 || config.alpha > 1.0 || config.gamma < 0.0 ||
      config.gamma > 1.0 || config.lambda < 0.0 || config.lambda > 1.0) {
    throw std::invalid_argument("SarsaLambda: hyper-parameter out of range");
  }
}

void SarsaLambda::begin_episode() { traces_.clear(); }

double SarsaLambda::observe(const Transition& t, ActionId next_action) {
  const double target =
      t.terminal ? t.reward
                 : t.reward + config_.gamma * q_.get(t.next_state, next_action);
  const double delta = target - q_.get(t.state, t.action);

  if (config_.trace_type == TraceType::kReplacing) {
    traces_.clear_state_actions(t.state, t.action);
  }
  traces_.visit(t.state, t.action);
  traces_.for_each([this, delta](StateId s, ActionId a, double e) {
    q_.add(s, a, config_.alpha * delta * e);
  });

  if (t.terminal) {
    traces_.clear();
  } else {
    traces_.decay(config_.gamma * config_.lambda);
  }
  return delta;
}

}  // namespace coreda::rl
