#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "rl/lane_kernels.hpp"
#include "rl/q_table.hpp"
#include "rl/td_lambda.hpp"
#include "rl/traces.hpp"
#include "rl/types.hpp"
#include "util/rng.hpp"

namespace coreda::rl {

/// Structure-of-arrays TD(λ) engine: one lane steps `width` learners in
/// lockstep, each with its own Q table and eligibility traces inside shared
/// contiguous slabs.
///
/// Why this is faster than `width` TdLambdaQLearning instances (measured on
/// bench_fleet_throughput; see DESIGN.md "Lane engine"):
///
///   * the scalar path crosses a translation unit for every table access —
///     q_table.cpp's get/add/max_q/best_action are out-of-line calls with a
///     bounds check per cell; here every hot operation is inlined over raw
///     row pointers;
///   * one transition used to scan its Q row four times (ε-greedy argmax,
///     the Watkins unique-greedy test, the bootstrap max, the
///     counterfactual sweep); select() fuses the first two into one pass
///     and the sweep consumes the row exactly once;
///   * eligibility traces drop the dense values/pos bookkeeping of
///     EligibilityTraces for a compact entry list (parallel index/value
///     arrays — SoA), whose decay+compaction is fused into the trace-apply
///     pass (one branchless sweep; the standalone batched kernel lives in
///     rl/lane_kernels);
///   * Q slabs of all slots are contiguous, so an 8-wide lane of tea-making
///     tables (~2.8 KB each) stays L1/L2-resident while the lockstep loop
///     interleaves independent per-user dependency chains.
///
/// Bit-exactness contract: for each slot, the sequence of IEEE-754
/// operations applied to its Q values, trace values and Rng stream is
/// operation-for-operation the one TdLambdaQLearning + EpsilonGreedyPolicy
/// + EligibilityTraces would apply. Slots never interact, so any
/// interleaving across slots (including lane width and ragged batches)
/// yields byte-identical per-user results — proven by the golden
/// equivalence tests in tests/rl/lane_engine_test.cpp and
/// tests/planning/lane_trainer_test.cpp. Two non-obvious equivalences the
/// kernels rely on:
///
///   * trace apply/visit/clear touch disjoint cells per entry, so entry
///     *order* never reaches an FP result — the compact entry list may
///     permute entries freely relative to EligibilityTraces' swap-pop
///     order;
///   * fusing a transition's trace decay into its apply pass is safe
///     because apply touches only Q values and decay only trace values —
///     per-entry apply-then-decay equals apply-all-then-decay-all.
class LaneEngine {
 public:
  /// `trace_capacity` bounds trace entries per slot; one visit per
  /// transition means the longest episode's transition count suffices.
  /// Throws std::invalid_argument on zero dimensions or an invalid config
  /// (same validation as TdLambdaQLearning).
  LaneEngine(std::size_t width, std::size_t num_states,
             std::size_t num_actions, std::size_t trace_capacity,
             TdLambdaConfig config = TdLambdaConfig())
      : width_(width),
        num_states_(num_states),
        num_actions_(num_actions),
        config_(config) {
    if (width == 0 || num_states == 0 || num_actions == 0) {
      throw std::invalid_argument("LaneEngine: dimensions must be positive");
    }
    if (config.alpha <= 0.0 || config.alpha > 1.0 || config.gamma < 0.0 ||
        config.gamma > 1.0 || config.lambda < 0.0 || config.lambda > 1.0) {
      throw std::invalid_argument("LaneEngine: invalid TdLambdaConfig");
    }
    q_.assign(width * num_states * num_actions, config.initial_q);
    reserve_traces(trace_capacity == 0 ? 1 : trace_capacity);
    trace_len_.assign(width, 0);
  }

  std::size_t width() const noexcept { return width_; }
  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_actions() const noexcept { return num_actions_; }
  std::size_t trace_capacity() const noexcept { return trace_cap_; }
  const TdLambdaConfig& config() const noexcept { return config_; }

  /// Grows the per-slot trace capacity (preserving nothing — callers grow
  /// between episodes, when every slot's traces are clear).
  void reserve_traces(std::size_t capacity) {
    if (capacity <= trace_cap_ && !trace_val_.empty()) return;
    trace_cap_ = capacity;
    trace_val_.assign(width_ * trace_cap_, 0.0);
    trace_idx_.assign(width_ * trace_cap_, 0);
  }

  double* slot_q(std::size_t slot) noexcept {
    return q_.data() + slot * num_states_ * num_actions_;
  }
  const double* slot_q(std::size_t slot) const noexcept {
    return q_.data() + slot * num_states_ * num_actions_;
  }

  /// Gather: copies `q` into the slot's slab (shapes must match — throws
  /// std::invalid_argument otherwise) and clears its traces.
  void load(std::size_t slot, const QTable& q) {
    if (q.num_states() != num_states_ || q.num_actions() != num_actions_) {
      throw std::invalid_argument("LaneEngine::load: table shape mismatch");
    }
    double* dst = slot_q(slot);
    for (StateId s = 0; s < num_states_; ++s) {
      const std::span<const double> row = q.row(s);
      for (ActionId a = 0; a < num_actions_; ++a) {
        dst[static_cast<std::size_t>(s) * num_actions_ + a] = row[a];
      }
    }
    begin_episode(slot);
  }

  /// Scatter: copies the slot's table back out.
  void store(std::size_t slot, QTable& q) const {
    if (q.num_states() != num_states_ || q.num_actions() != num_actions_) {
      throw std::invalid_argument("LaneEngine::store: table shape mismatch");
    }
    const double* src = slot_q(slot);
    for (StateId s = 0; s < num_states_; ++s) {
      const std::span<double> row = q.row_mut(s);
      for (ActionId a = 0; a < num_actions_; ++a) {
        row[a] = src[static_cast<std::size_t>(s) * num_actions_ + a];
      }
    }
  }

  /// Resets the slot's traces (QTable persists) — TdLambdaQLearning::
  /// begin_episode.
  void begin_episode(std::size_t slot) noexcept { trace_len_[slot] = 0; }

  /// Everything observe() needs from action selection, computed in the same
  /// row pass: ε-greedy's choice plus the Watkins unique-greedy verdict.
  struct Selected {
    ActionId action = 0;
    bool uniquely_greedy = false;
  };

  /// A row maximum carried from one transition to the next: step()'s
  /// bootstrap scan of Q(s') is over the very row the NEXT transition's
  /// select() will scan (s_{t+1} == s'_t in a trajectory), so when step()
  /// can prove it wrote nothing into that row, the max is still exact and
  /// select() may skip its reduction. `valid` is the proof bit.
  struct MaxCarry {
    double max = 0.0;
    bool valid = false;
  };

  /// ε-greedy selection, drawing from `rng` exactly as EpsilonGreedyPolicy
  /// ::select + QTable::best_action(s, rng) would (bernoulli, then either
  /// pick_index or one uniform() per exact tie), fused with the
  /// is_uniquely_greedy(s, a) row test observe() needs.
  ///
  /// One scan computes the exact-tie count, the first tie's index and the
  /// tolerance-tie count together (branch-free accumulation — the separate
  /// reservoir loop + count_ge pass cost two data-dependent branch streams
  /// per transition). A converged row has exactly one exact tie, where the
  /// reservoir provably picks the argmax: its single draw is
  /// uniform() < 1/1, always true — so the fast path consumes the one
  /// draw and selects first_tie directly. Multi-tie rows (the optimistic
  /// cold start) fall back to the verbatim reservoir loop.
  Selected select(std::size_t slot, StateId s, double epsilon,
                  util::Rng& rng) noexcept {
    return select(slot, s, epsilon, rng, MaxCarry{});
  }

  /// select() with a carried row maximum (see MaxCarry): when `carry.valid`,
  /// the row scan skips its max reduction — `carry.max` is bitwise what the
  /// reduction would return, because the bytes of row s are unchanged since
  /// the previous step() computed it. Draw order and results are identical
  /// to the unhinted overload in every case.
  Selected select(std::size_t slot, StateId s, double epsilon,
                  util::Rng& rng, MaxCarry carry) noexcept {
    const double* row = slot_q(slot) + static_cast<std::size_t>(s) *
                                           num_actions_;
    Selected sel;
    const bool explore = rng.bernoulli(epsilon);
    if (num_actions_ <= 64) {
      const kern::RowStats st =
          carry.valid
              ? kern::row_stats_given_max(row, carry.max, kGreedyTolerance,
                                          num_actions_)
              : kern::row_stats(row, kGreedyTolerance, num_actions_);
      if (explore) {
        sel.action = static_cast<ActionId>(rng.pick_index(num_actions_));
      } else if (st.tie_mask != 0 &&
                 (st.tie_mask & (st.tie_mask - 1)) == 0) {
        // A single exact tie: the reservoir's one draw is uniform() < 1/1,
        // always accepted — consume it and take the argmax directly.
        (void)rng.uniform();
        sel.action = static_cast<ActionId>(__builtin_ctzll(st.tie_mask));
      } else {
        // Reservoir-sample uniformly among the exact ties, one uniform()
        // per tie — QTable::best_action(s, rng) verbatim, walking the mask.
        std::uint64_t mask = st.tie_mask;
        ActionId chosen = 0;
        std::size_t seen = 0;
        while (mask != 0) {
          const auto a = static_cast<ActionId>(__builtin_ctzll(mask));
          mask &= mask - 1;
          ++seen;
          if (rng.uniform() < 1.0 / static_cast<double>(seen)) chosen = a;
        }
        sel.action = chosen;
      }
      sel.uniquely_greedy =
          row[sel.action] >= st.max - kGreedyTolerance && st.near_count == 1;
      return sel;
    }
    // Wide-row fallback (> 64 actions): the unfused reference scans.
    const double max = kern::row_max(row, num_actions_);
    if (explore) {
      sel.action = static_cast<ActionId>(rng.pick_index(num_actions_));
    } else {
      ActionId chosen = 0;
      std::size_t ties = 0;
      for (ActionId a = 0; a < num_actions_; ++a) {
        if (row[a] == max) {
          ++ties;
          if (rng.uniform() < 1.0 / static_cast<double>(ties)) chosen = a;
        }
      }
      sel.action = chosen;
    }
    sel.uniquely_greedy =
        row[sel.action] >= max - kGreedyTolerance &&
        kern::count_ge(row, max - kGreedyTolerance, num_actions_) == 1;
    return sel;
  }

  /// One TD(λ) backup — TdLambdaQLearning::observe with `sel` carrying the
  /// pre-computed Watkins test. The trace decay of a kept (greedy,
  /// non-terminal) transition is *fused into the apply pass*: applying
  /// entry i touches only Q cells and decaying it touches only its trace
  /// value, so apply-then-decay per entry is the same IEEE sequence as the
  /// scalar path's apply-all-then-decay-all — one pass instead of two plus
  /// a dispatch. (The standalone kern::decay_compact kernel remains the
  /// batched form for callers that keep traces live across ticks.)
  double observe(std::size_t slot, const Selected& sel, StateId s,
                 double reward, StateId next_state, bool terminal) noexcept {
    double* q = slot_q(slot);
    const std::size_t sa =
        static_cast<std::size_t>(s) * num_actions_ + sel.action;
    const bool strictly_greedy = !config_.watkins_cut || sel.uniquely_greedy;

    const double target =
        terminal ? reward
                 : reward + config_.gamma *
                                kern::row_max(q + static_cast<std::size_t>(
                                                      next_state) *
                                                      num_actions_,
                                              num_actions_);
    const double delta = target - q[sa];

    if (!strictly_greedy) {
      q[sa] += config_.alpha * delta;
      trace_len_[slot] = 0;
      return delta;
    }

    double* vals = trace_val_.data() + slot * trace_cap_;
    std::uint32_t* idxs = trace_idx_.data() + slot * trace_cap_;
    std::uint32_t len = trace_len_[slot];

    if (config_.trace_type == TraceType::kReplacing) {
      // clear_state_actions(s, sel.action) fused with the visit(s, a)
      // lookup: one pass drops this row's other entries and spots the kept
      // cell's (unique) entry on the way through.
      const std::uint32_t row_base =
          static_cast<std::uint32_t>(s) * static_cast<std::uint32_t>(
                                              num_actions_);
      const auto keep = static_cast<std::uint32_t>(sa);
      std::uint32_t out = 0;
      std::uint32_t hit = UINT32_MAX;
      for (std::uint32_t i = 0; i < len; ++i) {
        const std::uint32_t idx = idxs[i];
        if (idx - row_base < num_actions_ && idx != keep) continue;
        if (idx == keep) hit = out;
        idxs[out] = idx;
        vals[out] = vals[i];
        ++out;
      }
      len = out;
      if (hit == UINT32_MAX) {
        idxs[len] = keep;
        vals[len] = 1.0;
        ++len;
      } else {
        vals[hit] = 1.0;
      }
    } else {
      // visit(s, a): replace or append (accumulating adds).
      std::uint32_t hit = len;
      for (std::uint32_t i = 0; i < len; ++i) {
        if (idxs[i] == sa) {
          hit = i;
          break;
        }
      }
      if (hit == len) {
        idxs[len] = static_cast<std::uint32_t>(sa);
        vals[len] = 1.0;
        ++len;
      } else {
        vals[hit] += 1.0;
      }
    }

    const double ad = config_.alpha * delta;
    if (terminal) {
      // Apply only — the episode ends here, traces reset.
      for (std::uint32_t i = 0; i < len; ++i) {
        q[idxs[i]] += ad * vals[i];
      }
      trace_len_[slot] = 0;
      return delta;
    }

    // Fused apply + decay + compact: each entry owns a distinct Q cell and
    // its own trace value, so per-entry apply-then-decay equals the scalar
    // apply-all-then-decay-all bit for bit. Branchless compaction as in
    // kern::decay_compact.
    const double factor = config_.gamma * config_.lambda;
    std::uint32_t out = 0;
    for (std::uint32_t i = 0; i < len; ++i) {
      const std::uint32_t idx = idxs[i];
      const double v = vals[i];
      q[idx] += ad * v;
      const double decayed = v * factor;
      vals[out] = decayed;
      idxs[out] = idx;
      out += !(decayed < kTraceCutoff);
    }
    trace_len_[slot] = out;
    return delta;
  }

  /// One full lockstep transition: observe() plus (optionally) the
  /// counterfactual sweep, fused so the bootstrap row scan is shared. The
  /// sweep re-derives gamma * max Q(s') *after* observe's writes; the fused
  /// path tracks whether any write landed in the next state's row during
  /// the apply pass and reuses observe's pre-computed product when none
  /// did — bitwise the same value read from bitwise the same row.
  /// Result-identical to observe(slot, ...) followed by
  /// counterfactual_row(slot, ...) in every case.
  double step(std::size_t slot, const Selected& sel, StateId s,
              const double* rewards, StateId next_state, bool terminal,
              bool sweep, MaxCarry* carry = nullptr) noexcept {
    double* q = slot_q(slot);
    const std::size_t next_base =
        static_cast<std::size_t>(next_state) * num_actions_;
    const std::size_t sa =
        static_cast<std::size_t>(s) * num_actions_ + sel.action;
    const bool strictly_greedy = !config_.watkins_cut || sel.uniquely_greedy;
    const double reward = rewards[sel.action];

    double max_next = 0.0;  // max Q(s'), pre-apply
    const double target =
        terminal ? reward
                 : reward + config_.gamma * (max_next = kern::row_max(
                                                 q + next_base,
                                                 num_actions_));
    const double delta = target - q[sa];
    const double ad = config_.alpha * delta;
    bool touched_next = false;

    if (!strictly_greedy) {
      q[sa] += ad;
      trace_len_[slot] = 0;
      touched_next = sa - next_base < num_actions_;
    } else {
      double* vals = trace_val_.data() + slot * trace_cap_;
      std::uint32_t* idxs = trace_idx_.data() + slot * trace_cap_;
      std::uint32_t len = trace_len_[slot];

      if (config_.trace_type == TraceType::kReplacing) {
        const std::uint32_t row_base =
            static_cast<std::uint32_t>(s) * static_cast<std::uint32_t>(
                                                num_actions_);
        const auto keep = static_cast<std::uint32_t>(sa);
        std::uint32_t out = 0;
        std::uint32_t hit = UINT32_MAX;
        for (std::uint32_t i = 0; i < len; ++i) {
          const std::uint32_t idx = idxs[i];
          if (idx - row_base < num_actions_ && idx != keep) continue;
          if (idx == keep) hit = out;
          idxs[out] = idx;
          vals[out] = vals[i];
          ++out;
        }
        len = out;
        if (hit == UINT32_MAX) {
          idxs[len] = keep;
          vals[len] = 1.0;
          ++len;
        } else {
          vals[hit] = 1.0;
        }
      } else {
        std::uint32_t hit = len;
        for (std::uint32_t i = 0; i < len; ++i) {
          if (idxs[i] == sa) {
            hit = i;
            break;
          }
        }
        if (hit == len) {
          idxs[len] = static_cast<std::uint32_t>(sa);
          vals[len] = 1.0;
          ++len;
        } else {
          vals[hit] += 1.0;
        }
      }

      if (terminal) {
        for (std::uint32_t i = 0; i < len; ++i) {
          q[idxs[i]] += ad * vals[i];
        }
        trace_len_[slot] = 0;
      } else {
        const double factor = config_.gamma * config_.lambda;
        std::uint32_t out = 0;
        for (std::uint32_t i = 0; i < len; ++i) {
          const std::uint32_t idx = idxs[i];
          const double v = vals[i];
          q[idx] += ad * v;
          touched_next |= idx - next_base < num_actions_;
          const double decayed = v * factor;
          vals[out] = decayed;
          idxs[out] = idx;
          out += !(decayed < kTraceCutoff);
        }
        trace_len_[slot] = out;
      }
    }

    if (sweep) {
      double* row = q + static_cast<std::size_t>(s) * num_actions_;
      if (terminal) {
        kern::cf_update_terminal(row, rewards, config_.alpha, sel.action,
                                 num_actions_);
      } else if (next_state != s) {
        if (touched_next) {
          // Re-derive post-apply; the refreshed max is again exact for
          // row s' (the sweep below writes only row s != s').
          max_next = kern::row_max(q + next_base, num_actions_);
          touched_next = false;
        }
        kern::cf_update(row, rewards, config_.gamma * max_next,
                        config_.alpha, sel.action, num_actions_);
      } else {
        aliased_sweep(row, rewards, sel.action);
      }
    }
    if (carry != nullptr) {
      // Valid iff max_next still describes row s' bit for bit: non-terminal
      // (it was computed at all), no apply-pass write landed in row s'
      // (touched_next — an aliased s == s' transition always sets it, since
      // the taken (s, a) cell is applied), and no aliased sweep ran. The
      // next transition's select() reads this very row (s_{t+1} == s'_t).
      carry->max = max_next;
      carry->valid = !terminal && !touched_next &&
                     !(sweep && next_state == s);
    }
    return delta;
  }

  /// Fused counterfactual sweep — TdLambdaQLearning::
  /// update_counterfactual_row over the slot's slab. `rewards` must be
  /// num_actions() wide.
  void counterfactual_row(std::size_t slot, StateId s,
                          const double* rewards, ActionId taken,
                          StateId next_state, bool terminal) noexcept {
    double* q = slot_q(slot);
    double* row = q + static_cast<std::size_t>(s) * num_actions_;
    if (terminal) {
      kern::cf_update_terminal(row, rewards, config_.alpha, taken,
                               num_actions_);
      return;
    }
    if (next_state != s) {
      const double bootstrap =
          config_.gamma *
          kern::row_max(q + static_cast<std::size_t>(next_state) *
                            num_actions_,
                        num_actions_);
      kern::cf_update(row, rewards, bootstrap, config_.alpha, taken,
                      num_actions_);
      return;
    }
    aliased_sweep(row, rewards, taken);
  }

  /// Compatibility point for tick-loop drivers. Earlier revisions deferred
  /// each kept transition's trace decay to this per-tick batch; the decay
  /// is now fused into observe()'s apply pass (same IEEE sequence — see
  /// observe()), so there is never anything pending. Kept so lockstep
  /// loops written against the deferred protocol stay valid.
  void decay_pending() noexcept {}

  std::uint32_t trace_entries(std::size_t slot) const noexcept {
    return trace_len_[slot];
  }

 private:
  /// Aliased sweep (s == s'): each update can move max Q(s'), so the
  /// bootstrap is re-read per action — scalar by necessity.
  void aliased_sweep(double* row, const double* rewards,
                     ActionId taken) noexcept {
    for (ActionId a = 0; a < num_actions_; ++a) {
      if (a == taken) continue;
      const double bootstrap =
          config_.gamma * kern::row_max(row, num_actions_);
      const double target = rewards[a] + bootstrap;
      const double delta = target - row[a];
      row[a] += config_.alpha * delta;
    }
  }

  // QTable::is_uniquely_greedy's default tolerance and EligibilityTraces'
  // default cutoff — the lane engine must agree with both to the bit.
  static constexpr double kGreedyTolerance = 1e-12;
  static constexpr double kTraceCutoff = 1e-8;

  std::size_t width_;
  std::size_t num_states_;
  std::size_t num_actions_;
  std::size_t trace_cap_ = 0;
  TdLambdaConfig config_;
  std::vector<double> q_;                   ///< width x S x A, slot-major
  std::vector<double> trace_val_;           ///< width x trace_cap
  std::vector<std::uint32_t> trace_idx_;    ///< width x trace_cap
  std::vector<std::uint32_t> trace_len_;    ///< active entries per slot
};

}  // namespace coreda::rl
