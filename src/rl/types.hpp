#pragma once

#include <cstdint>

namespace coreda::rl {

/// Dense, zero-based identifiers. Adapters (e.g. coreda::planning's codecs)
/// are responsible for mapping domain objects to contiguous id ranges.
using StateId = std::uint32_t;
using ActionId = std::uint32_t;

/// One experience tuple <s, a, r, s'> plus the terminal flag. When
/// `terminal` is true the successor state's value is not bootstrapped.
struct Transition {
  StateId state = 0;
  ActionId action = 0;
  double reward = 0.0;
  StateId next_state = 0;
  bool terminal = false;
};

}  // namespace coreda::rl
