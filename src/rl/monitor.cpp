#include "rl/monitor.hpp"

#include <stdexcept>

namespace coreda::rl {

LearningMonitor::LearningMonitor(std::vector<StateId> eval_states,
                                 CorrectPredicate correct)
    : eval_states_(std::move(eval_states)), correct_(std::move(correct)) {
  if (eval_states_.empty()) {
    throw std::invalid_argument("LearningMonitor: no evaluation states");
  }
  if (!correct_) {
    throw std::invalid_argument("LearningMonitor: null predicate");
  }
}

double LearningMonitor::record(const QTable& q) {
  std::size_t hits = 0;
  for (StateId s : eval_states_) {
    // Deterministic tie-break: an untrained row counts as correct only if
    // action 0 happens to be right, so early accuracy reflects chance.
    if (correct_(s, q.best_action(s))) ++hits;
  }
  const double accuracy =
      static_cast<double>(hits) / static_cast<double>(eval_states_.size());
  curve_.push_back(CurvePoint{curve_.size() + 1, accuracy});
  return accuracy;
}

std::optional<std::size_t> LearningMonitor::convergence_iteration(
    double threshold) const {
  std::optional<std::size_t> candidate;
  for (const CurvePoint& p : curve_) {
    if (p.accuracy >= threshold) {
      if (!candidate) candidate = p.iteration;
    } else {
      candidate.reset();
    }
  }
  return candidate;
}

}  // namespace coreda::rl
