#include "rl/double_q.hpp"

#include <stdexcept>

namespace coreda::rl {

DoubleQLearning::DoubleQLearning(std::size_t num_states,
                                 std::size_t num_actions, Config config,
                                 util::Rng rng)
    : config_(config),
      a_(num_states, num_actions, config.initial_q),
      b_(num_states, num_actions, config.initial_q),
      rng_(rng) {
  if (config.alpha <= 0.0 || config.alpha > 1.0 || config.gamma < 0.0 ||
      config.gamma > 1.0) {
    throw std::invalid_argument("DoubleQLearning: hyper-parameter range");
  }
}

DoubleQLearning::DoubleQLearning(std::size_t num_states,
                                 std::size_t num_actions, util::Rng rng)
    : DoubleQLearning(num_states, num_actions, Config{}, rng) {}

double DoubleQLearning::observe(const Transition& t) {
  // The coin decides which table is the learner; the *other* table
  // evaluates the learner's greedy pick — the decoupling that removes the
  // max-operator's upward bias.
  QTable& learner = rng_.bernoulli(0.5) ? a_ : b_;
  QTable& evaluator = &learner == &a_ ? b_ : a_;

  double target = t.reward;
  if (!t.terminal) {
    const ActionId pick = learner.best_action(t.next_state);
    target += config_.gamma * evaluator.get(t.next_state, pick);
  }
  const double delta = target - learner.get(t.state, t.action);
  learner.add(t.state, t.action, config_.alpha * delta);
  return delta;
}

double DoubleQLearning::value(StateId s, ActionId a) const {
  return 0.5 * (a_.get(s, a) + b_.get(s, a));
}

ActionId DoubleQLearning::best_action(StateId s) const {
  ActionId best = 0;
  double best_value = value(s, 0);
  for (ActionId a = 1; a < a_.num_actions(); ++a) {
    const double v = value(s, a);
    if (v > best_value) {
      best_value = v;
      best = a;
    }
  }
  return best;
}

double DoubleQLearning::max_value(StateId s) const {
  return value(s, best_action(s));
}

}  // namespace coreda::rl
