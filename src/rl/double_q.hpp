#pragma once

#include "rl/q_table.hpp"
#include "rl/types.hpp"
#include "util/rng.hpp"

namespace coreda::rl {

/// Double Q-Learning (van Hasselt, 2010).
///
/// Plain Q-Learning's max-operator bootstraps from the *same* noisy
/// estimates it maximizes over, biasing values upward wherever rewards or
/// transitions are stochastic — e.g. CoReDA's aliased tea-making context,
/// where the pot's missed extractions make two prompts' returns overlap.
/// Double Q keeps two tables and decouples action selection (argmax under
/// one table) from evaluation (value under the other), removing the bias
/// at the cost of halving each table's data.
class DoubleQLearning {
 public:
  struct Config {
    double alpha = 0.1;
    double gamma = 0.9;
    double initial_q = 0.0;
  };

  /// Throws std::invalid_argument on out-of-range hyper-parameters.
  DoubleQLearning(std::size_t num_states, std::size_t num_actions,
                  Config config, util::Rng rng);
  DoubleQLearning(std::size_t num_states, std::size_t num_actions,
                  util::Rng rng);

  /// One backup for transition `t`; a fair coin picks which table learns.
  /// Returns the TD error δ of the updated table.
  double observe(const Transition& t);

  /// Behaviour/greedy values: the mean of the two tables.
  double value(StateId s, ActionId a) const;
  ActionId best_action(StateId s) const;
  double max_value(StateId s) const;

  const QTable& table_a() const noexcept { return a_; }
  const QTable& table_b() const noexcept { return b_; }
  std::size_t num_actions() const noexcept { return a_.num_actions(); }

 private:
  Config config_;
  QTable a_;
  QTable b_;
  util::Rng rng_;
};

}  // namespace coreda::rl
