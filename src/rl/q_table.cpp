#include "rl/q_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::rl {

QTable::QTable(std::size_t num_states, std::size_t num_actions,
               double initial_value)
    : num_states_(num_states), num_actions_(num_actions) {
  if (num_states == 0 || num_actions == 0) {
    throw std::invalid_argument("QTable: dimensions must be positive");
  }
  values_.assign(num_states * num_actions, initial_value);
}

std::size_t QTable::index(StateId s, ActionId a) const {
  if (s >= num_states_ || a >= num_actions_) {
    throw std::out_of_range("QTable: state/action out of range");
  }
  return static_cast<std::size_t>(s) * num_actions_ + a;
}

double QTable::get(StateId s, ActionId a) const { return values_[index(s, a)]; }

void QTable::set(StateId s, ActionId a, double value) {
  values_[index(s, a)] = value;
}

void QTable::add(StateId s, ActionId a, double delta) {
  values_[index(s, a)] += delta;
}

std::span<const double> QTable::row(StateId s) const {
  return {values_.data() + index(s, 0), num_actions_};
}

std::span<double> QTable::row_mut(StateId s) {
  return {values_.data() + index(s, 0), num_actions_};
}

void QTable::add_scaled_row(StateId s, std::span<const double> values,
                            double scale) {
  if (values.size() != num_actions_) {
    throw std::invalid_argument("QTable::add_scaled_row: width mismatch");
  }
  double* row = values_.data() + index(s, 0);
  for (std::size_t a = 0; a < num_actions_; ++a) {
    row[a] += scale * values[a];
  }
}

double QTable::max_q(StateId s) const {
  const auto r = row(s);
  return *std::max_element(r.begin(), r.end());
}

ActionId QTable::best_action(StateId s) const {
  const auto r = row(s);
  return static_cast<ActionId>(
      std::max_element(r.begin(), r.end()) - r.begin());
}

ActionId QTable::best_action(StateId s, util::Rng& rng) const {
  const auto r = row(s);
  const double best = *std::max_element(r.begin(), r.end());
  // Reservoir-sample uniformly among the ties in one pass.
  ActionId chosen = 0;
  std::size_t ties = 0;
  for (ActionId a = 0; a < r.size(); ++a) {
    if (r[a] == best) {
      ++ties;
      if (rng.uniform() < 1.0 / static_cast<double>(ties)) chosen = a;
    }
  }
  return chosen;
}

bool QTable::is_greedy(StateId s, ActionId a, double tolerance) const {
  return get(s, a) >= max_q(s) - tolerance;
}

bool QTable::is_uniquely_greedy(StateId s, ActionId a,
                                double tolerance) const {
  const auto r = row(s);
  const double max = *std::max_element(r.begin(), r.end());
  if (r[a] < max - tolerance) return false;
  std::size_t ties = 0;
  for (double v : r) {
    if (v >= max - tolerance) ++ties;
  }
  return ties == 1;
}

void QTable::fill(double value) {
  std::fill(values_.begin(), values_.end(), value);
}

}  // namespace coreda::rl
