#pragma once

#include "rl/q_table.hpp"
#include "rl/traces.hpp"
#include "rl/types.hpp"

namespace coreda::rl {

/// SARSA(λ) — the on-policy companion to TdLambdaQLearning, kept as a
/// comparator for the learning-algorithm ablations. The backup target uses
/// the action the behaviour policy actually chose next, so the learned
/// values reflect the exploring policy rather than the greedy one.
class SarsaLambda {
 public:
  struct Config {
    double alpha = 0.2;
    double gamma = 0.9;
    double lambda = 0.7;
    TraceType trace_type = TraceType::kReplacing;
  };

  /// Throws std::invalid_argument on out-of-range hyper-parameters.
  SarsaLambda(std::size_t num_states, std::size_t num_actions);
  SarsaLambda(std::size_t num_states, std::size_t num_actions, Config config);

  void begin_episode();

  /// Backup for <s, a, r, s', a'>. For terminal transitions `next_action`
  /// is ignored. Returns the TD error δ.
  double observe(const Transition& t, ActionId next_action);

  const QTable& q() const noexcept { return q_; }
  QTable& q() noexcept { return q_; }

 private:
  Config config_;
  QTable q_;
  EligibilityTraces traces_;
};

}  // namespace coreda::rl
