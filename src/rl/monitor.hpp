#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "rl/q_table.hpp"
#include "rl/types.hpp"

namespace coreda::rl {

/// One point of a learning curve: greedy-policy accuracy after an episode.
struct CurvePoint {
  std::size_t iteration = 0;  ///< episodes observed so far (1-based)
  double accuracy = 0.0;      ///< fraction of evaluation states correct
};

/// Tracks how close the greedy policy is to a reference policy, producing
/// the paper's Figure 4 learning curve and its convergence iterations.
///
/// The reference is a predicate `correct(state, greedy_action)` so callers
/// can accept several optimal actions per state (e.g. any reminding level
/// pointing at the right tool).
class LearningMonitor {
 public:
  using CorrectPredicate = std::function<bool(StateId, ActionId)>;

  /// `eval_states` are the states whose greedy action is scored each
  /// episode. Throws std::invalid_argument when empty or when `correct` is
  /// null.
  LearningMonitor(std::vector<StateId> eval_states, CorrectPredicate correct);

  /// Scores the greedy policy of `q` after one more training episode and
  /// appends a curve point. Returns the accuracy.
  double record(const QTable& q);

  const std::vector<CurvePoint>& curve() const noexcept { return curve_; }

  /// First iteration whose accuracy reached `threshold` and never dropped
  /// below it afterwards (the "converging condition" of the paper's §3.2);
  /// nullopt if the threshold was never sustainedly reached.
  std::optional<std::size_t> convergence_iteration(double threshold) const;

  /// Accuracy of the latest record() call (0 before the first).
  double latest_accuracy() const noexcept {
    return curve_.empty() ? 0.0 : curve_.back().accuracy;
  }

 private:
  std::vector<StateId> eval_states_;
  CorrectPredicate correct_;
  std::vector<CurvePoint> curve_;
};

}  // namespace coreda::rl
