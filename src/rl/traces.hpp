#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rl/types.hpp"

namespace coreda::rl {

enum class TraceType : std::uint8_t {
  kAccumulating,  ///< e(s,a) += 1 on visit
  kReplacing,     ///< e(s,a) = 1 on visit
};

/// Sparse eligibility traces for TD(λ).
///
/// Traces decay geometrically by γλ each step; entries falling below
/// `cutoff` are dropped so the active set stays proportional to the recent
/// trajectory length rather than |S|x|A|.
class EligibilityTraces {
 public:
  struct Entry {
    StateId state;
    ActionId action;
    double value;
  };

  explicit EligibilityTraces(TraceType type = TraceType::kReplacing,
                             double cutoff = 1e-8);

  /// Marks (s, a) visited per the trace type.
  void visit(StateId s, ActionId a);

  /// For replacing traces: clears the traces of every *other* action in
  /// state `s` (Singh & Sutton's variant); call before visit().
  void clear_state_actions(StateId s, ActionId keep);

  /// Multiplies every trace by `factor` (= γλ), dropping tiny entries.
  void decay(double factor);

  /// Removes all traces (episode boundary, or Watkins' cut after a
  /// non-greedy action).
  void clear() noexcept;

  double get(StateId s, ActionId a) const;
  std::size_t active_count() const noexcept { return entries_.size(); }

  /// Snapshot of all active traces (unspecified order).
  std::vector<Entry> entries() const;

  /// Applies `fn(state, action, trace)` to every active trace.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, value] : entries_) {
      fn(static_cast<StateId>(key >> 32),
         static_cast<ActionId>(key & 0xffffffffULL), value);
    }
  }

 private:
  static std::uint64_t key_of(StateId s, ActionId a) noexcept {
    return (static_cast<std::uint64_t>(s) << 32) | a;
  }

  TraceType type_;
  double cutoff_;
  std::unordered_map<std::uint64_t, double> entries_;
};

}  // namespace coreda::rl
