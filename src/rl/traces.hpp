#pragma once

#include <cstdint>
#include <vector>

#include "rl/types.hpp"

namespace coreda::rl {

enum class TraceType : std::uint8_t {
  kAccumulating,  ///< e(s,a) += 1 on visit
  kReplacing,     ///< e(s,a) = 1 on visit
};

/// Dense eligibility traces for TD(λ) over a fixed S×A space.
///
/// Storage is a flat S×A value array plus a compact list of active flat
/// indices (and the inverse position map), so every operation touches only
/// live traces and never the heap:
///
///   * visit / get / clear_state_actions are O(1) / O(1) / O(num_actions)
///     — the former unordered_map representation paid an O(active) erase
///     scan per replacing-trace visit;
///   * decay and the learner's trace sweep walk the active list only, with
///     O(1) swap-pop compaction when an entry falls below `cutoff`;
///   * after construction no operation allocates, which is what makes the
///     per-episode training path allocation-free.
///
/// Traces decay geometrically by γλ each step; entries falling below
/// `cutoff` are dropped so the active set stays proportional to the recent
/// trajectory length rather than |S|×|A|.
class EligibilityTraces {
 public:
  struct Entry {
    StateId state;
    ActionId action;
    double value;
  };

  /// Throws std::invalid_argument when a dimension is zero, the flat space
  /// overflows 32-bit indexing, or `cutoff` is negative.
  EligibilityTraces(std::size_t num_states, std::size_t num_actions,
                    TraceType type = TraceType::kReplacing,
                    double cutoff = 1e-8);

  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_actions() const noexcept { return num_actions_; }

  /// Marks (s, a) visited per the trace type.
  void visit(StateId s, ActionId a);

  /// For replacing traces: clears the traces of every *other* action in
  /// state `s` (Singh & Sutton's variant); call before visit().
  void clear_state_actions(StateId s, ActionId keep);

  /// Multiplies every trace by `factor` (= γλ), dropping tiny entries.
  void decay(double factor);

  /// Removes all traces (episode boundary, or Watkins' cut after a
  /// non-greedy action).
  void clear() noexcept;

  /// Throws std::out_of_range outside the S×A space.
  double get(StateId s, ActionId a) const;
  std::size_t active_count() const noexcept { return active_.size(); }

  /// Snapshot of all active traces (unspecified order).
  std::vector<Entry> entries() const;

  /// Applies `fn(state, action, trace)` to every active trace.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint32_t idx : active_) {
      fn(static_cast<StateId>(idx / num_actions_),
         static_cast<ActionId>(idx % num_actions_), values_[idx]);
    }
  }

 private:
  static constexpr std::uint32_t kInactive = 0xffffffffu;

  std::size_t index(StateId s, ActionId a) const;

  /// Swap-pop removal of the active entry at `position` in active_.
  void deactivate_at(std::size_t position) noexcept;

  TraceType type_;
  double cutoff_;
  std::size_t num_states_;
  std::size_t num_actions_;
  std::vector<double> values_;        ///< S×A, 0.0 when inactive
  std::vector<std::uint32_t> active_; ///< flat indices of live traces
  std::vector<std::uint32_t> pos_;    ///< flat index -> slot in active_
};

}  // namespace coreda::rl
