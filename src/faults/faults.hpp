#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace coreda::faults {

/// Thrown by Site::crash_point when the plan schedules a crash there.
///
/// Components treat an InjectedCrash exactly like a real mid-publish power
/// cut: abort the write, keep the committed prefix, leave retry state
/// (unflushed counters, dirty tables) intact so the operation is re-attempted
/// later. Harnesses catch it by type so genuine I/O errors still propagate.
struct InjectedCrash : std::runtime_error {
  explicit InjectedCrash(const std::string& what) : std::runtime_error(what) {}
};

/// Gilbert–Elliott two-state burst channel: frames are lost with
/// loss_in_good while the chain is in the good state and loss_in_bad while
/// it is in the bad state; the chain enters bad with p_enter per frame and
/// leaves it with p_exit. All-zero means no burst model.
struct BurstConfig {
  double p_enter = 0.0;
  double p_exit = 0.0;
  double loss_in_good = 0.0;
  double loss_in_bad = 0.0;

  bool enabled() const noexcept {
    return p_enter > 0.0 || loss_in_good > 0.0 || loss_in_bad > 0.0;
  }
};

/// Per-site knobs. A site ignores the fields that make no sense for it
/// (a crash seam reads rate, a stall seam reads rate + delay_us, a radio
/// seam reads burst). Epoch windows gate every decision: the injector's
/// epoch counter must be in [epoch_begin, epoch_end) for the site to fire,
/// which lets a plan schedule chaos rounds followed by clean probe rounds.
struct SiteConfig {
  double rate = 0.0;                 ///< per-evaluation injection probability
  std::uint64_t delay_us = 0;        ///< stall duration when a stall fires
  BurstConfig burst;                 ///< radio burst schedule
  std::uint64_t epoch_begin = 0;     ///< first epoch (inclusive) the site is live
  std::uint64_t epoch_end = UINT64_MAX;  ///< first epoch the site is dead

  bool trivial() const noexcept {
    return rate <= 0.0 && delay_us == 0 && !burst.enabled();
  }
};

/// A fault plan is pure data: one seed plus named per-site configs.
/// Replaying any failure is {seed, plan} — every injection decision is a
/// pure function of (plan seed, site name, user, tick, epoch), so a replay
/// is byte-identical at any --jobs.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::map<std::string, SiteConfig> sites;

  /// The standard chaos-soak plan used by bench_chaos_soak and
  /// `coreda faults replay` defaults: crash/corrupt/dropout/stall/burst on
  /// every registered seam for `chaos_epochs` epochs, then silence (so the
  /// bench's clean tail rounds can assert zero-allocation steady state).
  static FaultPlan standard_chaos(std::uint64_t seed,
                                  std::uint64_t chaos_epochs);

  /// Parses the `key = value` text format written by save():
  ///
  ///   seed = 42
  ///   [site segment_store.pre_publish]
  ///   rate = 0.05
  ///   epoch_end = 6
  ///
  /// Unknown keys and malformed lines throw std::runtime_error with a line
  /// number; comments (#) and blank lines are skipped.
  static FaultPlan parse(std::istream& in);
  void save(std::ostream& out) const;
};

class Injector;

/// A named seam a component exposes to the injector. Components own their
/// Site by value and call its decision methods at the fault point; an
/// unattached or out-of-window site is an inert branch (no allocation, a
/// couple of integer mixes). Decisions are pure functions of
/// (site stream, user, tick): no shared mutable draw state, so concurrent
/// shard trials get byte-identical schedules at any interleaving.
///
/// Sites also carry the legacy test hook that used to live as raw
/// std::function setters on PolicyStore/SegmentStore: set_hook() routes the
/// one-off crash lambdas of existing tests through the same seam, so there
/// is one injection vocabulary.
class Site {
 public:
  explicit Site(std::string name) : name_(std::move(name)) {}

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  const std::string& name() const noexcept { return name_; }
  bool armed() const noexcept { return armed_; }

  /// True when the plan schedules an injection for (user, tick) in the
  /// current epoch. Counts one evaluation; counts one injection when it
  /// fires.
  bool should_inject(std::uint64_t user, std::uint64_t tick) noexcept;

  /// Crash seam. Runs the legacy hook first (it may throw, preserving the
  /// old pre-publish contract), then throws InjectedCrash when the plan
  /// schedules a crash for (user, tick).
  void crash_point(std::uint64_t user, std::uint64_t tick,
                   const std::string& detail);

  /// Corruption seam: byte offset to flip inside a len-byte record, or
  /// kNoCorruption. The offset is the sampled online mode of the
  /// every-offset sweep in policy_fuzz_test: over many firings the schedule
  /// walks the whole record uniformly.
  static constexpr std::size_t kNoCorruption = SIZE_MAX;
  std::size_t corrupt_offset(std::uint64_t user, std::uint64_t tick,
                             std::size_t len) noexcept;

  /// Stall seam: nanoseconds to stall lane at tick (0 = no stall).
  std::uint64_t stall_ns(std::uint64_t lane, std::uint64_t tick) noexcept;

  /// Legacy escape hatch: a hook invoked by crash_point before the planned
  /// decision. Replaces the raw pre-publish std::function setters.
  void set_hook(std::function<void(const std::string&)> hook) {
    hook_ = std::move(hook);
  }
  bool has_hook() const noexcept { return static_cast<bool>(hook_); }

  std::uint64_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  std::uint64_t injections() const noexcept {
    return injections_.load(std::memory_order_relaxed);
  }

  const SiteConfig& config() const noexcept { return config_; }
  std::uint64_t stream() const noexcept { return stream_; }

  /// True when the site's epoch window contains the injector's current
  /// epoch (always false when unattached). BurstState consults this.
  bool window_open() const noexcept;

 private:
  friend class Injector;
  friend class BurstState;

  void count_injection() noexcept {
    injections_.fetch_add(1, std::memory_order_relaxed);
  }

  std::string name_;
  SiteConfig config_;
  std::uint64_t stream_ = 0;
  const Injector* injector_ = nullptr;
  bool armed_ = false;
  std::function<void(const std::string&)> hook_;
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> injections_{0};
};

/// Owns the plan and the epoch clock; components hand it their sites via
/// attach(). One injector drives a whole fleet: every attached site derives
/// its decision stream from the single plan seed split by site name
/// (SplitMix64 finalization, mirroring exec::trial_seed).
class Injector {
 public:
  explicit Injector(FaultPlan plan);

  /// Arms `site` from the plan (inert if the plan has no entry for its
  /// name) and registers it for report(). Call during setup, before
  /// concurrent serving starts.
  void attach(Site& site);

  /// Advances the epoch clock. Call from the driving thread between
  /// rounds; sites read it with relaxed loads.
  void advance_epoch() noexcept {
    epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  const FaultPlan& plan() const noexcept { return plan_; }

  struct SiteLog {
    std::string name;
    bool armed = false;
    std::uint64_t evaluations = 0;
    std::uint64_t injections = 0;
  };
  /// Deterministic per-site injection log, sorted by site name.
  std::vector<SiteLog> log() const;

  /// Renders log() as the fixed-width table `coreda faults replay` prints.
  void report(std::ostream& out) const;

 private:
  FaultPlan plan_;
  std::vector<Site*> sites_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// Per-channel Gilbert–Elliott chain state. Radio channels own one and arm
/// it against the shared radio site with their global slot id as the lane:
/// each channel is driven by exactly one shard's serial frame sequence, so
/// the chain is deterministic even though shards run concurrently.
class BurstState {
 public:
  /// Binds this chain to `site` with a per-lane RNG stream.
  void arm(Site& site, std::uint64_t lane) noexcept;

  /// Advances the chain one frame and reports whether the frame is lost.
  /// Inert (false, no RNG draw) when unarmed or the site window is closed.
  bool drop_frame() noexcept;

  bool armed() const noexcept { return site_ != nullptr; }
  bool in_bad_state() const noexcept { return bad_; }

 private:
  Site* site_ = nullptr;
  util::Rng rng_{0};
  bool bad_ = false;
};

}  // namespace coreda::faults
