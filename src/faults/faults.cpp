#include "faults/faults.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/plan_text.hpp"

namespace coreda::faults {
namespace {

/// SplitMix64 finalizer — the same mixer exec::trial_seed uses to split
/// per-trial streams from one base seed.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Pure decision hash: no draw state, so evaluation order cannot matter.
std::uint64_t decision_hash(std::uint64_t stream, std::uint64_t a,
                            std::uint64_t b, std::uint64_t salt) noexcept {
  std::uint64_t x = stream ^ mix64(a + salt);
  return mix64(x ^ mix64(b + 0x6a09e667f3bcc909ULL));
}

double to_unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kCrashSalt = 0x243f6a8885a308d3ULL;
constexpr std::uint64_t kOffsetSalt = 0x13198a2e03707344ULL;
constexpr std::uint64_t kStallSalt = 0xa4093822299f31d0ULL;

}  // namespace

// ---------------------------------------------------------------------------
// Site

bool Site::window_open() const noexcept {
  if (!armed_ || injector_ == nullptr) return false;
  const std::uint64_t ep = injector_->epoch();
  return ep >= config_.epoch_begin && ep < config_.epoch_end;
}

bool Site::should_inject(std::uint64_t user, std::uint64_t tick) noexcept {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (!window_open() || config_.rate <= 0.0) return false;
  const std::uint64_t h = decision_hash(stream_, user, tick, kCrashSalt);
  if (to_unit(h) >= config_.rate) return false;
  count_injection();
  return true;
}

void Site::crash_point(std::uint64_t user, std::uint64_t tick,
                       const std::string& detail) {
  if (hook_) hook_(detail);  // the legacy hook may throw (old contract)
  if (should_inject(user, tick)) {
    throw InjectedCrash(name_ + ": injected crash (" + detail + ")");
  }
}

std::size_t Site::corrupt_offset(std::uint64_t user, std::uint64_t tick,
                                 std::size_t len) noexcept {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (len == 0 || !window_open() || config_.rate <= 0.0) return kNoCorruption;
  const std::uint64_t h = decision_hash(stream_, user, tick, kCrashSalt);
  if (to_unit(h) >= config_.rate) return kNoCorruption;
  count_injection();
  // Sampled online mode of the every-offset sweep: a second independent
  // hash walks the record uniformly over many firings.
  return static_cast<std::size_t>(
      decision_hash(stream_, user, tick, kOffsetSalt) % len);
}

std::uint64_t Site::stall_ns(std::uint64_t lane, std::uint64_t tick) noexcept {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (!window_open() || config_.rate <= 0.0 || config_.delay_us == 0) return 0;
  const std::uint64_t h = decision_hash(stream_, lane, tick, kStallSalt);
  if (to_unit(h) >= config_.rate) return 0;
  count_injection();
  return config_.delay_us * 1000ULL;
}

// ---------------------------------------------------------------------------
// Injector

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)) {}

void Injector::attach(Site& site) {
  site.stream_ = mix64(plan_.seed ^ fnv1a64(site.name_));
  site.injector_ = this;
  const auto it = plan_.sites.find(site.name_);
  if (it != plan_.sites.end()) {
    site.config_ = it->second;
    site.armed_ = !it->second.trivial();
  } else {
    site.config_ = SiteConfig{};
    site.armed_ = false;
  }
  if (std::find(sites_.begin(), sites_.end(), &site) == sites_.end()) {
    sites_.push_back(&site);
  }
}

std::vector<Injector::SiteLog> Injector::log() const {
  std::vector<SiteLog> out;
  out.reserve(sites_.size());
  for (const Site* site : sites_) {
    out.push_back({site->name(), site->armed(), site->evaluations(),
                   site->injections()});
  }
  std::sort(out.begin(), out.end(),
            [](const SiteLog& a, const SiteLog& b) { return a.name < b.name; });
  return out;
}

void Injector::report(std::ostream& out) const {
  out << std::left << std::setw(28) << "site" << std::right << std::setw(7)
      << "armed" << std::setw(14) << "evaluations" << std::setw(12)
      << "injections" << '\n';
  for (const SiteLog& entry : log()) {
    out << std::left << std::setw(28) << entry.name << std::right
        << std::setw(7) << (entry.armed ? "yes" : "no") << std::setw(14)
        << entry.evaluations << std::setw(12) << entry.injections << '\n';
  }
}

// ---------------------------------------------------------------------------
// BurstState

void BurstState::arm(Site& site, std::uint64_t lane) noexcept {
  site_ = &site;
  rng_ = util::Rng(mix64(site.stream() ^ mix64(lane + 0x2b7e151628aed2a6ULL)));
  bad_ = false;
}

bool BurstState::drop_frame() noexcept {
  if (site_ == nullptr || !site_->window_open()) return false;
  const BurstConfig& burst = site_->config().burst;
  if (!burst.enabled()) return false;
  site_->evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (bad_) {
    if (rng_.bernoulli(burst.p_exit)) bad_ = false;
  } else {
    if (rng_.bernoulli(burst.p_enter)) bad_ = true;
  }
  const double p = bad_ ? burst.loss_in_bad : burst.loss_in_good;
  if (!rng_.bernoulli(p)) return false;
  site_->count_injection();
  return true;
}

// ---------------------------------------------------------------------------
// FaultPlan

FaultPlan FaultPlan::standard_chaos(std::uint64_t seed,
                                    std::uint64_t chaos_epochs) {
  FaultPlan plan;
  plan.seed = seed;
  const auto windowed = [chaos_epochs](SiteConfig cfg) {
    cfg.epoch_begin = 0;
    cfg.epoch_end = chaos_epochs;
    return cfg;
  };
  SiteConfig crash;
  crash.rate = 0.05;
  plan.sites["policy_store.pre_publish"] = windowed(crash);
  plan.sites["segment_store.pre_publish"] = windowed(crash);
  SiteConfig corrupt;
  corrupt.rate = 0.03;
  plan.sites["policy_store.corrupt"] = windowed(corrupt);
  plan.sites["segment_store.corrupt"] = windowed(corrupt);
  SiteConfig dropout;
  dropout.rate = 0.08;
  plan.sites["fleet.node_dropout"] = windowed(dropout);
  SiteConfig stall;
  stall.rate = 0.25;
  stall.delay_us = 200;
  plan.sites["fleet.stall"] = windowed(stall);
  plan.sites["serve.stall"] = windowed(stall);
  SiteConfig abort_cfg;
  abort_cfg.rate = 0.25;
  plan.sites["retrain.abort"] = windowed(abort_cfg);
  SiteConfig radio;
  radio.burst.p_enter = 0.04;
  radio.burst.p_exit = 0.25;
  radio.burst.loss_in_good = 0.01;
  radio.burst.loss_in_bad = 0.85;
  plan.sites["radio.loss_burst"] = windowed(radio);
  return plan;
}

// The trim / number-parse / diagnostic helpers this parser originally
// carried now live in util/plan_text (shared with sim::ScenarioPlan); the
// "fault plan line N: ..." message text is unchanged.
namespace {
constexpr std::string_view kPlanContext = "fault plan";
}  // namespace

FaultPlan FaultPlan::parse(std::istream& in) {
  using util::parse_double;
  using util::parse_fail;
  using util::parse_u64;
  FaultPlan plan;
  SiteConfig* current = nullptr;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = util::trim(line);
    if (text.empty() || text[0] == '#') continue;
    if (text.front() == '[') {
      const std::string name =
          util::parse_section(kPlanContext, text, "site", line_no);
      current = &plan.sites[name];
      continue;
    }
    const util::KeyValue kv = util::split_key_value(kPlanContext, text, line_no);
    const std::string& key = kv.key;
    const std::string& value = kv.value;
    if (current == nullptr) {
      if (key == "seed") {
        plan.seed = parse_u64(kPlanContext, value, line_no);
      } else {
        parse_fail(kPlanContext, line_no, "unknown top-level key '" + key + "'");
      }
      continue;
    }
    if (key == "rate") {
      current->rate = parse_double(kPlanContext, value, line_no);
    } else if (key == "delay_us") {
      current->delay_us = parse_u64(kPlanContext, value, line_no);
    } else if (key == "epoch_begin") {
      current->epoch_begin = parse_u64(kPlanContext, value, line_no);
    } else if (key == "epoch_end") {
      current->epoch_end = parse_u64(kPlanContext, value, line_no);
    } else if (key == "p_enter") {
      current->burst.p_enter = parse_double(kPlanContext, value, line_no);
    } else if (key == "p_exit") {
      current->burst.p_exit = parse_double(kPlanContext, value, line_no);
    } else if (key == "loss_in_good") {
      current->burst.loss_in_good = parse_double(kPlanContext, value, line_no);
    } else if (key == "loss_in_bad") {
      current->burst.loss_in_bad = parse_double(kPlanContext, value, line_no);
    } else {
      parse_fail(kPlanContext, line_no, "unknown site key '" + key + "'");
    }
  }
  return plan;
}

void FaultPlan::save(std::ostream& out) const {
  out << "# coreda faults plan v1\n";
  out << "seed = " << seed << '\n';
  for (const auto& [name, cfg] : sites) {
    out << "\n[site " << name << "]\n";
    if (cfg.rate > 0.0) out << "rate = " << cfg.rate << '\n';
    if (cfg.delay_us != 0) out << "delay_us = " << cfg.delay_us << '\n';
    if (cfg.epoch_begin != 0) out << "epoch_begin = " << cfg.epoch_begin << '\n';
    if (cfg.epoch_end != UINT64_MAX) out << "epoch_end = " << cfg.epoch_end << '\n';
    if (cfg.burst.p_enter > 0.0) out << "p_enter = " << cfg.burst.p_enter << '\n';
    if (cfg.burst.p_exit > 0.0) out << "p_exit = " << cfg.burst.p_exit << '\n';
    if (cfg.burst.loss_in_good > 0.0) {
      out << "loss_in_good = " << cfg.burst.loss_in_good << '\n';
    }
    if (cfg.burst.loss_in_bad > 0.0) {
      out << "loss_in_bad = " << cfg.burst.loss_in_bad << '\n';
    }
  }
}

}  // namespace coreda::faults
