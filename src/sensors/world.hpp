#pragma once

#include <map>
#include <optional>

#include "adl/types.hpp"
#include "sensors/envelope.hpp"
#include "sim/time.hpp"

namespace coreda::sensors {

/// The shared physical state the sensor nodes observe: which tools are being
/// manipulated right now and how far each manipulation has progressed.
///
/// The patient model writes manipulations into the world; each PAVENET
/// node's firmware tick reads back the activation of its own tool. This is
/// the seam that replaces "a real person handling real tools" in the paper's
/// deployment — see DESIGN.md §2.
class ManipulationWorld {
 public:
  /// Starts (or restarts) a manipulation of `tool` lasting `duration`.
  /// `ramp` defaults to a 0.5 s grip transition, capped by the envelope to
  /// half the duration.
  void begin(adl::ToolId tool, sim::TimePoint start, sim::Duration duration,
             sim::Duration ramp = sim::Duration::seconds(0.5));

  /// Ends any in-progress manipulation of `tool` early.
  void end(adl::ToolId tool, sim::TimePoint now);

  /// Envelope activation of `tool` at `now`, in [0, 1]; 0 when idle.
  double activation(adl::ToolId tool, sim::TimePoint now) const;

  /// Whether `tool` has a manipulation covering `now`.
  bool in_use(adl::ToolId tool, sim::TimePoint now) const;

  /// Drops episodes that ended before `now` (bounded memory on long runs).
  void garbage_collect(sim::TimePoint now);

 private:
  struct Episode {
    sim::TimePoint start;
    sim::TimePoint end;
    UsageEnvelope envelope;
  };
  std::map<adl::ToolId, Episode> active_;
};

}  // namespace coreda::sensors
