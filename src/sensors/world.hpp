#pragma once

#include <vector>

#include "adl/types.hpp"
#include "sensors/envelope.hpp"
#include "sim/time.hpp"

namespace coreda::sensors {

/// The shared physical state the sensor nodes observe: which tools are being
/// manipulated right now and how far each manipulation has progressed.
///
/// The patient model writes manipulations into the world; each PAVENET
/// node's firmware reads back the activation of its own tool. This is the
/// seam that replaces "a real person handling real tools" in the paper's
/// deployment — see DESIGN.md §2.
///
/// Queries are valid for any time within the last kHistoryRetention of
/// virtual time, not just the current instant: the batched firmware task
/// wakes once per vote window and evaluates the samples it would have taken
/// at each 10 Hz tick retroactively, so the world keeps a short per-tool
/// episode history. An episode superseded by a later begin() of the same
/// tool stays answerable for times before the successor started (what a
/// live per-tick reader would have seen), and is clipped from the
/// successor's start onward.
///
/// Storage is a dense table keyed by ToolId (the PAVENET uid space is small
/// and dense — paper Table 2), so the per-sample activation lookups on the
/// firmware hot path are an array index, not a tree walk.
class ManipulationWorld {
 public:
  /// How far back activation()/in_use() queries remain answerable. Must
  /// cover the longest firmware batch window (vote_window / sampling_hz;
  /// 1 s at the paper's 10 Hz, 5 s at the 2 Hz end of the energy sweep).
  static constexpr sim::Duration kHistoryRetention =
      sim::Duration::seconds(10.0);

  /// Per-tool episode-list pre-size: pruning keeps only episodes younger
  /// than kHistoryRetention, so a handful are ever live at once.
  static constexpr std::size_t kEpisodeReserve = 16;

  /// Pre-sizes the per-tool episode table for tool ids below
  /// `tool_capacity`. Optional: begin() grows the table on demand; calling
  /// this up front keeps even the first manipulation of a rarely-touched
  /// tool (e.g. a random wrong-tool grab) allocation-free at serving time.
  void provision(std::size_t tool_capacity);

  /// Starts (or restarts) a manipulation of `tool` lasting `duration`.
  /// `ramp` defaults to a 0.5 s grip transition, capped by the envelope to
  /// half the duration.
  void begin(adl::ToolId tool, sim::TimePoint start, sim::Duration duration,
             sim::Duration ramp = sim::Duration::seconds(0.5));

  /// Ends any in-progress manipulation of `tool` early.
  void end(adl::ToolId tool, sim::TimePoint now);

  /// Envelope activation of `tool` at `at`, in [0, 1]; 0 when idle.
  double activation(adl::ToolId tool, sim::TimePoint at) const;

  /// Fills out[0..count) with the activation of `tool` at `first`,
  /// `first + step`, ... — one episode-list lookup for the whole block
  /// (the firmware's per-wake-up envelope synthesis).
  void activation_block(adl::ToolId tool, sim::TimePoint first,
                        sim::Duration step, std::size_t count,
                        double* out) const;

  /// Whether `tool` had a manipulation covering `at`.
  bool in_use(adl::ToolId tool, sim::TimePoint at) const;

  /// Drops episodes that ended more than kHistoryRetention before `now`
  /// (bounded memory on long runs without breaking retroactive queries).
  void garbage_collect(sim::TimePoint now);

  /// Forgets all episode history but keeps per-tool buffer capacity, so a
  /// reused world serves its next session without fresh allocations.
  void reset() noexcept;

 private:
  struct Episode {
    sim::TimePoint start;
    sim::TimePoint end;
    UsageEnvelope envelope;
  };

  static double episode_activation(const Episode& ep, sim::TimePoint at);

  const std::vector<Episode>* find(adl::ToolId tool) const noexcept {
    return tool < history_.size() ? &history_[tool] : nullptr;
  }

  /// Episodes per tool in start order (newest at the back), indexed by
  /// ToolId; pruned against kHistoryRetention on every begin().
  std::vector<std::vector<Episode>> history_;
};

}  // namespace coreda::sensors
