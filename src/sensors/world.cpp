#include "sensors/world.hpp"

namespace coreda::sensors {

void ManipulationWorld::begin(adl::ToolId tool, sim::TimePoint start,
                              sim::Duration duration, sim::Duration ramp) {
  active_.insert_or_assign(
      tool, Episode{start, start + duration, UsageEnvelope(duration, ramp)});
}

void ManipulationWorld::end(adl::ToolId tool, sim::TimePoint now) {
  const auto it = active_.find(tool);
  if (it == active_.end()) return;
  if (it->second.end > now) it->second.end = now;
}

double ManipulationWorld::activation(adl::ToolId tool,
                                     sim::TimePoint now) const {
  const auto it = active_.find(tool);
  if (it == active_.end()) return 0.0;
  const Episode& ep = it->second;
  if (now < ep.start || now > ep.end) return 0.0;
  return ep.envelope.activation(now - ep.start);
}

bool ManipulationWorld::in_use(adl::ToolId tool, sim::TimePoint now) const {
  const auto it = active_.find(tool);
  if (it == active_.end()) return false;
  return now >= it->second.start && now <= it->second.end;
}

void ManipulationWorld::garbage_collect(sim::TimePoint now) {
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.end < now) {
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace coreda::sensors
