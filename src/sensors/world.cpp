#include "sensors/world.hpp"

#include <algorithm>

namespace coreda::sensors {

void ManipulationWorld::provision(std::size_t tool_capacity) {
  if (history_.size() < tool_capacity) history_.resize(tool_capacity);
  for (std::vector<Episode>& episodes : history_) {
    if (episodes.capacity() < kEpisodeReserve) {
      episodes.reserve(kEpisodeReserve);
    }
  }
}

void ManipulationWorld::begin(adl::ToolId tool, sim::TimePoint start,
                              sim::Duration duration, sim::Duration ramp) {
  if (tool >= history_.size()) history_.resize(tool + 1);
  std::vector<Episode>& episodes = history_[tool];
  // Pruning against kHistoryRetention keeps at most a handful of episodes
  // per tool live; pre-size once so steady-state begin() never reallocates.
  if (episodes.capacity() < kEpisodeReserve) episodes.reserve(kEpisodeReserve);
  if (!episodes.empty()) {
    // A new manipulation supersedes whatever was in progress: the previous
    // episode stops being the answer from `start` onward, but stays on
    // record for retroactive queries about earlier instants.
    Episode& last = episodes.back();
    if (last.end > start) last.end = start;
  }
  // Retroactive queries only reach back kHistoryRetention; forget older
  // episodes so long sessions stay bounded.
  const sim::TimePoint horizon = start - kHistoryRetention;
  std::erase_if(episodes,
                [horizon](const Episode& ep) { return ep.end < horizon; });
  episodes.push_back(
      Episode{start, start + duration, UsageEnvelope(duration, ramp)});
}

void ManipulationWorld::end(adl::ToolId tool, sim::TimePoint now) {
  if (tool >= history_.size() || history_[tool].empty()) return;
  Episode& last = history_[tool].back();
  if (last.end > now) last.end = now;
}

double ManipulationWorld::episode_activation(const Episode& ep,
                                             sim::TimePoint at) {
  if (at < ep.start || at > ep.end) return 0.0;
  return ep.envelope.activation(at - ep.start);
}

double ManipulationWorld::activation(adl::ToolId tool,
                                     sim::TimePoint at) const {
  const std::vector<Episode>* episodes = find(tool);
  if (episodes == nullptr) return 0.0;
  // Newest-first: at an instant shared by a superseded episode's clipped
  // end and its successor's start, the successor is what a live reader saw.
  for (auto ep = episodes->rbegin(); ep != episodes->rend(); ++ep) {
    if (at >= ep->start) return episode_activation(*ep, at);
  }
  return 0.0;
}

void ManipulationWorld::activation_block(adl::ToolId tool,
                                         sim::TimePoint first,
                                         sim::Duration step,
                                         std::size_t count,
                                         double* out) const {
  const std::vector<Episode>* episodes = find(tool);
  if (episodes == nullptr || episodes->empty()) {
    std::fill(out, out + count, 0.0);
    return;
  }
  sim::TimePoint at = first;
  for (std::size_t i = 0; i < count; ++i, at = at + step) {
    double value = 0.0;
    for (auto ep = episodes->rbegin(); ep != episodes->rend(); ++ep) {
      if (at >= ep->start) {
        value = episode_activation(*ep, at);
        break;
      }
    }
    out[i] = value;
  }
}

bool ManipulationWorld::in_use(adl::ToolId tool, sim::TimePoint at) const {
  const std::vector<Episode>* episodes = find(tool);
  if (episodes == nullptr) return false;
  for (auto ep = episodes->rbegin(); ep != episodes->rend(); ++ep) {
    if (at >= ep->start) return at <= ep->end;
  }
  return false;
}

void ManipulationWorld::garbage_collect(sim::TimePoint now) {
  // Keep the retention window even here so a collect racing a batched
  // firmware wake can't drop episodes the wake still needs to read back.
  const sim::TimePoint horizon = now - kHistoryRetention;
  for (std::vector<Episode>& episodes : history_) {
    std::erase_if(episodes,
                  [horizon](const Episode& ep) { return ep.end < horizon; });
  }
}

void ManipulationWorld::reset() noexcept {
  for (std::vector<Episode>& episodes : history_) episodes.clear();
}

}  // namespace coreda::sensors
