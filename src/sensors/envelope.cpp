#include "sensors/envelope.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace coreda::sensors {

UsageEnvelope::UsageEnvelope(sim::Duration duration, sim::Duration ramp,
                             double modulation_depth, double modulation_hz)
    : duration_(duration),
      ramp_(ramp),
      modulation_depth_(modulation_depth),
      modulation_hz_(modulation_hz) {
  if (duration <= sim::Duration()) {
    throw std::invalid_argument("UsageEnvelope: duration must be positive");
  }
  if (ramp < sim::Duration()) {
    throw std::invalid_argument("UsageEnvelope: ramp must be non-negative");
  }
  if (modulation_depth < 0.0 || modulation_depth > 1.0) {
    throw std::invalid_argument(
        "UsageEnvelope: modulation depth must be in [0, 1]");
  }
}

double UsageEnvelope::activation(sim::Duration offset) const noexcept {
  const double t = offset.to_seconds();
  const double d = duration_.to_seconds();
  if (t < 0.0 || t > d) return 0.0;

  // Ramps may not exceed half the duration each; short grips are dominated
  // by transitions and never reach a full plateau.
  const double r = std::min(ramp_.to_seconds(), d / 2.0);
  double trapezoid = 1.0;
  if (r > 0.0) {
    if (t < r) {
      trapezoid = t / r;
    } else if (t > d - r) {
      trapezoid = (d - t) / r;
    }
  }

  const double modulation =
      1.0 - modulation_depth_ * 0.5 *
                (1.0 + std::sin(2.0 * std::numbers::pi * modulation_hz_ * t));
  return std::clamp(trapezoid * modulation, 0.0, 1.0);
}

}  // namespace coreda::sensors
