#include "sensors/models.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace coreda::sensors {

double Vec3::magnitude() const noexcept {
  return std::sqrt(x * x + y * y + z * z);
}

void SensorModel::sample_block(sim::TimePoint first, sim::Duration step,
                               const double* activations, std::size_t count,
                               double intensity, util::Rng& rng,
                               double* out) {
  sim::TimePoint at = first;
  for (std::size_t i = 0; i < count; ++i, at = at + step) {
    out[i] = sample(at, activations[i], intensity, rng);
  }
}

double AccelerometerModel::sample(sim::TimePoint /*t*/, double activation,
                                  double intensity, util::Rng& rng) {
  // Gravity on z at rest; manipulation tilts and shakes the node so the
  // deviation is split across axes with random direction.
  const double drive = activation * intensity * params_.usage_scale_g;
  double bump = 0.0;
  if (activation <= 0.0 && rng.bernoulli(params_.bump_probability)) {
    bump = params_.bump_magnitude_g * rng.uniform(0.6, 1.0);
  }
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double phi = rng.uniform(0.0, std::numbers::pi);
  const double r = drive + bump;
  last_.x = r * std::sin(phi) * std::cos(theta) +
            rng.normal(0.0, params_.noise_g);
  last_.y = r * std::sin(phi) * std::sin(theta) +
            rng.normal(0.0, params_.noise_g);
  last_.z = 1.0 + r * std::cos(phi) + rng.normal(0.0, params_.noise_g);
  // The firmware's excitation metric: deviation of |a| from 1 g.
  return std::abs(last_.magnitude() - 1.0);
}

void AccelerometerModel::sample_block(sim::TimePoint first,
                                      sim::Duration step,
                                      const double* activations,
                                      std::size_t count, double intensity,
                                      util::Rng& rng, double* out) {
  // Qualified call = devirtualized; one dispatch per window, not per sample.
  sim::TimePoint at = first;
  for (std::size_t i = 0; i < count; ++i, at = at + step) {
    out[i] = AccelerometerModel::sample(at, activations[i], intensity, rng);
  }
}

double PressureModel::sample(sim::TimePoint /*t*/, double activation,
                             double intensity, util::Rng& rng) {
  double value = activation * intensity * params_.usage_scale +
                 std::abs(rng.normal(0.0, params_.noise));
  if (activation <= 0.0 && rng.bernoulli(params_.bump_probability)) {
    value += params_.bump_magnitude * rng.uniform(0.5, 1.0);
  }
  return std::max(0.0, value);
}

void PressureModel::sample_block(sim::TimePoint first, sim::Duration step,
                                 const double* activations,
                                 std::size_t count, double intensity,
                                 util::Rng& rng, double* out) {
  sim::TimePoint at = first;
  for (std::size_t i = 0; i < count; ++i, at = at + step) {
    out[i] = PressureModel::sample(at, activations[i], intensity, rng);
  }
}

double MotionModel::sample(sim::TimePoint /*t*/, double activation,
                           double intensity, util::Rng& rng) {
  const double p = activation > 0.0
                       ? std::clamp(params_.detect_probability * activation *
                                        intensity,
                                    0.0, 1.0)
                       : params_.false_positive;
  return rng.bernoulli(p) ? 1.0 : 0.0;
}

double BrightnessModel::sample(sim::TimePoint t, double activation,
                               double intensity, util::Rng& rng) {
  const double drift =
      params_.drift_amplitude *
      std::sin(2.0 * std::numbers::pi * t.to_seconds() /
               params_.drift_period_s);
  const double level = params_.ambient + drift +
                       activation * intensity * params_.usage_delta +
                       rng.normal(0.0, params_.noise);
  // Excitation = deviation from the (known) ambient set point.
  return std::abs(level - params_.ambient);
}

double TemperatureModel::sample(sim::TimePoint /*t*/, double activation,
                                double intensity, util::Rng& rng) {
  const double target = activation * intensity * params_.usage_scale;
  state_ += params_.lag_per_sample * (target - state_);
  return std::max(0.0, state_ + rng.normal(0.0, params_.noise));
}

std::unique_ptr<SensorModel> make_sensor_model(adl::SensorKind kind) {
  using enum adl::SensorKind;
  switch (kind) {
    case kAccelerometer:
      return std::make_unique<AccelerometerModel>();
    case kPressure:
      return std::make_unique<PressureModel>();
    case kMotion:
      return std::make_unique<MotionModel>();
    case kBrightness:
      return std::make_unique<BrightnessModel>();
    case kTemperature:
      return std::make_unique<TemperatureModel>();
  }
  return std::make_unique<AccelerometerModel>();
}

}  // namespace coreda::sensors
