#pragma once

#include <memory>

#include "adl/types.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace coreda::sensors {

/// A 3-axis acceleration sample in g.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  double magnitude() const noexcept;
};

/// Produces the *excitation* a PAVENET firmware compares against its
/// threshold: a non-negative scalar that is ~0 at rest and rises toward the
/// tool's usage intensity while the tool is manipulated.
///
/// `activation` is the instantaneous envelope value in [0, 1] (0 = tool at
/// rest) and `intensity` the tool's intrinsic vigor; both come from the
/// deployment model. Sampling consumes randomness, so models are stateful
/// per node and never shared.
class SensorModel {
 public:
  virtual ~SensorModel() = default;

  /// One raw excitation sample at virtual time `t`.
  virtual double sample(sim::TimePoint t, double activation,
                        double intensity, util::Rng& rng) = 0;

  /// Fills out[0..count) with consecutive samples at `first`,
  /// `first + step`, ..., reading the matching activation for each from
  /// `activations`. Values and RNG draw order are identical to calling
  /// sample() in a loop; hot models override this to hoist the virtual
  /// dispatch out of the batched firmware's per-sample loop. `out` may
  /// alias `activations` (each element is read before it is written).
  virtual void sample_block(sim::TimePoint first, sim::Duration step,
                            const double* activations, std::size_t count,
                            double intensity, util::Rng& rng, double* out);

  /// The threshold a node firmware should use with this model: chosen so a
  /// full-intensity manipulation comfortably exceeds it while idle noise
  /// (including accidental bumps) rarely does.
  virtual double recommended_threshold() const noexcept = 0;
};

/// 3-axis accelerometer. At rest the magnitude is 1 g plus noise; during
/// manipulation the deviation from 1 g scales with activation x intensity.
/// Idle periods occasionally see short accidental bumps (someone brushing
/// against the table) — the artifact the paper's 3-of-10 vote exists to
/// reject.
class AccelerometerModel final : public SensorModel {
 public:
  struct Params {
    double noise_g = 0.035;        ///< stddev of per-axis idle noise
    double usage_scale_g = 0.85;   ///< deviation at activation*intensity = 1
    double bump_probability = 0.004;  ///< per-sample chance of an idle bump
    double bump_magnitude_g = 0.9;    ///< excitation of an accidental bump
  };

  AccelerometerModel() = default;
  explicit AccelerometerModel(Params params) : params_(params) {}

  double sample(sim::TimePoint t, double activation, double intensity,
                util::Rng& rng) override;
  void sample_block(sim::TimePoint first, sim::Duration step,
                    const double* activations, std::size_t count,
                    double intensity, util::Rng& rng, double* out) override;
  double recommended_threshold() const noexcept override { return 0.30; }

  /// The full 3-axis reading behind the last sample() call; useful for
  /// tests and trace export.
  Vec3 last_reading() const noexcept { return last_; }

 private:
  Params params_;
  Vec3 last_{};
};

/// Pressure sensor (the electronic pot's dispense lever). Produces a small
/// signal: pressing the lever is a gentle, short action — the reason the
/// paper measures only 80 % extract precision for "pour hot water".
class PressureModel final : public SensorModel {
 public:
  struct Params {
    double noise = 0.05;
    double usage_scale = 0.75;
    double bump_probability = 0.002;
    double bump_magnitude = 0.5;
  };

  PressureModel() = default;
  explicit PressureModel(Params params) : params_(params) {}

  double sample(sim::TimePoint t, double activation, double intensity,
                util::Rng& rng) override;
  void sample_block(sim::TimePoint first, sim::Duration step,
                    const double* activations, std::size_t count,
                    double intensity, util::Rng& rng, double* out) override;
  double recommended_threshold() const noexcept override { return 0.25; }

 private:
  Params params_;
};

/// Passive-infrared-style motion sensor: a stochastic detector that fires
/// with probability proportional to activation, plus a small false-positive
/// floor.
class MotionModel final : public SensorModel {
 public:
  struct Params {
    double detect_probability = 0.90;  ///< per-sample hit rate at full vigor
    double false_positive = 0.005;
  };

  MotionModel() = default;
  explicit MotionModel(Params params) : params_(params) {}

  double sample(sim::TimePoint t, double activation, double intensity,
                util::Rng& rng) override;
  double recommended_threshold() const noexcept override { return 0.5; }

 private:
  Params params_;
};

/// Brightness sensor: ambient light with slow diurnal drift; manipulation
/// (e.g. opening a cabinet) changes the level sharply.
class BrightnessModel final : public SensorModel {
 public:
  struct Params {
    double ambient = 0.4;
    double drift_amplitude = 0.1;
    double drift_period_s = 3600.0;
    double noise = 0.05;
    double usage_delta = 0.5;
  };

  BrightnessModel() = default;
  explicit BrightnessModel(Params params) : params_(params) {}

  double sample(sim::TimePoint t, double activation, double intensity,
                util::Rng& rng) override;
  double recommended_threshold() const noexcept override { return 0.30; }

 private:
  Params params_;
};

/// Temperature sensor: slow thermal response toward a usage-dependent
/// target (e.g. a kettle warming). First-order lag, so excitation outlives
/// the manipulation slightly.
class TemperatureModel final : public SensorModel {
 public:
  struct Params {
    double noise = 0.01;
    double usage_scale = 0.6;
    double lag_per_sample = 0.15;  ///< fraction of gap closed per sample
  };

  TemperatureModel() = default;
  explicit TemperatureModel(Params params) : params_(params) {}

  double sample(sim::TimePoint t, double activation, double intensity,
                util::Rng& rng) override;
  double recommended_threshold() const noexcept override { return 0.20; }

 private:
  Params params_;
  double state_ = 0.0;
};

/// Builds the default model for a sensor kind (paper Table 1's sensor
/// complement).
std::unique_ptr<SensorModel> make_sensor_model(adl::SensorKind kind);

}  // namespace coreda::sensors
