#pragma once

#include "sim/time.hpp"

namespace coreda::sensors {

/// Activation envelope of one tool-manipulation episode.
///
/// When a person picks up a tool, uses it, and puts it down, the motion
/// energy follows a trapezoid: a ramp as the hand closes on the tool, a
/// sustained plateau with natural amplitude modulation (shaking a tube,
/// scrubbing strokes), and a ramp-down. The envelope maps a time inside the
/// usage interval to an activation factor in [0, 1] that the sensor models
/// scale by the tool's intrinsic usage intensity.
///
/// Short manipulations never reach a full plateau (ramps overlap), which is
/// the mechanical reason brief steps such as "dry with a towel" are harder
/// for the 3-of-10 detector to catch — the paper's Table 3 effect.
class UsageEnvelope {
 public:
  /// `ramp` is the pick-up/put-down transition time. Throws
  /// std::invalid_argument for non-positive duration or negative ramp.
  UsageEnvelope(sim::Duration duration, sim::Duration ramp,
                double modulation_depth = 0.25,
                double modulation_hz = 1.8);

  /// Activation at `offset` from the start of the manipulation, in [0, 1].
  /// Returns 0 outside [0, duration].
  double activation(sim::Duration offset) const noexcept;

  sim::Duration duration() const noexcept { return duration_; }

 private:
  sim::Duration duration_;
  sim::Duration ramp_;
  double modulation_depth_;
  double modulation_hz_;
};

}  // namespace coreda::sensors
