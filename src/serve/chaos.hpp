#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adl/library.hpp"
#include "exec/trial_runner.hpp"
#include "faults/faults.hpp"
#include "planning/learner.hpp"
#include "serve/arrivals.hpp"
#include "serve/engine.hpp"
#include "serve/fleet_engine.hpp"

namespace coreda::serve {

/// Chaos-soak harnesses: the standard way to run the serving tiers under a
/// faults::FaultPlan and *prove* the crash-consistency story round by
/// round, shared by bench_chaos_soak, `coreda faults replay` and the chaos
/// tests so all three exercise one code path.
///
/// Two soaks mirror the two serving tiers:
///   * ChaosFleetSoak  — FleetEngine over the mmap SegmentStore: crashed
///     and corrupted appends, node dropouts, shard stalls, radio bursts.
///     Invariants checked after EVERY round: no committed version ever
///     regresses, and a fresh store opened on the same directory recovers
///     exactly the live store's view (longest valid prefix).
///   * ChaosServeSoak  — ServeEngine + RetrainScheduler closed loop:
///     drifted users on stale tables must still be flagged, retrained
///     (through injected aborts and crashed flushes) and recover, and the
///     PolicyStore directory must restore to the flushed versions.
///
/// Both run `chaos_rounds` rounds inside the plan's fault window followed
/// by `tail_rounds` clean rounds (the injector epoch advances once per
/// round; FaultPlan::standard_chaos windows every site to
/// [0, chaos_rounds)), so the soak also proves the system *settles*: the
/// fleet soak ends with a steady-state allocation probe that must read 0.
///
/// Determinism: every result field except the wall-clock `serve_seconds`
/// is byte-identical at any TrialRunner job count — fault decisions are
/// pure (site stream, user, tick) hashes and the engines shard statically.

// ---------------------------------------------------------------------------
// Fleet tier soak

struct ChaosFleetParams {
  std::size_t users = 512;
  /// Sessions enqueued per round from a Zipf arrival stream.
  std::size_t active = 192;
  /// Rounds served inside the fault window (epochs [0, chaos_rounds)).
  std::size_t chaos_rounds = 6;
  /// Clean rounds after the window closes — recovery + settle phase.
  std::size_t tail_rounds = 2;
  std::size_t shards = 4;
  std::size_t slots_per_shard = 2;
  std::size_t write_back_every = 1;
  /// Short chains force compactions (and their rebase crash seam) during
  /// the soak instead of after it.
  std::size_t rebase_every = 8;
  double zipf = 1.1;
  /// Segment store directory (required; wiped on construction).
  std::string dir;
};

/// Per-round soak log line. Counters prefixed `round_` cover this round
/// only; the rest are cumulative snapshots after the round.
struct ChaosRoundStats {
  std::uint64_t epoch = 0;     ///< injector epoch the round served under
  std::uint64_t sessions = 0;  ///< cumulative sessions served
  std::uint64_t dropped = 0;   ///< cumulative injected node dropouts
  std::uint64_t crashed_appends = 0;   ///< cumulative crashed store appends
  std::uint64_t radio_lost = 0;        ///< cumulative burst-lost frames
  std::uint64_t committed_users = 0;   ///< users with a stored record
  std::uint64_t round_versions_lost = 0;      ///< committed version regressed
  std::uint64_t round_reopen_mismatches = 0;  ///< reopen view != live view
  std::uint64_t round_reopen_load_failures = 0;  ///< reopened chain invalid
};

struct ChaosFleetResult {
  FleetReport report;  ///< final cumulative fleet report
  std::vector<ChaosRoundStats> rounds;
  /// Invariant counters, summed over every round's checks. All must be 0;
  /// `invariant_violations` is their sum and is exact-gated at 0.
  std::uint64_t committed_versions_lost = 0;
  std::uint64_t reopen_mismatches = 0;
  std::uint64_t reopen_load_failures = 0;
  std::uint64_t invariant_violations = 0;
  /// Injection totals pulled from the injector log (crash seams fired /
  /// record bytes corrupted) — the proof the soak actually hurt.
  std::uint64_t injected_crashes = 0;
  std::uint64_t injected_corruptions = 0;
  /// Allocations per session over a serial post-soak probe (the fault
  /// window is closed and the fleet warm again: must be 0).
  double steady_state_allocs = 0.0;
  /// Drain wall-clock, timing side-channel only — never printed.
  double serve_seconds = 0.0;
};

class ChaosFleetSoak {
 public:
  /// Builds the whole stack (library, donor policy, segment store, fleet
  /// engine) and arms every seam against `plan`. `params.dir` is wiped.
  ChaosFleetSoak(ChaosFleetParams params, faults::FaultPlan plan);
  ~ChaosFleetSoak();

  /// Serves chaos_rounds + tail_rounds rounds, checking the invariants
  /// after each, then runs the steady-state probe. One call per soak.
  ChaosFleetResult run(exec::TrialRunner& runner);

  const faults::Injector& injector() const noexcept { return injector_; }
  const FleetEngine& fleet() const noexcept { return *fleet_; }
  const SegmentStore& store() const noexcept { return *store_; }

 private:
  ChaosRoundStats check_round(ChaosFleetResult& result);

  ChaosFleetParams params_;
  adl::AdlLibrary library_;
  std::vector<adl::StepId> routine_;
  std::unique_ptr<planning::RoutineLearner> donor_;
  std::unique_ptr<SegmentStore> store_;
  std::unique_ptr<FleetEngine> fleet_;
  faults::Injector injector_;
  ZipfianArrivals arrivals_;
  /// Highest committed version ever observed per user (0 = none yet) —
  /// the monotonicity witness.
  std::vector<std::uint64_t> committed_;
  rl::QTable scratch_;  ///< reopen-load target
};

// ---------------------------------------------------------------------------
// Serve tier (drift -> retrain -> recover) soak

struct ChaosServeParams {
  std::size_t users = 24;
  /// Users started on a stale (yesterday's-routine) table. Every one of
  /// them must recover by the end of the soak.
  std::size_t drifted = 6;
  std::size_t slots = 4;
  std::size_t chaos_rounds = 6;
  /// Clean rounds after the fault window — retrains that injected aborts
  /// deferred must land here and close every drift episode.
  std::size_t tail_rounds = 8;
  /// Sessions per user per round.
  std::size_t burst = 2;
  /// Drift threshold splitting the stale band (~4 prompts/session) from
  /// the calm band (~1), as in bench_retrain_recovery.
  double threshold = 2.5;
  std::size_t lane_width = 2;
  /// Policy snapshot directory (required; wiped). v3 delta format with
  /// flush_every=1 so the pre-publish/corruption seams fire on the hot
  /// path, not just at teardown.
  std::string dir;
};

struct ChaosServeResult {
  ServeReport report;  ///< final cumulative engine report
  std::uint64_t recovered_users = 0;    ///< drift flag cleared post-retrain
  std::uint64_t unrecovered_users = 0;  ///< still flagged at soak end
  /// Max sessions any drifted user took from flag to clear.
  std::uint64_t recovery_sessions_max = 0;
  /// In-memory committed store versions that ever regressed (must be 0).
  std::uint64_t committed_versions_lost = 0;
  /// Users whose reopened snapshot dir restored a different version than
  /// the live store had flushed.
  std::uint64_t reopen_mismatches = 0;
  std::uint64_t invariant_violations = 0;  ///< sum of the three above
  std::uint64_t aborted_retrains = 0;      ///< injected retrain aborts
  std::uint64_t crashed_stages = 0;        ///< serve-path flushes crashed
  double serve_seconds = 0.0;  ///< wall-clock, side-channel only
};

class ChaosServeSoak {
 public:
  ChaosServeSoak(ChaosServeParams params, faults::FaultPlan plan);
  ~ChaosServeSoak();

  ChaosServeResult run(exec::TrialRunner& runner);

  const faults::Injector& injector() const noexcept { return injector_; }
  const ServeEngine& engine() const noexcept { return *engine_; }

 private:
  ChaosServeParams params_;
  adl::AdlLibrary library_;
  std::vector<adl::StepId> routine_;
  std::unique_ptr<planning::RoutineLearner> donor_;
  std::unique_ptr<planning::RoutineLearner> stale_;
  std::unique_ptr<PolicyStore> store_;
  std::unique_ptr<ServeEngine> engine_;
  faults::Injector injector_;
  std::vector<bool> is_drifted_;
  std::vector<std::uint64_t> committed_;  ///< per-user version watermark
};

}  // namespace coreda::serve
