#include "serve/policy_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "planning/serialize.hpp"

namespace coreda::serve {

PolicyStore::PolicyStore(const planning::RoutineLearner& reference,
                         PolicyStoreParams params)
    : params_(std::move(params)),
      steps_(reference.state_codec().symbols()),
      tools_(reference.action_codec().tools()),
      reference_(reference.q()) {
  if (params_.flush_every == 0) {
    throw std::invalid_argument("PolicyStore: flush_every must be >= 1");
  }
  if (!params_.dir.empty()) {
    std::filesystem::create_directories(params_.dir);
  }
}

PolicyStore::~PolicyStore() {
  try {
    flush_all();
  } catch (...) {
    // Destructors must not throw; an unflushed tail snapshot only costs the
    // stages since the last flush, exactly like a power cut would.
  }
}

UserId PolicyStore::add_user(std::string name) {
  return add_user(std::move(name), reference_);
}

UserId PolicyStore::add_user(std::string name, const rl::QTable& initial) {
  if (initial.num_states() != reference_.num_states() ||
      initial.num_actions() != reference_.num_actions()) {
    throw std::invalid_argument("PolicyStore::add_user: table shape differs "
                                "from the reference policy");
  }
  entries_.push_back(Entry{std::move(name), initial});
  return static_cast<UserId>(entries_.size() - 1);
}

PolicyStore::Entry& PolicyStore::entry(UserId user) {
  if (user >= entries_.size()) {
    throw std::out_of_range("PolicyStore: unknown user id " +
                            std::to_string(user));
  }
  return entries_[user];
}

const PolicyStore::Entry& PolicyStore::entry(UserId user) const {
  return const_cast<PolicyStore*>(this)->entry(user);
}

const std::string& PolicyStore::user_name(UserId user) const {
  return entry(user).name;
}

const rl::QTable& PolicyStore::q(UserId user) const { return entry(user).q; }

std::uint64_t PolicyStore::version(UserId user) const {
  return entry(user).version;
}

void PolicyStore::stage(UserId user, const rl::QTable& q) {
  Entry& e = entry(user);
  if (q.num_states() != e.q.num_states() ||
      q.num_actions() != e.q.num_actions()) {
    throw std::invalid_argument("PolicyStore::stage: table shape mismatch");
  }
  e.q = q;  // same shape: the vector assign reuses capacity, no allocation
  ++e.version;
  ++e.staged;
  ++e.unflushed;
  if (!params_.dir.empty() && e.unflushed >= params_.flush_every) {
    persist_snapshot(user, e);
    ++e.disk;
    e.unflushed = 0;
  }
}

void PolicyStore::flush(UserId user) {
  Entry& e = entry(user);
  if (params_.dir.empty() || e.unflushed == 0) return;
  persist_snapshot(user, e);
  ++e.disk;
  e.unflushed = 0;
}

void PolicyStore::flush_all() {
  for (UserId u = 0; u < entries_.size(); ++u) flush(u);
}

void PolicyStore::persist_snapshot(UserId, Entry& e) {
  const std::string path = params_.dir + "/" + e.name + ".policy";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("PolicyStore: cannot write " + tmp);
    }
    planning::save_policy_v2(out, steps_, tools_, e.q, e.version);
    if (!out.flush()) {
      throw std::runtime_error("PolicyStore: short write to " + tmp);
    }
  }
  if (pre_publish_hook_) pre_publish_hook_(tmp);
  // Atomic publish: readers (and a crashed writer's next restart) only ever
  // see a complete snapshot or the previous one, never a torn file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("PolicyStore: cannot rename " + tmp + " to " +
                             path);
  }
}

std::optional<std::uint64_t> PolicyStore::read_snapshot(UserId user,
                                                        rl::QTable& staged) {
  if (params_.dir.empty()) return std::nullopt;
  const std::string path = params_.dir + "/" + entry(user).name + ".policy";
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return planning::load_policy_v2(in, steps_, tools_, staged);
}

std::optional<std::uint64_t> PolicyStore::restore(UserId user) {
  Entry& e = entry(user);
  rl::QTable staged(e.q.num_states(), e.q.num_actions());
  const std::optional<std::uint64_t> version = read_snapshot(user, staged);
  if (!version) return std::nullopt;
  e.q = staged;
  e.version = *version;
  e.unflushed = 0;
  return version;
}

std::uint64_t PolicyStore::staged_writes() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.staged;
  return total;
}

std::uint64_t PolicyStore::disk_writes() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.disk;
  return total;
}

std::string PolicyStore::path_for(UserId user) const {
  if (params_.dir.empty()) return {};
  return params_.dir + "/" + entry(user).name + ".policy";
}

}  // namespace coreda::serve
