#include "serve/policy_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "planning/serialize.hpp"

namespace coreda::serve {
namespace {

/// XOR-flips the byte `back_off` bytes before EOF (the same 0x5A flip the
/// every-offset fuzz sweep uses) — the corruption site's write primitive.
void corrupt_tail_byte(const std::string& path, std::size_t back_off) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f) throw std::runtime_error("faults: cannot reopen " + path);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  if (back_off == 0 || back_off > size) return;
  const auto pos = static_cast<std::streamoff>(size - back_off);
  f.seekg(pos);
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(pos);
  f.write(&byte, 1);
  f.flush();
}

}  // namespace

PolicyStore::PolicyStore(const planning::RoutineLearner& reference,
                         PolicyStoreParams params)
    : params_(std::move(params)),
      steps_(reference.state_codec().symbols()),
      tools_(reference.action_codec().tools()),
      reference_(reference.q()) {
  if (params_.flush_every == 0) {
    throw std::invalid_argument("PolicyStore: flush_every must be >= 1");
  }
  if (!params_.dir.empty()) {
    std::filesystem::create_directories(params_.dir);
  }
}

PolicyStore::~PolicyStore() {
  try {
    flush_all();
  } catch (...) {
    // Destructors must not throw; an unflushed tail snapshot only costs the
    // stages since the last flush, exactly like a power cut would.
  }
}

UserId PolicyStore::add_user(std::string name) {
  return add_user(std::move(name), reference_);
}

UserId PolicyStore::add_user(std::string name, const rl::QTable& initial) {
  if (initial.num_states() != reference_.num_states() ||
      initial.num_actions() != reference_.num_actions()) {
    throw std::invalid_argument("PolicyStore::add_user: table shape differs "
                                "from the reference policy");
  }
  entries_.push_back(Entry{std::move(name), initial});
  return static_cast<UserId>(entries_.size() - 1);
}

PolicyStore::Entry& PolicyStore::entry(UserId user) {
  if (user >= entries_.size()) {
    throw std::out_of_range("PolicyStore: unknown user id " +
                            std::to_string(user));
  }
  return entries_[user];
}

const PolicyStore::Entry& PolicyStore::entry(UserId user) const {
  return const_cast<PolicyStore*>(this)->entry(user);
}

const std::string& PolicyStore::user_name(UserId user) const {
  return entry(user).name;
}

const rl::QTable& PolicyStore::q(UserId user) const { return entry(user).q; }

std::uint64_t PolicyStore::version(UserId user) const {
  return entry(user).version;
}

void PolicyStore::stage(UserId user, const rl::QTable& q) {
  Entry& e = entry(user);
  if (q.num_states() != e.q.num_states() ||
      q.num_actions() != e.q.num_actions()) {
    throw std::invalid_argument("PolicyStore::stage: table shape mismatch");
  }
  e.q = q;  // same shape: the vector assign reuses capacity, no allocation
  ++e.version;
  ++e.staged;
  ++e.unflushed;
  if (!params_.dir.empty() && e.unflushed >= params_.flush_every) {
    persist_snapshot(user, e);
    ++e.disk;
    e.unflushed = 0;
  }
}

void PolicyStore::flush(UserId user) {
  Entry& e = entry(user);
  if (params_.dir.empty() || e.unflushed == 0) return;
  persist_snapshot(user, e);
  ++e.disk;
  e.unflushed = 0;
}

void PolicyStore::flush_all() {
  for (UserId u = 0; u < entries_.size(); ++u) flush(u);
}

void PolicyStore::persist_snapshot(UserId user, Entry& e) {
  const std::string path = params_.dir + "/" + e.name + ".policy";
  const std::string tmp = path + ".tmp";

  if (params_.format == SnapshotFormat::kV3Delta && e.flushed &&
      e.chain_deltas < params_.rebase_every) {
    // Delta append: only the changed rows since the committed chain state.
    const std::string record = planning::encode_policy_v3_delta(
        *e.flushed, e.q, e.version, e.flushed_version);
    // The crash seam fires before any byte lands, so a simulated crash here
    // leaves the committed file untouched (the append-mode analog of
    // "before the rename").
    pre_publish_site_.crash_point(user, e.version, path);
    try {
      std::ofstream out(path, std::ios::binary | std::ios::app);
      if (!out) {
        throw std::runtime_error("PolicyStore: cannot append to " + path);
      }
      out.write(record.data(), static_cast<std::streamsize>(record.size()));
      if (!out.flush()) {
        throw std::runtime_error("PolicyStore: short append to " + path);
      }
      // Corruption seam: a planned byte flip tears the delta we just
      // appended. Throwing makes the caller treat the flush as failed, and
      // the catch below drops the diff base so the next flush rebases with
      // a clean anchor — the chain loader skips the torn tail meanwhile.
      const std::size_t off =
          corrupt_site_.corrupt_offset(user, e.version, record.size());
      if (off != faults::Site::kNoCorruption) {
        corrupt_tail_byte(path, record.size() - off);
        throw faults::InjectedCrash(
            "policy_store.corrupt: torn delta appended to " + path);
      }
    } catch (...) {
      // The file tail may now be torn. The chain loader recovers the valid
      // prefix on read; dropping the diff base forces the next flush to
      // rewrite a clean full anchor instead of appending after the tear.
      e.flushed.reset();
      e.chain_deltas = 0;
      throw;
    }
    ++e.chain_deltas;
    *e.flushed = e.q;
    e.flushed_version = e.version;
    e.flush_bytes += record.size();
    return;
  }

  // Full snapshot (v2 mode always; v3 anchor/rebase), atomically published.
  std::size_t bytes = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("PolicyStore: cannot write " + tmp);
    }
    bytes = params_.format == SnapshotFormat::kV3Delta
                ? planning::save_policy_v3_full(out, steps_, tools_, e.q,
                                                e.version)
                : planning::save_policy_v2(out, steps_, tools_, e.q,
                                           e.version);
    if (!out.flush()) {
      throw std::runtime_error("PolicyStore: short write to " + tmp);
    }
  }
  pre_publish_site_.crash_point(user, e.version, tmp);
  // Corruption seam, full-snapshot flavor: flip a byte in the still-
  // unpublished temp file and abandon it — the committed snapshot stays
  // whole and the garbage temp is never read (proven by the crash tests).
  const std::size_t corrupt_at =
      corrupt_site_.corrupt_offset(user, e.version, bytes);
  if (corrupt_at != faults::Site::kNoCorruption) {
    corrupt_tail_byte(tmp, bytes - corrupt_at);
    throw faults::InjectedCrash("policy_store.corrupt: torn temp snapshot " +
                                tmp);
  }
  // Atomic publish: readers (and a crashed writer's next restart) only ever
  // see a complete snapshot or the previous one, never a torn file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("PolicyStore: cannot rename " + tmp + " to " +
                             path);
  }
  e.flush_bytes += bytes;
  if (params_.format == SnapshotFormat::kV3Delta) {
    e.chain_deltas = 0;
    if (e.flushed) {
      *e.flushed = e.q;
    } else {
      e.flushed = std::make_unique<rl::QTable>(e.q);
    }
    e.flushed_version = e.version;
  }
}

std::optional<std::uint64_t> PolicyStore::read_snapshot(UserId user,
                                                        rl::QTable& staged) {
  if (params_.dir.empty()) return std::nullopt;
  const std::string path = params_.dir + "/" + entry(user).name + ".policy";
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // Sniff the committed format rather than assuming the configured one:
  // a v3 store restores v2 files transparently (and rebases them to v3 on
  // the next flush), and vice versa — which is all `policy migrate` needs.
  switch (planning::detect_policy_format(in)) {
    case planning::PolicyFormat::kBinaryV2:
      return planning::load_policy_v2(in, steps_, tools_, staged);
    case planning::PolicyFormat::kBinaryV3:
      return planning::load_policy_v3(in, steps_, tools_, staged).version;
    default:
      throw std::runtime_error("PolicyStore: unrecognized snapshot format in " +
                               path);
  }
}

std::optional<std::uint64_t> PolicyStore::restore(UserId user) {
  Entry& e = entry(user);
  rl::QTable staged(e.q.num_states(), e.q.num_actions());
  const std::optional<std::uint64_t> version = read_snapshot(user, staged);
  if (!version) return std::nullopt;
  e.q = staged;
  e.version = *version;
  e.unflushed = 0;
  // In v3 mode the chain may have lost a torn tail (or the file may be v2):
  // drop the diff base so the next flush rewrites a clean full anchor
  // instead of appending to an uncertain chain.
  e.flushed.reset();
  e.chain_deltas = 0;
  return version;
}

std::uint64_t PolicyStore::staged_writes() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.staged;
  return total;
}

std::uint64_t PolicyStore::disk_writes() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.disk;
  return total;
}

std::uint64_t PolicyStore::flush_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& e : entries_) total += e.flush_bytes;
  return total;
}

std::string PolicyStore::path_for(UserId user) const {
  if (params_.dir.empty()) return {};
  return params_.dir + "/" + entry(user).name + ".policy";
}

}  // namespace coreda::serve
