#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/policy_store.hpp"

namespace coreda::serve {

// ---------------------------------------------------------------------------
// "coreda-policy store v1" — the fleet tier's memory-mapped segmented store.
//
// One directory holds the whole fleet's policies:
//
//   store.meta            schema: vocabularies + table shape (atomic
//                         temp+rename publish, FNV-1a 64 trailer)
//   seg-w<writer>-<seq>.seg   fixed-size mmap'd segments of packed records
//
// Segment layout (all integers little-endian u64, doubles as LE IEEE-754
// bit patterns):
//
//   header   40 bytes   magic "CRDASEG1", writer, seq, record_bytes,
//                       capacity (record slots)
//   records  capacity x record_bytes, fixed stride
//
// Record layout (record_bytes = 8 * (4 + n_states * n_actions) + 8):
//
//   rec_magic  u64   "CRDAREC1" — written LAST: the atomic publish
//   user       u64
//   version    u64
//   q_count    u64   n_states * n_actions
//   q          q_count x f64, row-major
//   checksum   u64   FNV-1a 64 over bytes [8, record_bytes - 8)
//
// Appends never rewrite a published record: a new version is a new record,
// the in-memory user -> (segment, offset, version) index flips to it, and
// the superseded record becomes dead weight until compaction rewrites the
// writer's live records into fresh segments and unlinks the empties. The
// crash story mirrors PolicyStore's temp+rename: the record body and
// checksum land first, the magic word last, so a crash in between leaves a
// slot whose magic is still zero — the scan-on-open treats it as the tail
// and the next append simply overwrites it. A bit flip anywhere in a
// published record fails the checksum on scan and on load, and the index
// falls back to the newest *valid* record for that user.
//
// Writer partitioning: user `u` belongs to writer `u % writers`, and each
// writer owns its own segment chain and tail. The ServeEngine/FleetEngine
// map writers 1:1 onto slot/shard threads, so concurrent drains append to
// disjoint segments and touch disjoint index entries — no locks on the hot
// path. The only cross-writer traffic is the relaxed per-segment `live`
// counter (a record superseded by another writer after a writers-count
// change decrements a foreign segment).
// ---------------------------------------------------------------------------

/// The 8 magic bytes opening store.meta / every segment / every record.
inline constexpr char kStoreMetaMagic[8] = {'C', 'R', 'D', 'A',
                                            'S', 'T', 'R', '1'};
inline constexpr char kSegmentMagic[8] = {'C', 'R', 'D', 'A',
                                          'S', 'E', 'G', '1'};
inline constexpr char kRecordMagic[8] = {'C', 'R', 'D', 'A',
                                         'R', 'E', 'C', '1'};

struct SegmentStoreParams {
  /// Store directory (required). Created when missing; an existing store
  /// is validated against the constructor's schema and its index rebuilt
  /// by scanning every segment.
  std::string dir;
  /// Target segment file size. The record capacity is whatever fits after
  /// the header (at least one record, so a table bigger than the target
  /// still stores).
  std::size_t segment_bytes = std::size_t{1} << 20;
  /// Writer lanes: user `u` appends via writer `u % writers`. Size this to
  /// the number of threads appending concurrently (pool slots / fleet
  /// shards). Determinism note: the records a store holds are independent
  /// of `writers`; only their distribution across segment files changes.
  std::size_t writers = 1;
  /// Compact a writer's chain when dead records exceed this fraction of
  /// its records (and the chain has at least compact_min_records).
  double compact_dead_ratio = 0.5;
  std::size_t compact_min_records = 64;
};

/// The raw record store: append / load / scan / compact. Knows nothing of
/// PolicyStore entries — SegmentPolicyStore below adapts it to the serving
/// tier's staging protocol, and FleetEngine drives it directly (at fleet
/// scale there is no resident per-user table to adapt).
class SegmentStore {
 public:
  /// Opens (or creates) the store at params.dir with the given schema.
  /// Throws std::runtime_error when an existing store.meta disagrees with
  /// the schema, std::invalid_argument on degenerate params.
  SegmentStore(std::span<const adl::StepId> steps,
               std::span<const adl::ToolId> tools, std::size_t num_states,
               std::size_t num_actions, SegmentStoreParams params);
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Pre-sizes the user index (setup phase only — concurrent appends must
  /// never grow it). Appending for a user id >= the reserved count throws.
  void reserve_users(std::uint64_t users);

  /// Durably records (user, version, q). Steady-state allocation-free: the
  /// record lands straight in the current tail segment's mapping; only a
  /// segment roll or compaction allocates. Throws std::runtime_error on a
  /// shape mismatch or I/O failure. Safe to call concurrently for users of
  /// *different* writers (`user % writers()`).
  void append(std::uint64_t user, const rl::QTable& q, std::uint64_t version);

  /// Version of the newest valid record for `user`, nullopt when none.
  std::optional<std::uint64_t> latest_version(std::uint64_t user) const;

  /// Loads the newest record for `user` into `q` (must match the schema
  /// shape). Returns its version, or nullopt when the store holds nothing
  /// for this user. Throws std::runtime_error when the indexed record
  /// fails validation (bit rot after the open-time scan); `q` is written
  /// only after full validation. Allocation-free.
  std::optional<std::uint64_t> load(std::uint64_t user, rl::QTable& q) const;

  std::size_t writers() const noexcept { return params_.writers; }
  std::size_t num_segments() const noexcept;
  /// Records published and still current / superseded-or-invalid.
  std::uint64_t live_records() const noexcept;
  std::uint64_t dead_records() const noexcept;
  std::uint64_t appends() const noexcept {
    return appends_.load(std::memory_order_relaxed);
  }
  std::uint64_t compactions() const noexcept { return compactions_; }
  const SegmentStoreParams& params() const noexcept { return params_; }
  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_actions() const noexcept { return num_actions_; }

  /// Crash seam, mirroring PolicyStore: called with the segment path after
  /// the record body + checksum are written but before the magic publishes
  /// the record. A throwing hook aborts the append — the tail does not
  /// advance, the index keeps the previous version, and the half-written
  /// slot is overwritten by the next append (or ignored by the next scan).
  void set_pre_publish_hook(std::function<void(const std::string&)> hook) {
    pre_publish_hook_ = std::move(hook);
  }

  /// Offline summary of a store directory for operator tooling (`coreda
  /// policy inspect`). Opens read-only; never repairs anything.
  struct Info {
    std::size_t num_steps = 0;
    std::size_t num_tools = 0;
    std::size_t num_states = 0;
    std::size_t num_actions = 0;
    std::size_t segments = 0;
    std::uint64_t records = 0;        ///< published slots scanned
    std::uint64_t corrupt_records = 0;  ///< failed magic/checksum validation
    std::uint64_t users = 0;          ///< distinct users with a valid record
    std::uint64_t live_records = 0;   ///< == users (newest per user)
    std::uint64_t max_version = 0;
    bool meta_ok = false;
  };
  static Info inspect(const std::string& dir);
  /// Whether `dir` looks like a segment store (has a store.meta).
  static bool is_store_dir(const std::string& dir);

 private:
  struct Segment;
  struct Writer;
  struct IndexEntry {
    Segment* seg = nullptr;
    std::uint64_t offset = 0;  ///< record start, bytes from segment base
    std::uint64_t version = 0;
  };

  void write_meta() const;
  void validate_meta() const;
  void open_existing_segments();
  Segment* new_segment(Writer& w);
  void scan_segment(Segment& seg);
  void publish_index(std::uint64_t user, Segment* seg, std::uint64_t offset,
                     std::uint64_t version);
  void maybe_compact(Writer& w);
  void compact_writer(Writer& w);

  SegmentStoreParams params_;
  std::vector<adl::StepId> steps_;
  std::vector<adl::ToolId> tools_;
  std::size_t num_states_ = 0;
  std::size_t num_actions_ = 0;
  std::size_t record_bytes_ = 0;
  std::size_t capacity_per_segment_ = 0;
  std::vector<std::unique_ptr<Writer>> writers_;
  /// Segments found on open whose writer id exceeds params.writers (the
  /// store was reopened with fewer lanes). Read-only until compaction of
  /// the owning users' new writers drains them to zero live records — they
  /// are never appended to.
  std::vector<std::unique_ptr<Segment>> retired_;
  std::vector<IndexEntry> index_;
  /// Atomic: incremented by concurrent shard writers (everything else an
  /// append touches is partitioned per writer or per user, but this
  /// counter is store-wide).
  std::atomic<std::uint64_t> appends_{0};
  std::uint64_t compactions_ = 0;
  std::function<void(const std::string&)> pre_publish_hook_;
};

struct SegmentPolicyStoreParams {
  std::string dir;  ///< required: the segment store directory
  std::size_t flush_every = 8;
  std::size_t segment_bytes = std::size_t{1} << 20;
  std::size_t writers = 1;
  double compact_dead_ratio = 0.5;
  std::size_t compact_min_records = 64;
};

/// PolicyStore backed by a SegmentStore: same staging / versioning / wear
/// batching / crash semantics, but flushes append mmap records instead of
/// writing one file per user. Drop-in for ServeEngine and RetrainScheduler.
class SegmentPolicyStore final : public PolicyStore {
 public:
  SegmentPolicyStore(const planning::RoutineLearner& reference,
                     SegmentPolicyStoreParams params);
  /// Flushes dirty entries into the segment store (best effort) before the
  /// base destructor runs with its virtual dispatch gone.
  ~SegmentPolicyStore() override;

  UserId add_user(std::string name) override;
  UserId add_user(std::string name, const rl::QTable& initial) override;

  /// Imports every `<name>.policy` v2 snapshot in `from_dir` whose stem
  /// matches a registered user: the entry adopts the snapshot's table and
  /// version and is flushed into the segment store immediately. Returns
  /// the number of users imported. Throws std::runtime_error on a corrupt
  /// or mismatched snapshot (the migration CLI wants loud failures, not
  /// silently dropped users).
  std::size_t import_v2_dir(const std::string& from_dir);

  const SegmentStore& segments() const noexcept { return seg_; }

  /// The segment store shares segment files across users: path_for returns
  /// the store directory.
  std::string path_for(UserId user) const override;
  void set_pre_publish_hook(
      std::function<void(const std::string&)> hook) override {
    seg_.set_pre_publish_hook(std::move(hook));
  }

 protected:
  void persist_snapshot(UserId user, Entry& e) override;
  std::optional<std::uint64_t> read_snapshot(UserId user,
                                             rl::QTable& staged) override;

 private:
  SegmentStore seg_;
};

}  // namespace coreda::serve
