#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "serve/policy_store.hpp"
#include "serve/user_index.hpp"

namespace coreda::serve {

// ---------------------------------------------------------------------------
// "coreda-policy store" — the fleet tier's memory-mapped segmented store.
//
// One directory holds the whole fleet's policies:
//
//   store.meta            schema: vocabularies + table shape (atomic
//                         temp+rename publish, FNV-1a 64 trailer)
//   seg-w<writer>-<seq>.seg   mmap'd append-only segments
//
// Segment format v2 ("CRDASEG2", all integers little-endian u64, doubles as
// LE IEEE-754 bit patterns) — variable-stride records, 8-byte aligned:
//
//   header   40 bytes  magic "CRDASEG2", writer, seq, file_bytes,
//                      records (advisory valid-record count, updated in
//                      place after each publish so a reopen can pre-size
//                      the user index before scanning)
//
// Every record starts with the same 32-byte prefix:
//
//   rec_magic  u64  "CRDAREC2" (anchor) / "CRDADEL2" (delta) — written
//                   LAST: the atomic publish
//   len        u64  total record bytes (multiple of 8)
//   user       u64
//   version    u64
//
// Anchor — a full table (len = 8 * (6 + q_count)):
//
//   q_count    u64  n_states * n_actions
//   q          q_count x f64, row-major
//   checksum   u64  FNV-1a 64 over bytes [8, len - 8)
//
// Delta — the v3 changed-row encoding carried into the segment format
// (len = 8 * (8 + n_rows * (1 + n_actions))):
//
//   parent_version u64  version the delta applies on top of
//   parent_off     u64  byte offset of the parent record in THIS segment
//   n_rows         u64  changed Q rows
//   rows           n_rows x (u64 row_index + n_actions x f64)
//   checksum       u64  FNV-1a 64 over bytes [8, len - 8)
//
// A user's records form a chain: each delta back-points to that user's
// previous record via parent_off. Chains never span segments — the first
// record a user writes into a segment is always an anchor — so recovery,
// compaction and the back-pointer stay segment-local. The writer rebases
// (writes a fresh anchor) every `rebase_every` records per user, bounding
// chain-replay cost and tail-corruption blast radius, and compaction
// rewrites every live user as a fresh anchor (the v3 "rebase on compaction").
//
// Crash story: body + checksum land first, the magic last, so a crashed
// append leaves a tail whose magic is still zero. The scan-on-open stops at
// the first invalid record — the longest valid prefix, exactly the durable
// state before the crash — and the next append overwrites the torn tail.
// (Variable strides make the v1 skip-and-continue unsound: a record after
// a corrupt one cannot be located, and a delta after a corrupt parent
// cannot be applied. Prefix semantics are what the v3 file chains already
// promise.) Legacy "CRDASEG1" fixed-stride segments remain fully readable
// — a v1 store opens in place; new appends land in v2 segments.
//
// Writer partitioning: user `u` belongs to writer `u % writers`; each
// writer owns its segment chain, its tail, and its own flat open-addressed
// UserIndex (one slab, ~9 bytes/user — see user_index.hpp for why the
// index must be per-lane). Concurrent shard drains therefore append to
// disjoint segments and probe disjoint slabs — no locks on the hot path.
// The only cross-writer traffic is the relaxed per-segment live/reachable
// counters (a record superseded by another writer after a writers-count
// change decrements a foreign segment).
// ---------------------------------------------------------------------------

/// The 8 magic bytes opening store.meta / segments / records.
inline constexpr char kStoreMetaMagic[8] = {'C', 'R', 'D', 'A',
                                            'S', 'T', 'R', '1'};
inline constexpr char kSegmentMagic[8] = {'C', 'R', 'D', 'A',
                                          'S', 'E', 'G', '1'};
inline constexpr char kRecordMagic[8] = {'C', 'R', 'D', 'A',
                                         'R', 'E', 'C', '1'};
inline constexpr char kSegmentMagicV2[8] = {'C', 'R', 'D', 'A',
                                            'S', 'E', 'G', '2'};
inline constexpr char kAnchorMagic[8] = {'C', 'R', 'D', 'A',
                                         'R', 'E', 'C', '2'};
inline constexpr char kDeltaMagic[8] = {'C', 'R', 'D', 'A',
                                        'D', 'E', 'L', '2'};

struct SegmentStoreParams {
  /// Store directory (required). Created when missing; an existing store
  /// is validated against the constructor's schema and its index rebuilt
  /// by scanning every segment.
  std::string dir;
  /// Target segment file size. Capped at 8 MiB: the flat user index packs
  /// a record offset into 20 bits of offset/8. A table bigger than the
  /// target still stores (a segment always fits at least one anchor).
  std::size_t segment_bytes = std::size_t{1} << 20;
  /// Writer lanes: user `u` appends via writer `u % writers`. Size this to
  /// the number of threads appending concurrently (pool slots / fleet
  /// shards). Determinism note: the records a store holds are independent
  /// of `writers`; only their distribution across segment files changes.
  std::size_t writers = 1;
  /// Compact a writer's chain when unreachable records exceed this
  /// fraction of its records (and the chain has at least
  /// compact_min_records).
  double compact_dead_ratio = 0.5;
  std::size_t compact_min_records = 64;
  /// Maximum records per user chain (1 anchor + rebase_every-1 deltas)
  /// before the next append rebases to a fresh anchor. Clamped to [1, 63].
  /// 1 disables deltas entirely.
  std::size_t rebase_every = 16;
};

/// The raw record store: append / load / scan / compact. Knows nothing of
/// PolicyStore entries — SegmentPolicyStore below adapts it to the serving
/// tier's staging protocol, and FleetEngine drives it directly (at fleet
/// scale there is no resident per-user table to adapt).
class SegmentStore {
 public:
  /// Opens (or creates) the store at params.dir with the given schema.
  /// Throws std::runtime_error when an existing store.meta disagrees with
  /// the schema, std::invalid_argument on degenerate params.
  SegmentStore(std::span<const adl::StepId> steps,
               std::span<const adl::ToolId> tools, std::size_t num_states,
               std::size_t num_actions, SegmentStoreParams params);
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Pre-sizes every writer lane's user index (setup phase only —
  /// concurrent appends must never grow a slab). Appending for a user id
  /// >= the reserved count throws.
  void reserve_users(std::uint64_t users);

  /// Durably records (user, version, q). When the user's previous record
  /// lives in the current tail segment and its chain is short enough, this
  /// appends a changed-row delta; otherwise a full anchor. Steady-state
  /// allocation-free: the record lands straight in the tail mapping; only
  /// a segment roll or compaction allocates. Throws std::runtime_error on
  /// a shape mismatch or I/O failure. Safe to call concurrently for users
  /// of *different* writers (`user % writers()`).
  void append(std::uint64_t user, const rl::QTable& q, std::uint64_t version);

  /// Version of the newest valid record for `user`, nullopt when none.
  std::optional<std::uint64_t> latest_version(std::uint64_t user) const;

  /// Loads the newest table for `user` into `q` (must match the schema
  /// shape): validates the user's whole record chain (anchor + deltas),
  /// then applies it. Returns its version, or nullopt when the store holds
  /// nothing for this user. Throws std::runtime_error when any chain
  /// record fails validation (bit rot after the open-time scan); `q` is
  /// written only after the full chain validates. Allocation-free.
  std::optional<std::uint64_t> load(std::uint64_t user, rl::QTable& q) const;

  std::size_t writers() const noexcept { return params_.writers; }
  std::size_t num_segments() const noexcept;
  /// Records that are the newest for some user / superseded-or-invalid.
  /// Chain parents of a live record count as neither live nor dead until
  /// the chain is rebased (they are still reachable).
  std::uint64_t live_records() const noexcept;
  std::uint64_t dead_records() const noexcept;
  std::uint64_t appends() const noexcept {
    return appends_.load(std::memory_order_relaxed);
  }
  /// Bytes written by append() — anchors + deltas, excluding compaction
  /// rewrites. appended_bytes()/appends() is the per-retrain write traffic
  /// the fleet bench gates.
  std::uint64_t appended_bytes() const noexcept {
    return appended_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t anchor_records_written() const noexcept {
    return anchor_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t delta_records_written() const noexcept {
    return delta_records_.load(std::memory_order_relaxed);
  }
  /// Bytes one full anchor record takes — the denominator of the delta
  /// format's write savings.
  std::size_t anchor_record_bytes() const noexcept { return anchor_bytes_; }
  /// Total bytes across every writer lane's index slab (the resident
  /// index cost; divide by users for the gated index_bytes_per_user).
  std::size_t index_slab_bytes() const noexcept;
  /// Valid records seen by the open-time scan (cold-start work measure).
  std::uint64_t scanned_records() const noexcept { return scanned_records_; }
  std::uint64_t compactions() const noexcept {
    return compactions_.load(std::memory_order_relaxed);
  }
  const SegmentStoreParams& params() const noexcept { return params_; }
  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_actions() const noexcept { return num_actions_; }

  /// Every user with a record, ascending (offline tooling / migration).
  std::vector<std::uint64_t> user_ids() const;

  /// Crash seam, mirroring PolicyStore: evaluated with the segment path
  /// after the record body + checksum are written but before the magic
  /// publishes the record. A crash here — a throwing test hook or a planned
  /// faults::InjectedCrash — aborts the append: the tail does not advance,
  /// the index keeps the previous version, and the half-written bytes are
  /// overwritten by the next append (or ignored by the next scan).
  /// Compaction publishes through the same seam, so crash injection covers
  /// the rebase path too.
  faults::Site& pre_publish_site() noexcept { return pre_publish_site_; }

  /// Arms the store's fault sites (pre-publish crash + record-byte
  /// corruption) against `injector`'s plan. Setup-phase only.
  void attach_faults(faults::Injector& injector) {
    injector.attach(pre_publish_site_);
    injector.attach(corrupt_site_);
  }

  /// Deprecated: route crash hooks through pre_publish_site().set_hook().
  [[deprecated("use pre_publish_site().set_hook()")]] void
  set_pre_publish_hook(std::function<void(const std::string&)> hook) {
    pre_publish_site_.set_hook(std::move(hook));
  }

  /// Offline summary of a store directory for operator tooling (`coreda
  /// policy inspect`). Opens read-only; never repairs anything.
  struct SegmentInfo {
    std::uint64_t writer = 0;
    std::uint64_t seq = 0;
    std::uint64_t anchors = 0;  ///< valid anchor / full records
    std::uint64_t deltas = 0;   ///< valid delta records
    std::uint64_t live = 0;     ///< users whose newest record is here
    double mean_chain_length = 0.0;  ///< mean records per live chain here
    bool legacy = false;        ///< v1 fixed-stride segment
  };
  struct Info {
    std::size_t num_steps = 0;
    std::size_t num_tools = 0;
    std::size_t num_states = 0;
    std::size_t num_actions = 0;
    std::size_t segments = 0;
    std::uint64_t records = 0;          ///< valid records scanned
    std::uint64_t anchors = 0;          ///< ... of which full tables
    std::uint64_t deltas = 0;           ///< ... of which changed-row deltas
    std::uint64_t corrupt_records = 0;  ///< failed validation (v1 skip or
                                        ///< v2 prefix-stop remainder)
    std::uint64_t users = 0;            ///< distinct users with a valid record
    std::uint64_t live_records = 0;     ///< == users (newest per user)
    std::uint64_t max_version = 0;
    double mean_chain_length = 0.0;     ///< mean records per live chain
    bool meta_ok = false;
    std::vector<SegmentInfo> segment_details;
  };
  static Info inspect(const std::string& dir);
  /// Whether `dir` looks like a segment store (has a store.meta).
  static bool is_store_dir(const std::string& dir);

 private:
  struct Segment;
  struct Writer;

  void write_meta() const;
  void validate_meta() const;
  void open_existing_segments();
  Segment* new_segment(Writer& w);
  void scan_segment_v1(Segment& seg);
  void scan_segment_v2(Segment& seg);
  void publish_index(std::uint64_t user, Segment& seg, std::uint64_t offset,
                     std::uint64_t version);
  /// Appends one record (delta when profitable and allowed) and flips the
  /// index. Returns the bytes written.
  std::size_t write_record(Writer& w, std::uint64_t user, const rl::QTable& q,
                           std::uint64_t version, bool allow_delta);
  void maybe_compact(Writer& w);
  void compact_writer(Writer& w);
  /// Records in the chain ending at loc (1 for an anchor/legacy record);
  /// structural walk only. Returns rebase_every+1 on any anomaly so
  /// callers fall back to writing an anchor.
  std::size_t chain_depth(UserIndex::Loc loc) const noexcept;
  std::uint64_t version_at(UserIndex::Loc loc) const noexcept;
  Writer& writer_for(std::uint64_t user) const noexcept {
    return *writers_[user % params_.writers];
  }

  SegmentStoreParams params_;
  std::vector<adl::StepId> steps_;
  std::vector<adl::ToolId> tools_;
  std::size_t num_states_ = 0;
  std::size_t num_actions_ = 0;
  std::size_t legacy_record_bytes_ = 0;  ///< v1 fixed stride
  std::size_t anchor_bytes_ = 0;         ///< v2 anchor record length
  std::vector<std::unique_ptr<Writer>> writers_;
  /// Segments found on open whose writer id exceeds params.writers (the
  /// store was reopened with fewer lanes). Read-only until compaction of
  /// the owning users' new writers drains them to zero reachable records —
  /// they are never appended to.
  std::vector<std::unique_ptr<Segment>> retired_;
  /// Store-global segment id -> segment, pre-sized to the id space so
  /// concurrent writer threads publish into disjoint slots without
  /// resizing. Ids come from next_seg_id_.
  std::vector<Segment*> seg_by_id_;
  std::atomic<std::uint32_t> next_seg_id_{0};
  std::uint64_t reserved_users_ = 0;
  std::uint64_t scanned_records_ = 0;
  // Atomics: incremented by concurrent shard writers (everything else an
  // append touches is partitioned per writer or per user, but these
  // counters are store-wide).
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> anchor_records_{0};
  std::atomic<std::uint64_t> delta_records_{0};
  std::atomic<std::uint64_t> compactions_{0};
  faults::Site pre_publish_site_{"segment_store.pre_publish"};
  faults::Site corrupt_site_{"segment_store.corrupt"};
};

struct SegmentPolicyStoreParams {
  std::string dir;  ///< required: the segment store directory
  std::size_t flush_every = 8;
  std::size_t segment_bytes = std::size_t{1} << 20;
  std::size_t writers = 1;
  double compact_dead_ratio = 0.5;
  std::size_t compact_min_records = 64;
  std::size_t rebase_every = 16;
};

/// PolicyStore backed by a SegmentStore: same staging / versioning / wear
/// batching / crash semantics, but flushes append mmap records instead of
/// writing one file per user. Drop-in for ServeEngine and RetrainScheduler.
class SegmentPolicyStore final : public PolicyStore {
 public:
  SegmentPolicyStore(const planning::RoutineLearner& reference,
                     SegmentPolicyStoreParams params);
  /// Flushes dirty entries into the segment store (best effort) before the
  /// base destructor runs with its virtual dispatch gone.
  ~SegmentPolicyStore() override;

  UserId add_user(std::string name) override;
  UserId add_user(std::string name, const rl::QTable& initial) override;

  /// Imports every `<name>.policy` v2 snapshot in `from_dir` whose stem
  /// matches a registered user: the entry adopts the snapshot's table and
  /// version and is flushed into the segment store immediately. Returns
  /// the number of users imported. Throws std::runtime_error on a corrupt
  /// or mismatched snapshot (the migration CLI wants loud failures, not
  /// silently dropped users).
  std::size_t import_v2_dir(const std::string& from_dir);

  const SegmentStore& segments() const noexcept { return seg_; }

  /// The segment store shares segment files across users: path_for returns
  /// the store directory.
  std::string path_for(UserId user) const override;

  /// Both backends expose one crash seam with one contract: the adapter's
  /// site IS the segment store's site (a hook armed through either handle
  /// fires on segment appends and compaction publishes alike).
  faults::Site& pre_publish_site() noexcept override {
    return seg_.pre_publish_site();
  }
  void attach_faults(faults::Injector& injector) override {
    seg_.attach_faults(injector);
  }

 protected:
  void persist_snapshot(UserId user, Entry& e) override;
  std::optional<std::uint64_t> read_snapshot(UserId user,
                                             rl::QTable& staged) override;

 private:
  SegmentStore seg_;
};

}  // namespace coreda::serve
