#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/system.hpp"
#include "exec/trial_runner.hpp"
#include "planning/lane_trainer.hpp"
#include "planning/learner.hpp"
#include "serve/policy_store.hpp"

namespace coreda::serve {

/// Everything that parameterizes the retraining scheduler.
struct RetrainParams {
  /// Master switch for the ServeEngine wiring. Off by default so the pure
  /// serving configuration (bench_serve_throughput, detection-only drains)
  /// keeps its byte-identical baseline; the closed-loop benches, the CLI
  /// `retrain` command and the retrain tests turn it on.
  bool enabled = false;
  /// Per-user retrain streams are seeded with trial_seed(seed, user), so a
  /// user's retrain outcome is a pure function of (their table, their
  /// transcripts, this seed) — never of which other users were flagged or
  /// how many workers drained the queue.
  std::uint64_t seed = 515151;
  /// Recent completed-session transcripts retained per user. Oldest is
  /// evicted first; the ring is provisioned at add_user so recording on the
  /// serve path never allocates.
  std::size_t ring_capacity = 8;
  /// Fixed per-transcript slot width, matching the session recorder's own
  /// provisioning bound; longer transcripts are truncated on record.
  std::size_t max_transcript_steps = core::kMaxSessionSteps;
  /// A retrain job is only enqueued once the user's ring holds at least
  /// this many transcripts — retraining on one bad day is how a planner
  /// learns the mistakes the paper warns about (§3.2).
  std::size_t min_transcripts = 4;
  /// Every retrain replays the whole ring this many times, oldest to
  /// newest. ring_capacity x replay_passes is the episode budget; A10
  /// (bench_drift_adaptation) puts useful re-convergence at a few dozen
  /// episodes from a converged stale table.
  std::size_t replay_passes = 8;
  /// Sessions a user must serve after a retrain before they may be
  /// retrained again — gives the refreshed policy time to move the EWMA
  /// (and fresh transcripts time to displace pre-retrain ones).
  std::size_t cooldown_sessions = 4;
  /// Users replayed in lockstep per lane batch during drain. 1 keeps the
  /// scalar path (one warm RoutineLearner per lane); >1 steps chunks of the
  /// lane queue through a SoA planning::LaneTrainer. Per-user results are
  /// byte-identical either way — retrain streams are seeded per user and
  /// lane slots never interact — so this is purely a throughput knob.
  std::size_t lane_width = 1;
};

/// Cumulative retraining counters, reported through the ServeReport.
struct RetrainCounters {
  std::uint64_t jobs = 0;      ///< retrain jobs executed
  std::uint64_t episodes = 0;  ///< transcript replays fed to lane learners
  std::uint64_t aborted = 0;   ///< jobs killed by "retrain.abort" before
                               ///< staging (retried after the cooldown)
  std::uint64_t crashed_stages = 0;  ///< staged write-backs whose disk flush
                                     ///< an injected crash aborted (memory
                                     ///< state kept; flush retried later)
};

/// The detect->retrain->redeploy queue behind ServeEngine::drain.
///
/// The engine records every completed session's StepId transcript into the
/// flagged user's provisioned ring (zero allocations at steady state) and,
/// at drain time, enqueues a retrain job for each drift-flagged user whose
/// ring is deep enough. Draining the queue fans one trial per lane across
/// the exec pool — the same static shard the SystemPool serves with (lane =
/// user % lanes), so a job set retrains byte-identically at any --jobs.
/// Each job re-arms its lane's warm RoutineLearner on the user's current
/// PolicyStore table (begin_retraining: import + reseed + ε restart),
/// replays the ring, and stages the refreshed table straight back — a new
/// version, wear-batched to disk like any serve-path write-back.
///
/// Thread-safety mirrors the serving tier: record() calls for users of
/// different lanes may run concurrently (disjoint rings); enqueue() and
/// drain() are drain-loop-serial. Lane learners are touched only by their
/// lane's trial.
class RetrainScheduler {
 public:
  /// `adl` and `store` must outlive the scheduler. `lanes` fixes the trial
  /// fan-out width (the engine passes its pool's slot count); one warm
  /// learner per lane is built up front with `learner_config` — the same
  /// config the serving systems plan with, so a retrained table prices
  /// prompts exactly like the tables it replaces.
  RetrainScheduler(const adl::Adl& adl, PolicyStore& store,
                   planning::LearnerConfig learner_config, std::size_t lanes,
                   RetrainParams params = {});

  /// Registers the next user (ids must track the engine's — append-only,
  /// setup phase) and provisions their transcript ring.
  void add_user();
  std::size_t num_users() const noexcept { return rings_.size(); }

  /// Records one completed session's step trace into the user's ring,
  /// evicting the oldest transcript when full. Steps beyond
  /// max_transcript_steps are dropped. Allocation-free.
  void record(UserId user, std::span<const adl::StepId> steps);

  /// Transcripts currently held for the user (<= ring_capacity).
  std::size_t transcripts(UserId user) const;
  /// The i-th retained transcript, oldest first.
  std::span<const adl::StepId> transcript(UserId user, std::size_t i) const;

  /// Whether the user's ring is deep enough to retrain from.
  bool has_enough_transcripts(UserId user) const {
    return transcripts(user) >= params_.min_transcripts;
  }

  /// Queues a retrain job. Jobs allocate at most here (lane queues are
  /// pre-reserved as users register, so the steady state is 0 here too);
  /// the retrain itself runs allocation-free on warm lanes.
  void enqueue(UserId user);
  std::size_t queued() const noexcept;

  /// Executes every queued job — one trial per lane, jobs within a lane in
  /// enqueue order — and returns the retrained users (lane-major, stable).
  /// The span aliases internal storage and is valid until the next drain.
  /// Deterministic at any runner job count.
  std::span<const UserId> drain(exec::TrialRunner& runner);

  /// Runs one retrain immediately on the calling thread (the serial core
  /// drain() fans out; also the hook the allocation tests probe). Returns
  /// the episodes replayed.
  std::size_t retrain_user(UserId user);

  /// Lockstep-retrains up to lane_width users of one lane through its
  /// LaneTrainer (the drain inner loop when lane_width > 1; public for the
  /// allocation tests). All users must belong to `lane`. Returns the
  /// episodes replayed.
  std::size_t retrain_batch(std::size_t lane, std::span<const UserId> users);

  /// Cumulative counters. By value: the abort/crash tallies live in
  /// atomics (lane trials bump them concurrently) and are folded in here.
  RetrainCounters counters() const noexcept {
    RetrainCounters c = counters_;
    c.aborted = aborted_.load(std::memory_order_relaxed);
    c.crashed_stages = crashed_stages_.load(std::memory_order_relaxed);
    return c;
  }
  const RetrainParams& params() const noexcept { return params_; }

  /// Arms the scheduler's "retrain.abort" seam: a planned abort kills a
  /// retrain job after replay but before the refreshed table is staged —
  /// the user keeps their stale policy and the drift flag, and the engine's
  /// cooldown retries the job on a later drain. Keyed per (user, attempt
  /// counter), so the schedule is queue-composition-independent.
  void attach_faults(faults::Injector& injector) {
    injector.attach(abort_site_);
  }
  std::size_t lanes() const noexcept { return lane_queues_.size(); }
  std::size_t lane_for(UserId user) const noexcept {
    return user % lane_queues_.size();
  }

 private:
  /// Fixed-slot transcript ring: capacity x max_transcript_steps StepIds in
  /// one flat buffer, lengths alongside. head_ is the next slot to write.
  struct Ring {
    std::vector<adl::StepId> data;
    std::vector<std::uint32_t> lengths;
    std::size_t head = 0;
    std::size_t count = 0;
  };

  struct Lane {
    std::unique_ptr<planning::RoutineLearner> learner;
    /// Lockstep replay engine, built only when lane_width > 1.
    std::unique_ptr<planning::LaneTrainer> trainer;
    /// Scatter target reused across jobs so staging stays allocation-free.
    std::unique_ptr<rl::QTable> scratch;
    std::vector<UserId> queue;
  };

  Ring& ring(UserId user);
  const Ring& ring(UserId user) const;

  /// Stages `q` back for `user` unless an injected abort or flush crash
  /// intervenes (counted; memory/disk retry semantics documented on the
  /// counters). Returns whether the table was staged.
  bool stage_retrained(UserId user, const rl::QTable& q);

  RetrainParams params_;
  PolicyStore* store_;
  std::vector<Ring> rings_;  // by UserId
  std::vector<Lane> lane_queues_;
  std::vector<UserId> retrained_;  ///< last drain's jobs, lane-major
  RetrainCounters counters_;
  faults::Site abort_site_{"retrain.abort"};
  std::vector<std::uint32_t> attempts_;  ///< per-user abort decision tick
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> crashed_stages_{0};
};

}  // namespace coreda::serve
