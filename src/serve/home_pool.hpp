#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/home.hpp"
#include "serve/bundle_store.hpp"

namespace coreda::serve {

struct HomePoolParams {
  /// Warm HomeDeployment instances; users shard statically to
  /// slot = user % slots.
  std::size_t slots = 4;
  /// Slot i's deployment is seeded with exec::trial_seed(seed, i).
  std::uint64_t seed = 42;
  /// Template for the donor and every slot deployment (seed overridden
  /// per slot).
  core::SystemConfig system{};
  /// Tracker parameters for every slot (the serving tier enables
  /// recognition-gated switching here; window 2 / patience 1 announces a
  /// switch on the second consecutive routine-ordered challenger tool).
  recognition::ActivityTracker::Params tracker{
      .switch_window = 2, .switch_threshold = 0.8, .switch_patience = 1};
  /// Donor pretraining: episodes per ADL, and the dataset seed.
  std::size_t pretrain_episodes = 120;
  std::uint64_t pretrain_seed = 7;
};

/// A fixed pool of warm whole-home deployments shared by many users — the
/// multi-ADL counterpart of SystemPool.
///
/// One donor HomeDeployment trains recognition and every ADL planner once;
/// each slot adopts the donor's recognizer and baseline policies at
/// construction. A session then is: checkout (restore the user's per-ADL
/// policies from their ONE bundle record, or fall back to the donor
/// baseline when they have none — or theirs is corrupt) -> run the scripted
/// session -> stage every ADL policy back into a fresh bundle record.
/// Because all of a user's ADLs live in one checksummed record, a user who
/// interleaves tea-making and tooth-brushing mid-session can never check
/// out a torn policy set.
///
/// Determinism: static sharding (slot = user % slots) plus per-slot seeds
/// make every outcome a pure function of (params, store contents, request
/// order). The ScenarioRunner runs one trial per slot on the exec pool, so
/// any --jobs value produces byte-identical results.
///
/// Thread-safety: calls for users of different slots may run concurrently
/// (disjoint deployments, disjoint store entries); calls within one slot
/// must be serialized — which per-slot trial sharding gives for free.
class HomePool {
 public:
  static constexpr UserId kNoUser = std::numeric_limits<UserId>::max();

  /// `library` and `store` must outlive the pool. The donor pretrains and
  /// every slot is built warm here — construction is the expensive phase.
  HomePool(const adl::AdlLibrary& library, BundleStore& store,
           HomePoolParams params = {});

  std::size_t slots() const noexcept { return slots_.size(); }
  std::size_t slot_for(UserId user) const noexcept {
    return user % slots_.size();
  }

  /// Serves one scripted multi-ADL session for `user` on its home slot:
  /// checkout -> run_script -> bundle stage-back.
  core::HomeScriptResult serve_script(UserId user,
                                      const core::SessionScript& script,
                                      const patient::PatientProfile& profile,
                                      sim::Duration max_duration);

  /// Sessions whose user was already resident on their slot (no restore).
  std::uint64_t hits() const noexcept;
  /// Sessions that restored the user's policies (bundle or donor).
  std::uint64_t swaps() const noexcept;
  std::uint64_t sessions() const noexcept;
  /// Checkouts whose bundle record failed validation (corrupt/truncated);
  /// each fell back to the donor baseline.
  std::uint64_t rejected_bundles() const noexcept;

  UserId resident(std::size_t slot) const;
  const core::HomeDeployment& deployment(std::size_t slot) const;
  const core::HomeDeployment& donor() const noexcept { return *donor_; }

 private:
  struct Slot {
    std::unique_ptr<core::HomeDeployment> home;
    UserId resident = kNoUser;
    std::uint64_t hits = 0;
    std::uint64_t swaps = 0;
    std::uint64_t sessions = 0;
    std::uint64_t rejected = 0;
  };

  void checkout(UserId user, Slot& slot);
  void stage_back(UserId user, Slot& slot);

  const adl::AdlLibrary* library_;
  BundleStore* store_;
  std::unique_ptr<core::HomeDeployment> donor_;
  std::vector<Slot> slots_;
};

}  // namespace coreda::serve
