#include "serve/segment_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "planning/serialize.hpp"
#include "util/wire.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;
namespace wire = util::wire;

constexpr std::size_t kSegmentHeaderBytes = 40;
constexpr char kMetaFileName[] = "store.meta";
constexpr std::uint64_t kMetaFormatVersion = 1;
/// Segment files never exceed 8 MiB: UserIndex packs the record offset into
/// 20 bits of offset/8.
constexpr std::size_t kMaxSegmentBytes = std::size_t{1} << 23;
/// Hard cap on a chain walk (rebase_every is clamped below this; the load
/// scratch array is sized to it).
constexpr std::size_t kMaxChainRecords = 63;
/// Smallest well-formed v2 record: an anchor for a 1-cell table (56 bytes);
/// an empty delta is 64.
constexpr std::uint64_t kMinRecordBytes = 56;

std::string segment_file_name(std::uint64_t writer, std::uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof name, "seg-w%llu-%06llu.seg",
                static_cast<unsigned long long>(writer),
                static_cast<unsigned long long>(seq));
  return name;
}

bool parse_segment_file_name(const std::string& name, std::uint64_t& writer,
                             std::uint64_t& seq) {
  unsigned long long w = 0, s = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "seg-w%llu-%llu.seg%n", &w, &s, &consumed) !=
          2 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  writer = w;
  seq = s;
  return true;
}

std::size_t delta_record_bytes(std::size_t n_rows, std::size_t num_actions) {
  return 8 * (8 + n_rows * (1 + num_actions));
}

}  // namespace

struct SegmentStore::Segment {
  std::string path;
  unsigned char* base = nullptr;
  std::size_t bytes = 0;
  std::uint64_t writer = 0;
  std::uint64_t seq = 0;
  std::uint32_t id = 0;      ///< store-global, packed into index entries
  bool legacy = false;       ///< v1 "CRDASEG1" fixed-stride segment
  std::size_t capacity = 0;  ///< v1 only: record slots
  std::size_t used = 0;      ///< bytes consumed incl. header (append target)
  std::uint64_t records = 0; ///< consumed records (v1: slots incl. torn)
  /// Records the index points at (newest per user).
  std::atomic<std::uint64_t> live{0};
  /// Records on some live chain: live records plus the delta ancestry
  /// under them. A segment with reachable == 0 holds nothing any load
  /// could ever need and can be unlinked.
  std::atomic<std::uint64_t> reachable{0};

  ~Segment() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

struct SegmentStore::Writer {
  std::uint64_t id = 0;
  std::vector<std::unique_ptr<Segment>> segs;
  Segment* tail = nullptr;  ///< v2 append target; null until the first roll
  std::uint64_t next_seq = 0;
  /// This lane's user -> location slab (see user_index.hpp for why the
  /// table is per-lane).
  UserIndex index;
  /// Reused across appends as the delta base and across compactions as the
  /// relocation shuttle — keeps both paths allocation-free.
  std::unique_ptr<rl::QTable> scratch;
};

SegmentStore::SegmentStore(std::span<const adl::StepId> steps,
                           std::span<const adl::ToolId> tools,
                           std::size_t num_states, std::size_t num_actions,
                           SegmentStoreParams params)
    : params_(std::move(params)),
      steps_(steps.begin(), steps.end()),
      tools_(tools.begin(), tools.end()),
      num_states_(num_states),
      num_actions_(num_actions) {
  if (params_.dir.empty()) {
    throw std::invalid_argument("SegmentStore: dir is required");
  }
  if (params_.writers == 0) {
    throw std::invalid_argument("SegmentStore: writers must be >= 1");
  }
  if (num_states_ == 0 || num_actions_ == 0) {
    throw std::invalid_argument("SegmentStore: degenerate table shape");
  }
  if (params_.segment_bytes > kMaxSegmentBytes) {
    throw std::invalid_argument(
        "SegmentStore: segment_bytes above 8 MiB — the flat index packs "
        "record offsets into 20 bits of offset/8");
  }
  params_.rebase_every =
      std::clamp<std::size_t>(params_.rebase_every, 1, kMaxChainRecords);
  legacy_record_bytes_ = 8 * (4 + num_states_ * num_actions_) + 8;
  anchor_bytes_ = 8 * (6 + num_states_ * num_actions_);
  if (kSegmentHeaderBytes + anchor_bytes_ > kMaxSegmentBytes) {
    throw std::invalid_argument(
        "SegmentStore: table too large for an 8 MiB segment");
  }
  for (std::size_t w = 0; w < params_.writers; ++w) {
    writers_.push_back(std::make_unique<Writer>());
    writers_.back()->id = w;
    writers_.back()->scratch =
        std::make_unique<rl::QTable>(num_states_, num_actions_);
  }
  seg_by_id_.assign(UserIndex::kMaxSegments, nullptr);
  fs::create_directories(params_.dir);
  if (fs::exists(params_.dir + "/" + kMetaFileName)) {
    validate_meta();
  } else {
    write_meta();
  }
  open_existing_segments();
}

SegmentStore::~SegmentStore() = default;

void SegmentStore::write_meta() const {
  std::vector<unsigned char> buf(8 + 6 * 8 +
                                 8 * (steps_.size() + tools_.size()) + 8);
  unsigned char* p = buf.data();
  std::memcpy(p, kStoreMetaMagic, 8);
  p += 8;
  wire::store_u64(p, kMetaFormatVersion);
  p += 8;
  wire::store_u64(p, steps_.size());
  p += 8;
  wire::store_u64(p, tools_.size());
  p += 8;
  wire::store_u64(p, num_states_);
  p += 8;
  wire::store_u64(p, num_actions_);
  p += 8;
  wire::store_u64(p, params_.segment_bytes);
  p += 8;
  for (const adl::StepId s : steps_) {
    wire::store_u64(p, static_cast<std::uint64_t>(s));
    p += 8;
  }
  for (const adl::ToolId t : tools_) {
    wire::store_u64(p, static_cast<std::uint64_t>(t));
    p += 8;
  }
  wire::store_u64(p, wire::fnv1a(buf.data(), buf.size() - 8));
  const std::string path = params_.dir + "/" + kMetaFileName;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out.flush()) {
      throw std::runtime_error("SegmentStore: cannot write " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("SegmentStore: cannot publish " + path);
  }
}

void SegmentStore::validate_meta() const {
  const std::string path = params_.dir + "/" + kMetaFileName;
  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> buf{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  const std::size_t expected =
      8 + 6 * 8 + 8 * (steps_.size() + tools_.size()) + 8;
  if (buf.size() < 8 + 6 * 8 + 8 ||
      std::memcmp(buf.data(), kStoreMetaMagic, 8) != 0) {
    throw std::runtime_error("SegmentStore: " + path +
                             " is not a coreda-policy store");
  }
  if (wire::load_u64(buf.data() + buf.size() - 8) !=
      wire::fnv1a(buf.data(), buf.size() - 8)) {
    throw std::runtime_error("SegmentStore: " + path + " checksum mismatch");
  }
  const unsigned char* p = buf.data() + 8;
  const std::uint64_t format = wire::load_u64(p);
  const std::uint64_t n_steps = wire::load_u64(p + 8);
  const std::uint64_t n_tools = wire::load_u64(p + 16);
  const std::uint64_t n_states = wire::load_u64(p + 24);
  const std::uint64_t n_actions = wire::load_u64(p + 32);
  if (format != kMetaFormatVersion || buf.size() != expected ||
      n_steps != steps_.size() || n_tools != tools_.size() ||
      n_states != num_states_ || n_actions != num_actions_) {
    throw std::runtime_error("SegmentStore: " + path +
                             " schema differs from this deployment");
  }
  const unsigned char* vocab = buf.data() + 8 + 6 * 8;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (wire::load_u64(vocab + 8 * i) !=
        static_cast<std::uint64_t>(steps_[i])) {
      throw std::runtime_error("SegmentStore: " + path +
                               " step vocabulary differs");
    }
  }
  vocab += 8 * steps_.size();
  for (std::size_t i = 0; i < tools_.size(); ++i) {
    if (wire::load_u64(vocab + 8 * i) !=
        static_cast<std::uint64_t>(tools_[i])) {
      throw std::runtime_error("SegmentStore: " + path +
                               " tool vocabulary differs");
    }
  }
}

void SegmentStore::open_existing_segments() {
  struct Found {
    std::uint64_t writer;
    std::uint64_t seq;
    std::string path;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& de : fs::directory_iterator(params_.dir)) {
    std::uint64_t w = 0, seq = 0;
    if (de.is_regular_file() &&
        parse_segment_file_name(de.path().filename().string(), w, seq)) {
      found.push_back({w, seq, de.path().string()});
    }
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.writer != b.writer ? a.writer < b.writer : a.seq < b.seq;
  });

  // Phase 1: map + validate every header, collecting the advisory record
  // counts. No records are touched yet.
  std::vector<std::unique_ptr<Segment>> opened;
  std::vector<std::uint64_t> advisory;
  for (const Found& f : found) {
    auto seg = std::make_unique<Segment>();
    seg->path = f.path;
    seg->writer = f.writer;
    seg->seq = f.seq;
    if (opened.size() >= UserIndex::kMaxSegments) {
      throw std::runtime_error("SegmentStore: segment id space exhausted");
    }
    seg->id = static_cast<std::uint32_t>(opened.size());
    const int fd = ::open(f.path.c_str(), O_RDWR);
    if (fd < 0) {
      throw std::runtime_error("SegmentStore: cannot open " + f.path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("SegmentStore: cannot stat " + f.path);
    }
    seg->bytes = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, seg->bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      throw std::runtime_error("SegmentStore: cannot mmap " + f.path);
    }
    seg->base = static_cast<unsigned char*>(map);
    if (seg->bytes < kSegmentHeaderBytes ||
        seg->bytes > kMaxSegmentBytes ||
        wire::load_u64(seg->base + 8) != f.writer ||
        wire::load_u64(seg->base + 16) != f.seq) {
      throw std::runtime_error("SegmentStore: " + f.path +
                               " header does not match this store's schema");
    }
    std::uint64_t count = 0;
    if (std::memcmp(seg->base, kSegmentMagicV2, 8) == 0) {
      const std::uint64_t file_bytes = wire::load_u64(seg->base + 24);
      if (file_bytes < kSegmentHeaderBytes || file_bytes > seg->bytes) {
        throw std::runtime_error("SegmentStore: " + f.path +
                                 " is shorter than its header claims");
      }
      // Advisory only — a torn in-place header update cannot corrupt the
      // store, just mis-size the pre-reserve. Clamp to what could fit.
      count = std::min<std::uint64_t>(wire::load_u64(seg->base + 32),
                                      seg->bytes / kMinRecordBytes);
    } else if (std::memcmp(seg->base, kSegmentMagic, 8) == 0) {
      if (wire::load_u64(seg->base + 24) != legacy_record_bytes_) {
        throw std::runtime_error("SegmentStore: " + f.path +
                                 " header does not match this store's schema");
      }
      seg->legacy = true;
      seg->capacity = wire::load_u64(seg->base + 32);
      if (kSegmentHeaderBytes + seg->capacity * legacy_record_bytes_ >
          seg->bytes) {
        throw std::runtime_error("SegmentStore: " + f.path +
                                 " is shorter than its header claims");
      }
      count = seg->capacity;
    } else {
      throw std::runtime_error("SegmentStore: " + f.path +
                               " header does not match this store's schema");
    }
    // Batch the cold-start scan: tell the kernel to read the whole file
    // ahead instead of faulting page by page as the scan walks it.
    ::posix_madvise(seg->base, seg->bytes, POSIX_MADV_WILLNEED);
    advisory.push_back(count);
    opened.push_back(std::move(seg));
  }

  // Phase 2: pre-reserve every lane's index slab so the scan below does
  // zero allocations per record. Lane w's users live in lane-w segments
  // while the writer count is stable; retired/foreign segments could feed
  // any lane, so their counts pad every lane (put_grow still covers a
  // writer-count change, at the cost of a rehash).
  std::vector<std::uint64_t> per_writer(params_.writers, 0);
  std::uint64_t foreign = 0;
  for (std::size_t i = 0; i < opened.size(); ++i) {
    if (opened[i]->writer < params_.writers) {
      per_writer[opened[i]->writer] += advisory[i];
    } else {
      foreign += advisory[i];
    }
  }
  for (std::size_t w = 0; w < params_.writers; ++w) {
    writers_[w]->index.reserve(per_writer[w] + foreign);
  }

  // Phase 3: scan in (writer, seq) order — publish order is what makes
  // "equal version seen later wins" pick compaction copies.
  for (auto& seg : opened) {
    seg_by_id_[seg->id] = seg.get();
    if (seg->legacy) {
      scan_segment_v1(*seg);
    } else {
      scan_segment_v2(*seg);
    }
    if (seg->writer < params_.writers) {
      Writer& w = *writers_[seg->writer];
      w.next_seq = std::max(w.next_seq, seg->seq + 1);
      // Ascending seq: the last segment wins the tail — unless it is a
      // legacy one, which is never appended to.
      w.tail = seg->legacy ? nullptr : seg.get();
      w.segs.push_back(std::move(seg));
    } else {
      retired_.push_back(std::move(seg));
    }
  }
  next_seg_id_.store(static_cast<std::uint32_t>(opened.size()),
                     std::memory_order_relaxed);
}

void SegmentStore::scan_segment_v1(Segment& seg) {
  const std::uint64_t qn = num_states_ * num_actions_;
  seg.records = seg.capacity;
  seg.used = kSegmentHeaderBytes + seg.capacity * legacy_record_bytes_;
  for (std::size_t slot = 0; slot < seg.capacity; ++slot) {
    const std::uint64_t offset =
        kSegmentHeaderBytes + slot * legacy_record_bytes_;
    const unsigned char* rec = seg.base + offset;
    if (wire::load_u64(rec) == 0) {
      // A never-published slot: the tail. (A crashed append leaves its body
      // here with the magic still zero.)
      seg.records = slot;
      seg.used = offset;
      break;
    }
    // Fixed stride makes skip-and-continue sound for legacy segments: a
    // torn or bit-rotted record is dead weight, later slots still parse.
    if (std::memcmp(rec, kRecordMagic, 8) != 0) continue;
    if (wire::load_u64(rec + 24) != qn) continue;
    if (wire::load_u64(rec + legacy_record_bytes_ - 8) !=
        wire::fnv1a(rec + 8, legacy_record_bytes_ - 16)) {
      continue;  // bit rot: the index falls back to an older valid record
    }
    ++scanned_records_;
    publish_index(wire::load_u64(rec + 8), seg, offset,
                  wire::load_u64(rec + 16));
  }
}

void SegmentStore::scan_segment_v2(Segment& seg) {
  const std::uint64_t qn = num_states_ * num_actions_;
  seg.used = kSegmentHeaderBytes;
  seg.records = 0;
  while (seg.used + kMinRecordBytes <= seg.bytes) {
    const unsigned char* rec = seg.base + seg.used;
    const std::uint64_t magic = wire::load_u64(rec);
    if (magic == 0) break;  // clean tail (or crashed, unpublished append)
    const bool anchor = std::memcmp(rec, kAnchorMagic, 8) == 0;
    const bool delta = !anchor && std::memcmp(rec, kDeltaMagic, 8) == 0;
    // Variable strides mean a record after an invalid one cannot be
    // located: the valid prefix ends here and the next append overwrites
    // whatever follows (the longest-valid-prefix recovery the v3 snapshot
    // chains already use).
    if (!anchor && !delta) break;
    const std::uint64_t len = wire::load_u64(rec + 8);
    if (len < kMinRecordBytes || len % 8 != 0 || seg.used + len > seg.bytes) {
      break;
    }
    if (wire::load_u64(rec + len - 8) != wire::fnv1a(rec + 8, len - 16)) {
      break;
    }
    if (anchor) {
      if (wire::load_u64(rec + 32) != qn || len != anchor_bytes_) break;
    } else {
      const std::uint64_t n_rows = wire::load_u64(rec + 48);
      if (n_rows > num_states_ ||
          len != delta_record_bytes(n_rows, num_actions_)) {
        break;
      }
      const std::uint64_t parent = wire::load_u64(rec + 40);
      if (parent < kSegmentHeaderBytes || parent % 8 != 0 ||
          parent >= seg.used) {
        break;
      }
    }
    ++scanned_records_;
    publish_index(wire::load_u64(rec + 16), seg, seg.used,
                  wire::load_u64(rec + 24));
    ++seg.records;
    seg.used += len;
  }
  // Resync the advisory header count (e.g. after recovering a torn tail)
  // so the next reopen pre-reserves exactly.
  wire::store_u64(seg.base + 32, seg.records);
}

std::uint64_t SegmentStore::version_at(UserIndex::Loc loc) const noexcept {
  const Segment* seg = seg_by_id_[loc.seg];
  const unsigned char* rec = seg->base + std::size_t{loc.off8} * 8;
  return wire::load_u64(rec + (seg->legacy ? 16 : 24));
}

std::size_t SegmentStore::chain_depth(UserIndex::Loc loc) const noexcept {
  const Segment* seg = seg_by_id_[loc.seg];
  if (seg == nullptr) return params_.rebase_every + 1;
  if (seg->legacy) return 1;
  std::size_t off = std::size_t{loc.off8} * 8;
  std::size_t depth = 1;
  while (true) {
    const unsigned char* rec = seg->base + off;
    if (std::memcmp(rec, kAnchorMagic, 8) == 0) return depth;
    if (std::memcmp(rec, kDeltaMagic, 8) != 0 || depth > kMaxChainRecords) {
      return params_.rebase_every + 1;  // anomaly: force a rebase
    }
    const std::uint64_t parent = wire::load_u64(rec + 40);
    if (parent < kSegmentHeaderBytes || parent % 8 != 0 || parent >= off) {
      return params_.rebase_every + 1;
    }
    off = static_cast<std::size_t>(parent);
    ++depth;
  }
}

void SegmentStore::publish_index(std::uint64_t user, Segment& seg,
                                 std::uint64_t offset, std::uint64_t version) {
  Writer& w = writer_for(user);
  const UserIndex::Loc loc{seg.id, static_cast<std::uint32_t>(offset / 8)};
  UserIndex::Loc old;
  bool extends = false;
  if (w.index.find(user, old)) {
    // Scan order is (writer, seq, offset) ascending, so an equal version
    // seen later is a compaction copy of the same table: later wins.
    if (version < version_at(old)) return;
    Segment* oseg = seg_by_id_[old.seg];
    oseg->live.fetch_sub(1, std::memory_order_relaxed);
    // A delta whose parent is the superseded record extends its chain —
    // the old records stay reachable underneath it.
    if (!seg.legacy && old.seg == seg.id) {
      const unsigned char* rec = seg.base + offset;
      extends = std::memcmp(rec, kDeltaMagic, 8) == 0 &&
                wire::load_u64(rec + 40) == std::uint64_t{old.off8} * 8;
    }
    if (!extends) {
      oseg->reachable.fetch_sub(chain_depth(old), std::memory_order_relaxed);
    }
  }
  w.index.put_grow(user, loc);
  seg.live.fetch_add(1, std::memory_order_relaxed);
  seg.reachable.fetch_add(extends ? 1 : chain_depth(loc),
                          std::memory_order_relaxed);
  if (user >= reserved_users_) reserved_users_ = user + 1;
}

void SegmentStore::reserve_users(std::uint64_t users) {
  if (users > UserIndex::kMaxUsers) {
    throw std::invalid_argument("SegmentStore: too many users for the index");
  }
  if (users > reserved_users_) reserved_users_ = users;
  for (std::size_t w = 0; w < params_.writers; ++w) {
    // Lane w owns users w, w+W, w+2W, ... below `users`.
    const std::uint64_t lane_users =
        users > w ? (users - w - 1) / params_.writers + 1 : 0;
    writers_[w]->index.reserve(lane_users);
  }
}

SegmentStore::Segment* SegmentStore::new_segment(Writer& w) {
  const std::uint32_t id =
      next_seg_id_.fetch_add(1, std::memory_order_relaxed);
  if (id >= UserIndex::kMaxSegments) {
    // Ids are never reused (16384 of them — far beyond any bench or soak;
    // a free-list from compaction-unlinked segments is the escape hatch if
    // a deployment ever gets close).
    throw std::runtime_error("SegmentStore: segment id space exhausted");
  }
  auto seg = std::make_unique<Segment>();
  seg->writer = w.id;
  seg->seq = w.next_seq++;
  seg->id = id;
  seg->bytes =
      std::max(params_.segment_bytes, kSegmentHeaderBytes + anchor_bytes_);
  seg->path = params_.dir + "/" + segment_file_name(w.id, seg->seq);
  const int fd = ::open(seg->path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("SegmentStore: cannot create " + seg->path);
  }
  if (::ftruncate(fd, static_cast<off_t>(seg->bytes)) != 0) {
    ::close(fd);
    throw std::runtime_error("SegmentStore: cannot size " + seg->path);
  }
  void* map =
      ::mmap(nullptr, seg->bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw std::runtime_error("SegmentStore: cannot mmap " + seg->path);
  }
  seg->base = static_cast<unsigned char*>(map);
  std::memcpy(seg->base, kSegmentMagicV2, 8);
  wire::store_u64(seg->base + 8, w.id);
  wire::store_u64(seg->base + 16, seg->seq);
  wire::store_u64(seg->base + 24, seg->bytes);
  wire::store_u64(seg->base + 32, 0);
  seg->used = kSegmentHeaderBytes;
  Segment* raw = seg.get();
  seg_by_id_[id] = raw;
  w.segs.push_back(std::move(seg));
  w.tail = raw;
  return raw;
}

std::size_t SegmentStore::write_record(Writer& w, std::uint64_t user,
                                       const rl::QTable& q,
                                       std::uint64_t version,
                                       bool allow_delta) {
  const std::uint64_t qn = num_states_ * num_actions_;
  bool use_delta = false;
  std::size_t n_rows = 0;
  std::uint64_t parent_version = 0;
  std::uint64_t parent_off = 0;
  UserIndex::Loc cur{};
  const bool have_cur = w.index.find(user, cur);
  if (allow_delta && params_.rebase_every > 1 && have_cur) {
    Segment* cseg = seg_by_id_[cur.seg];
    // Chains never span segments, so a delta is only possible when the
    // previous record already sits in the current tail.
    if (cseg != nullptr && cseg == w.tail && !cseg->legacy &&
        chain_depth(cur) < params_.rebase_every) {
      bool base_ok = true;
      try {
        load(user, *w.scratch);
      } catch (const std::runtime_error&) {
        base_ok = false;  // rot under the chain: rebase with an anchor
      }
      if (base_ok) {
        n_rows = planning::count_changed_rows(*w.scratch, q);
        if (delta_record_bytes(n_rows, num_actions_) < anchor_bytes_) {
          use_delta = true;
          parent_off = std::uint64_t{cur.off8} * 8;
          parent_version = wire::load_u64(cseg->base + parent_off + 24);
        }
      }
    }
  }
  std::size_t need =
      use_delta ? delta_record_bytes(n_rows, num_actions_) : anchor_bytes_;
  Segment* seg = w.tail;
  if (seg == nullptr || seg->legacy || seg->used + need > seg->bytes) {
    seg = new_segment(w);
    if (use_delta) {  // the parent stayed behind: rebase instead
      use_delta = false;
      need = anchor_bytes_;
    }
  }
  unsigned char* rec = seg->base + seg->used;
  wire::store_u64(rec, 0);  // never expose a stale magic while the body lands
  wire::store_u64(rec + 8, need);
  wire::store_u64(rec + 16, user);
  wire::store_u64(rec + 24, version);
  if (use_delta) {
    wire::store_u64(rec + 32, parent_version);
    wire::store_u64(rec + 40, parent_off);
    wire::store_u64(rec + 48, n_rows);
    planning::encode_changed_rows(*w.scratch, q, rec + 56);
  } else {
    wire::store_u64(rec + 32, qn);
    unsigned char* qp = rec + 40;
    for (std::size_t s = 0; s < num_states_; ++s) {
      for (const double v : q.row(static_cast<rl::StateId>(s))) {
        wire::store_f64(qp, v);
        qp += 8;
      }
    }
  }
  wire::store_u64(rec + need - 8, wire::fnv1a(rec + 8, need - 16));
  // Fault tick: a compaction rebase (the only !allow_delta caller) re-writes
  // a (user, version) pair whose original append already proved fault-free,
  // so it gets its own keying bit — otherwise planned crashes could never
  // hit the rebase publish.
  const std::uint64_t fault_tick =
      allow_delta ? version : (version | (1ULL << 63));
  pre_publish_site_.crash_point(user, fault_tick, seg->path);
  // Corruption seam, append-window flavor: flip a byte of the fully-written
  // but unpublished record and abort. The magic stays zero and the tail
  // does not advance, so the torn bytes are exactly the debris a power cut
  // leaves — overwritten by the next append, stopped at by the next scan.
  const std::size_t corrupt_at =
      corrupt_site_.corrupt_offset(user, fault_tick, need);
  if (corrupt_at != faults::Site::kNoCorruption) {
    rec[corrupt_at] ^= 0x5A;
    throw faults::InjectedCrash("segment_store.corrupt: torn record in " +
                                seg->path);
  }
  // Publish: only now can a scan (or a crashed restart) see the record.
  std::memcpy(rec, use_delta ? kDeltaMagic : kAnchorMagic, 8);
  const auto off8 = static_cast<std::uint32_t>(seg->used / 8);
  seg->used += need;
  ++seg->records;
  wire::store_u64(seg->base + 32, seg->records);  // advisory reopen count
  if (have_cur) {
    Segment* oseg = seg_by_id_[cur.seg];
    oseg->live.fetch_sub(1, std::memory_order_relaxed);
    // A delta keeps its whole ancestry reachable; an anchor orphans it.
    if (!use_delta) {
      oseg->reachable.fetch_sub(chain_depth(cur), std::memory_order_relaxed);
    }
  }
  w.index.put(user, UserIndex::Loc{seg->id, off8});
  seg->live.fetch_add(1, std::memory_order_relaxed);
  seg->reachable.fetch_add(1, std::memory_order_relaxed);
  (use_delta ? delta_records_ : anchor_records_)
      .fetch_add(1, std::memory_order_relaxed);
  return need;
}

void SegmentStore::append(std::uint64_t user, const rl::QTable& q,
                          std::uint64_t version) {
  if (q.num_states() != num_states_ || q.num_actions() != num_actions_) {
    throw std::runtime_error("SegmentStore::append: table shape mismatch");
  }
  if (user >= reserved_users_) {
    throw std::runtime_error(
        "SegmentStore::append: user id beyond reserve_users()");
  }
  Writer& w = writer_for(user);
  maybe_compact(w);
  const std::size_t bytes = write_record(w, user, q, version, true);
  appends_.fetch_add(1, std::memory_order_relaxed);
  appended_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

std::optional<std::uint64_t> SegmentStore::latest_version(
    std::uint64_t user) const {
  const Writer& w = writer_for(user);
  UserIndex::Loc loc;
  if (!w.index.find(user, loc)) return std::nullopt;
  return version_at(loc);
}

std::optional<std::uint64_t> SegmentStore::load(std::uint64_t user,
                                                rl::QTable& q) const {
  if (q.num_states() != num_states_ || q.num_actions() != num_actions_) {
    throw std::runtime_error("SegmentStore::load: table shape mismatch");
  }
  const Writer& w = writer_for(user);
  UserIndex::Loc loc;
  if (!w.index.find(user, loc)) return std::nullopt;
  const Segment* seg = seg_by_id_[loc.seg];
  const std::uint64_t qn = num_states_ * num_actions_;
  const unsigned char* base = seg->base;
  const std::size_t off0 = std::size_t{loc.off8} * 8;
  const auto fail = [user] {
    return std::runtime_error(
        "SegmentStore::load: record failed validation (bit rot since the "
        "open-time scan) for user " +
        std::to_string(user));
  };

  if (seg->legacy) {
    const unsigned char* rec = base + off0;
    if (std::memcmp(rec, kRecordMagic, 8) != 0 ||
        wire::load_u64(rec + 8) != user || wire::load_u64(rec + 24) != qn ||
        wire::load_u64(rec + legacy_record_bytes_ - 8) !=
            wire::fnv1a(rec + 8, legacy_record_bytes_ - 16)) {
      throw fail();
    }
    const unsigned char* qp = rec + 32;
    for (std::size_t s = 0; s < num_states_; ++s) {
      for (double& v : q.row_mut(static_cast<rl::StateId>(s))) {
        v = wire::load_f64(qp);
        qp += 8;
      }
    }
    return wire::load_u64(rec + 16);
  }

  // Validate the whole chain newest -> anchor before touching q: `q` is
  // written only after every record it depends on has checked out.
  std::array<const unsigned char*, kMaxChainRecords + 1> chain;
  std::size_t depth = 0;
  std::size_t off = off0;
  std::uint64_t expect_version = 0;
  bool expect = false;  // the child's parent_version pins this version
  while (true) {
    if (off + kMinRecordBytes > seg->bytes) throw fail();
    const unsigned char* rec = base + off;
    const bool anchor = std::memcmp(rec, kAnchorMagic, 8) == 0;
    const bool is_delta = !anchor && std::memcmp(rec, kDeltaMagic, 8) == 0;
    if (!anchor && !is_delta) throw fail();
    const std::uint64_t len = wire::load_u64(rec + 8);
    if (len < kMinRecordBytes || len % 8 != 0 || off + len > seg->bytes) {
      throw fail();
    }
    if (wire::load_u64(rec + 16) != user) throw fail();
    const std::uint64_t version = wire::load_u64(rec + 24);
    if (expect && version != expect_version) throw fail();
    if (wire::load_u64(rec + len - 8) != wire::fnv1a(rec + 8, len - 16)) {
      throw fail();
    }
    if (depth >= chain.size()) throw fail();
    if (anchor) {
      if (wire::load_u64(rec + 32) != qn || len != anchor_bytes_) throw fail();
      chain[depth++] = rec;
      break;
    }
    const std::uint64_t n_rows = wire::load_u64(rec + 48);
    if (n_rows > num_states_ ||
        len != delta_record_bytes(n_rows, num_actions_)) {
      throw fail();
    }
    const unsigned char* rp = rec + 56;
    for (std::uint64_t i = 0; i < n_rows; ++i) {
      if (wire::load_u64(rp) >= num_states_) throw fail();
      rp += 8 * (1 + num_actions_);
    }
    const std::uint64_t parent = wire::load_u64(rec + 40);
    if (parent < kSegmentHeaderBytes || parent % 8 != 0 || parent >= off) {
      throw fail();
    }
    chain[depth++] = rec;
    expect = true;
    expect_version = wire::load_u64(rec + 32);
    off = static_cast<std::size_t>(parent);
  }

  // Apply: the anchor, then every delta oldest -> newest.
  const unsigned char* qp = chain[depth - 1] + 40;
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (double& v : q.row_mut(static_cast<rl::StateId>(s))) {
      v = wire::load_f64(qp);
      qp += 8;
    }
  }
  for (std::size_t i = depth - 1; i-- > 0;) {
    const unsigned char* rec = chain[i];
    const std::uint64_t n_rows = wire::load_u64(rec + 48);
    const unsigned char* rp = rec + 56;
    for (std::uint64_t r = 0; r < n_rows; ++r) {
      const auto row = static_cast<rl::StateId>(wire::load_u64(rp));
      rp += 8;
      for (double& v : q.row_mut(row)) {
        v = wire::load_f64(rp);
        rp += 8;
      }
    }
  }
  return wire::load_u64(chain[0] + 24);
}

void SegmentStore::maybe_compact(Writer& w) {
  std::uint64_t consumed = 0, reachable = 0;
  for (const auto& s : w.segs) {
    consumed += s->records;
    reachable += s->reachable.load(std::memory_order_relaxed);
  }
  if (consumed < params_.compact_min_records) return;
  const std::uint64_t dead = consumed - std::min(reachable, consumed);
  if (static_cast<double>(dead) <=
      params_.compact_dead_ratio * static_cast<double>(consumed)) {
    return;
  }
  compact_writer(w);
}

void SegmentStore::compact_writer(Writer& w) {
  // Sorted users make the rebased record order — and therefore the fresh
  // segment bytes — independent of index layout history: the cross---jobs
  // byte-identity contract extends through compaction.
  std::vector<std::uint64_t> users;
  users.reserve(static_cast<std::size_t>(w.index.size()));
  w.index.for_each(
      [&users](std::uint64_t u, UserIndex::Loc) { users.push_back(u); });
  std::sort(users.begin(), users.end());
  std::vector<std::unique_ptr<Segment>> old = std::move(w.segs);
  w.segs.clear();
  w.tail = nullptr;
  try {
    for (const std::uint64_t u : users) {
      std::optional<std::uint64_t> v;
      try {
        v = load(u, *w.scratch);
      } catch (const std::runtime_error&) {
        // Bit rot since the open-time scan: leave this user's entry
        // pointing into its old segment (reachable > 0 keeps the file).
        continue;
      }
      if (!v) continue;
      // Anchor rebase: every live user restarts as a fresh full record.
      write_record(w, u, *w.scratch, *v, /*allow_delta=*/false);
    }
  } catch (...) {
    // Crash seam / I/O failure mid-rebase: stitch the old segments back in
    // front of whatever fresh ones were already written. Users already
    // rebased keep their new locations; everything else still points into
    // the old chain. The store stays fully consistent.
    std::vector<std::unique_ptr<Segment>> fresh = std::move(w.segs);
    w.segs = std::move(old);
    for (auto& s : fresh) w.segs.push_back(std::move(s));
    throw;
  }
  // Unlink segments nothing references anymore. A segment still holding
  // another writer's users (possible after a writers-count change)
  // survives, ahead of the fresh tail so appends keep landing at the end.
  std::vector<std::unique_ptr<Segment>> fresh = std::move(w.segs);
  w.segs.clear();
  for (auto& s : old) {
    if (s->reachable.load(std::memory_order_relaxed) == 0) {
      seg_by_id_[s->id] = nullptr;
      const std::string path = s->path;
      s.reset();  // munmap before unlink
      fs::remove(path);
    } else {
      w.segs.push_back(std::move(s));
    }
  }
  for (auto& s : fresh) w.segs.push_back(std::move(s));
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SegmentStore::num_segments() const noexcept {
  std::size_t n = retired_.size();
  for (const auto& w : writers_) n += w->segs.size();
  return n;
}

std::uint64_t SegmentStore::live_records() const noexcept {
  std::uint64_t live = 0;
  for (const auto& w : writers_) {
    for (const auto& s : w->segs) {
      live += s->live.load(std::memory_order_relaxed);
    }
  }
  for (const auto& s : retired_) {
    live += s->live.load(std::memory_order_relaxed);
  }
  return live;
}

std::uint64_t SegmentStore::dead_records() const noexcept {
  std::uint64_t consumed = 0, reachable = 0;
  for (const auto& w : writers_) {
    for (const auto& s : w->segs) {
      consumed += s->records;
      reachable += s->reachable.load(std::memory_order_relaxed);
    }
  }
  for (const auto& s : retired_) {
    consumed += s->records;
    reachable += s->reachable.load(std::memory_order_relaxed);
  }
  return consumed - std::min(reachable, consumed);
}

std::size_t SegmentStore::index_slab_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& w : writers_) bytes += w->index.slab_bytes();
  return bytes;
}

std::vector<std::uint64_t> SegmentStore::user_ids() const {
  std::vector<std::uint64_t> users;
  for (const auto& w : writers_) {
    users.reserve(users.size() + static_cast<std::size_t>(w->index.size()));
    w->index.for_each(
        [&users](std::uint64_t u, UserIndex::Loc) { users.push_back(u); });
  }
  std::sort(users.begin(), users.end());
  return users;
}

bool SegmentStore::is_store_dir(const std::string& dir) {
  std::error_code ec;
  return fs::is_regular_file(dir + "/" + kMetaFileName, ec);
}

SegmentStore::Info SegmentStore::inspect(const std::string& dir) {
  Info info;
  std::ifstream meta_in(dir + "/" + kMetaFileName, std::ios::binary);
  std::vector<unsigned char> meta{std::istreambuf_iterator<char>(meta_in),
                                  std::istreambuf_iterator<char>()};
  if (meta.size() < 8 + 6 * 8 + 8 ||
      std::memcmp(meta.data(), kStoreMetaMagic, 8) != 0) {
    return info;
  }
  info.num_steps = wire::load_u64(meta.data() + 16);
  info.num_tools = wire::load_u64(meta.data() + 24);
  info.num_states = wire::load_u64(meta.data() + 32);
  info.num_actions = wire::load_u64(meta.data() + 40);
  info.meta_ok =
      meta.size() == 8 + 6 * 8 + 8 * (info.num_steps + info.num_tools) + 8 &&
      wire::load_u64(meta.data() + meta.size() - 8) ==
          wire::fnv1a(meta.data(), meta.size() - 8);
  if (!info.meta_ok) return info;

  const std::uint64_t qn = info.num_states * info.num_actions;
  const std::size_t legacy_bytes = 8 * (4 + qn) + 8;
  const std::size_t anchor_bytes = 8 * (6 + qn);
  struct FileKey {
    std::uint64_t writer;
    std::uint64_t seq;
    std::string path;
  };
  std::vector<FileKey> files;
  for (const fs::directory_entry& de : fs::directory_iterator(dir)) {
    std::uint64_t w = 0, seq = 0;
    if (de.is_regular_file() &&
        parse_segment_file_name(de.path().filename().string(), w, seq)) {
      files.push_back({w, seq, de.path().string()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const FileKey& a, const FileKey& b) {
              return a.writer != b.writer ? a.writer < b.writer
                                          : a.seq < b.seq;
            });

  struct Latest {
    std::size_t file = 0;
    std::uint64_t version = 0;
    std::uint32_t depth = 0;
  };
  std::map<std::uint64_t, Latest> latest;  // user -> newest record
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    SegmentInfo detail;
    detail.writer = files[fi].writer;
    detail.seq = files[fi].seq;
    ++info.segments;
    std::ifstream in(files[fi].path, std::ios::binary);
    std::vector<unsigned char> buf{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
    const auto publish = [&](std::uint64_t user, std::uint64_t version,
                             std::uint32_t depth) {
      auto [it, inserted] = latest.emplace(user, Latest{fi, version, depth});
      if (!inserted && version >= it->second.version) {
        it->second = Latest{fi, version, depth};
      }
      info.max_version = std::max(info.max_version, version);
    };
    if (buf.size() >= kSegmentHeaderBytes &&
        std::memcmp(buf.data(), kSegmentMagic, 8) == 0 &&
        wire::load_u64(buf.data() + 24) == legacy_bytes) {
      detail.legacy = true;
      const std::uint64_t capacity = wire::load_u64(buf.data() + 32);
      for (std::uint64_t slot = 0; slot < capacity; ++slot) {
        const std::size_t off = kSegmentHeaderBytes + slot * legacy_bytes;
        if (off + legacy_bytes > buf.size()) break;
        const unsigned char* rec = buf.data() + off;
        if (wire::load_u64(rec) == 0) break;  // tail
        if (std::memcmp(rec, kRecordMagic, 8) != 0 ||
            wire::load_u64(rec + 24) != qn ||
            wire::load_u64(rec + legacy_bytes - 8) !=
                wire::fnv1a(rec + 8, legacy_bytes - 16)) {
          ++info.corrupt_records;
          continue;
        }
        ++info.records;
        ++info.anchors;
        ++detail.anchors;
        publish(wire::load_u64(rec + 8), wire::load_u64(rec + 16), 1);
      }
    } else if (buf.size() >= kSegmentHeaderBytes &&
               std::memcmp(buf.data(), kSegmentMagicV2, 8) == 0) {
      // offset -> chain depth of the record starting there (chains are
      // segment-local, so one per-file map suffices).
      std::unordered_map<std::uint64_t, std::uint32_t> depth_at;
      std::size_t off = kSegmentHeaderBytes;
      while (off + kMinRecordBytes <= buf.size()) {
        const unsigned char* rec = buf.data() + off;
        if (wire::load_u64(rec) == 0) break;  // tail
        const bool anchor = std::memcmp(rec, kAnchorMagic, 8) == 0;
        const bool is_delta =
            !anchor && std::memcmp(rec, kDeltaMagic, 8) == 0;
        const std::uint64_t len =
            (anchor || is_delta) ? wire::load_u64(rec + 8) : 0;
        if ((!anchor && !is_delta) || len < kMinRecordBytes || len % 8 != 0 ||
            off + len > buf.size() ||
            wire::load_u64(rec + len - 8) !=
                wire::fnv1a(rec + 8, len - 16)) {
          ++info.corrupt_records;  // prefix ends: the rest is unreachable
          break;
        }
        std::uint32_t depth = 1;
        if (anchor) {
          if (wire::load_u64(rec + 32) != qn || len != anchor_bytes) {
            ++info.corrupt_records;
            break;
          }
          ++info.anchors;
          ++detail.anchors;
        } else {
          const std::uint64_t n_rows = wire::load_u64(rec + 48);
          const std::uint64_t parent = wire::load_u64(rec + 40);
          if (len != 8 * (8 + n_rows * (1 + info.num_actions)) ||
              parent < kSegmentHeaderBytes || parent >= off) {
            ++info.corrupt_records;
            break;
          }
          ++info.deltas;
          ++detail.deltas;
          const auto pit = depth_at.find(parent);
          depth = (pit != depth_at.end() ? pit->second : 0) + 1;
        }
        depth_at.emplace(off, depth);
        ++info.records;
        publish(wire::load_u64(rec + 16), wire::load_u64(rec + 24), depth);
        off += len;
      }
    } else {
      ++info.corrupt_records;
    }
    info.segment_details.push_back(detail);
  }
  info.users = latest.size();
  info.live_records = latest.size();
  std::vector<std::uint64_t> depth_sum(files.size(), 0);
  std::vector<std::uint64_t> live_count(files.size(), 0);
  std::uint64_t total_depth = 0;
  for (const auto& [user, l] : latest) {
    depth_sum[l.file] += l.depth;
    ++live_count[l.file];
    total_depth += l.depth;
  }
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    info.segment_details[fi].live = live_count[fi];
    info.segment_details[fi].mean_chain_length =
        live_count[fi] == 0 ? 0.0
                            : static_cast<double>(depth_sum[fi]) /
                                  static_cast<double>(live_count[fi]);
  }
  info.mean_chain_length =
      latest.empty() ? 0.0
                     : static_cast<double>(total_depth) /
                           static_cast<double>(latest.size());
  return info;
}

// ---------------------------------------------------------------------------
// SegmentPolicyStore
// ---------------------------------------------------------------------------

SegmentPolicyStore::SegmentPolicyStore(
    const planning::RoutineLearner& reference, SegmentPolicyStoreParams params)
    : PolicyStore(reference,
                  PolicyStoreParams{params.dir, params.flush_every}),
      seg_(steps(), tools(), reference.q().num_states(),
           reference.q().num_actions(),
           SegmentStoreParams{params.dir, params.segment_bytes, params.writers,
                              params.compact_dead_ratio,
                              params.compact_min_records,
                              params.rebase_every}) {}

SegmentPolicyStore::~SegmentPolicyStore() {
  try {
    flush_all();
  } catch (...) {
    // Same contract as the base destructor: an unflushed tail only costs
    // the stages since the last flush.
  }
}

UserId SegmentPolicyStore::add_user(std::string name) {
  const UserId u = PolicyStore::add_user(std::move(name));
  seg_.reserve_users(num_users());
  return u;
}

UserId SegmentPolicyStore::add_user(std::string name,
                                    const rl::QTable& initial) {
  const UserId u = PolicyStore::add_user(std::move(name), initial);
  seg_.reserve_users(num_users());
  return u;
}

std::string SegmentPolicyStore::path_for(UserId user) const {
  entry(user);  // same unknown-id validation as the base store
  return params().dir;
}

void SegmentPolicyStore::persist_snapshot(UserId user, Entry& e) {
  seg_.append(user, e.q, e.version);
}

std::optional<std::uint64_t> SegmentPolicyStore::read_snapshot(
    UserId user, rl::QTable& staged) {
  return seg_.load(user, staged);
}

std::size_t SegmentPolicyStore::import_v2_dir(const std::string& from_dir) {
  std::size_t imported = 0;
  for (UserId u = 0; u < num_users(); ++u) {
    const std::string path = from_dir + "/" + user_name(u) + ".policy";
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    Entry& e = entry(u);
    rl::QTable staged(e.q.num_states(), e.q.num_actions());
    const std::uint64_t version =
        planning::load_policy_v2(in, steps_, tools_, staged);
    e.q = staged;
    e.version = version;
    persist_snapshot(u, e);
    ++e.disk;
    e.unflushed = 0;
    ++imported;
  }
  return imported;
}

}  // namespace coreda::serve
