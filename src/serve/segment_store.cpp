#include "serve/segment_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>

#include "planning/serialize.hpp"

namespace coreda::serve {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::size_t kSegmentHeaderBytes = 40;
constexpr char kMetaFileName[] = "store.meta";
constexpr std::uint64_t kMetaFormatVersion = 1;

std::uint64_t fnv1a(const unsigned char* data, std::size_t n) {
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

void store_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void store_f64(unsigned char* p, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, 8);
  store_u64(p, bits);
}

double load_f64(const unsigned char* p) {
  const std::uint64_t bits = load_u64(p);
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

std::string segment_file_name(std::uint64_t writer, std::uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof name, "seg-w%llu-%06llu.seg",
                static_cast<unsigned long long>(writer),
                static_cast<unsigned long long>(seq));
  return name;
}

bool parse_segment_file_name(const std::string& name, std::uint64_t& writer,
                             std::uint64_t& seq) {
  unsigned long long w = 0, s = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "seg-w%llu-%llu.seg%n", &w, &s, &consumed) !=
          2 ||
      static_cast<std::size_t>(consumed) != name.size()) {
    return false;
  }
  writer = w;
  seq = s;
  return true;
}

}  // namespace

struct SegmentStore::Segment {
  std::string path;
  unsigned char* base = nullptr;
  std::size_t bytes = 0;
  std::uint64_t writer = 0;
  std::uint64_t seq = 0;
  std::size_t capacity = 0;  ///< record slots
  std::size_t consumed = 0;  ///< leading slots written (published or torn)
  std::atomic<std::uint64_t> live{0};  ///< records the index points at

  ~Segment() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

struct SegmentStore::Writer {
  std::uint64_t id = 0;
  std::vector<std::unique_ptr<Segment>> segs;
  Segment* tail = nullptr;  ///< append target; last element of segs
  std::uint64_t next_seq = 0;
};

SegmentStore::SegmentStore(std::span<const adl::StepId> steps,
                           std::span<const adl::ToolId> tools,
                           std::size_t num_states, std::size_t num_actions,
                           SegmentStoreParams params)
    : params_(std::move(params)),
      steps_(steps.begin(), steps.end()),
      tools_(tools.begin(), tools.end()),
      num_states_(num_states),
      num_actions_(num_actions) {
  if (params_.dir.empty()) {
    throw std::invalid_argument("SegmentStore: dir is required");
  }
  if (params_.writers == 0) {
    throw std::invalid_argument("SegmentStore: writers must be >= 1");
  }
  if (num_states_ == 0 || num_actions_ == 0) {
    throw std::invalid_argument("SegmentStore: degenerate table shape");
  }
  record_bytes_ = 8 * (4 + num_states_ * num_actions_) + 8;
  capacity_per_segment_ =
      params_.segment_bytes > kSegmentHeaderBytes
          ? (params_.segment_bytes - kSegmentHeaderBytes) / record_bytes_
          : 0;
  if (capacity_per_segment_ == 0) capacity_per_segment_ = 1;
  for (std::size_t w = 0; w < params_.writers; ++w) {
    writers_.push_back(std::make_unique<Writer>());
    writers_.back()->id = w;
  }
  fs::create_directories(params_.dir);
  if (fs::exists(params_.dir + "/" + kMetaFileName)) {
    validate_meta();
  } else {
    write_meta();
  }
  open_existing_segments();
}

SegmentStore::~SegmentStore() = default;

void SegmentStore::write_meta() const {
  std::vector<unsigned char> buf(8 + 6 * 8 +
                                 8 * (steps_.size() + tools_.size()) + 8);
  unsigned char* p = buf.data();
  std::memcpy(p, kStoreMetaMagic, 8);
  p += 8;
  store_u64(p, kMetaFormatVersion);
  p += 8;
  store_u64(p, steps_.size());
  p += 8;
  store_u64(p, tools_.size());
  p += 8;
  store_u64(p, num_states_);
  p += 8;
  store_u64(p, num_actions_);
  p += 8;
  store_u64(p, params_.segment_bytes);
  p += 8;
  for (const adl::StepId s : steps_) {
    store_u64(p, static_cast<std::uint64_t>(s));
    p += 8;
  }
  for (const adl::ToolId t : tools_) {
    store_u64(p, static_cast<std::uint64_t>(t));
    p += 8;
  }
  store_u64(p, fnv1a(buf.data(), buf.size() - 8));
  const std::string path = params_.dir + "/" + kMetaFileName;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out.flush()) {
      throw std::runtime_error("SegmentStore: cannot write " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("SegmentStore: cannot publish " + path);
  }
}

void SegmentStore::validate_meta() const {
  const std::string path = params_.dir + "/" + kMetaFileName;
  std::ifstream in(path, std::ios::binary);
  std::vector<unsigned char> buf{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  const std::size_t expected =
      8 + 6 * 8 + 8 * (steps_.size() + tools_.size()) + 8;
  if (buf.size() < 8 + 6 * 8 + 8 ||
      std::memcmp(buf.data(), kStoreMetaMagic, 8) != 0) {
    throw std::runtime_error("SegmentStore: " + path +
                             " is not a coreda-policy store");
  }
  if (load_u64(buf.data() + buf.size() - 8) !=
      fnv1a(buf.data(), buf.size() - 8)) {
    throw std::runtime_error("SegmentStore: " + path + " checksum mismatch");
  }
  const unsigned char* p = buf.data() + 8;
  const std::uint64_t format = load_u64(p);
  const std::uint64_t n_steps = load_u64(p + 8);
  const std::uint64_t n_tools = load_u64(p + 16);
  const std::uint64_t n_states = load_u64(p + 24);
  const std::uint64_t n_actions = load_u64(p + 32);
  if (format != kMetaFormatVersion || buf.size() != expected ||
      n_steps != steps_.size() || n_tools != tools_.size() ||
      n_states != num_states_ || n_actions != num_actions_) {
    throw std::runtime_error("SegmentStore: " + path +
                             " schema differs from this deployment");
  }
  const unsigned char* vocab = buf.data() + 8 + 6 * 8;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (load_u64(vocab + 8 * i) != static_cast<std::uint64_t>(steps_[i])) {
      throw std::runtime_error("SegmentStore: " + path +
                               " step vocabulary differs");
    }
  }
  vocab += 8 * steps_.size();
  for (std::size_t i = 0; i < tools_.size(); ++i) {
    if (load_u64(vocab + 8 * i) != static_cast<std::uint64_t>(tools_[i])) {
      throw std::runtime_error("SegmentStore: " + path +
                               " tool vocabulary differs");
    }
  }
}

void SegmentStore::open_existing_segments() {
  struct Found {
    std::uint64_t writer;
    std::uint64_t seq;
    std::string path;
  };
  std::vector<Found> found;
  for (const fs::directory_entry& de : fs::directory_iterator(params_.dir)) {
    std::uint64_t w = 0, seq = 0;
    if (de.is_regular_file() &&
        parse_segment_file_name(de.path().filename().string(), w, seq)) {
      found.push_back({w, seq, de.path().string()});
    }
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.writer != b.writer ? a.writer < b.writer : a.seq < b.seq;
  });
  for (const Found& f : found) {
    auto seg = std::make_unique<Segment>();
    seg->path = f.path;
    seg->writer = f.writer;
    seg->seq = f.seq;
    const int fd = ::open(f.path.c_str(), O_RDWR);
    if (fd < 0) {
      throw std::runtime_error("SegmentStore: cannot open " + f.path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("SegmentStore: cannot stat " + f.path);
    }
    seg->bytes = static_cast<std::size_t>(st.st_size);
    void* map = ::mmap(nullptr, seg->bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      throw std::runtime_error("SegmentStore: cannot mmap " + f.path);
    }
    seg->base = static_cast<unsigned char*>(map);
    if (seg->bytes < kSegmentHeaderBytes ||
        std::memcmp(seg->base, kSegmentMagic, 8) != 0 ||
        load_u64(seg->base + 8) != f.writer ||
        load_u64(seg->base + 16) != f.seq ||
        load_u64(seg->base + 24) != record_bytes_) {
      throw std::runtime_error("SegmentStore: " + f.path +
                               " header does not match this store's schema");
    }
    seg->capacity = load_u64(seg->base + 32);
    if (kSegmentHeaderBytes + seg->capacity * record_bytes_ > seg->bytes) {
      throw std::runtime_error("SegmentStore: " + f.path +
                               " is shorter than its header claims");
    }
    scan_segment(*seg);
    if (f.writer < params_.writers) {
      Writer& w = *writers_[f.writer];
      w.next_seq = std::max(w.next_seq, f.seq + 1);
      w.tail = seg.get();  // ascending seq: the last one wins
      w.segs.push_back(std::move(seg));
    } else {
      retired_.push_back(std::move(seg));
    }
  }
}

void SegmentStore::scan_segment(Segment& seg) {
  const std::uint64_t qn = num_states_ * num_actions_;
  seg.consumed = seg.capacity;
  for (std::size_t slot = 0; slot < seg.capacity; ++slot) {
    const std::uint64_t offset = kSegmentHeaderBytes + slot * record_bytes_;
    const unsigned char* rec = seg.base + offset;
    if (load_u64(rec) == 0) {
      // A never-published slot: the tail. (A crashed append leaves its body
      // here with the magic still zero — overwritten by the next append.)
      seg.consumed = slot;
      break;
    }
    if (std::memcmp(rec, kRecordMagic, 8) != 0) continue;  // torn: dead weight
    if (load_u64(rec + 24) != qn) continue;
    if (load_u64(rec + record_bytes_ - 8) !=
        fnv1a(rec + 8, record_bytes_ - 16)) {
      continue;  // bit rot: the index falls back to an older valid record
    }
    publish_index(load_u64(rec + 8), &seg, offset, load_u64(rec + 16));
  }
}

void SegmentStore::publish_index(std::uint64_t user, Segment* seg,
                                 std::uint64_t offset, std::uint64_t version) {
  if (user >= index_.size()) {
    index_.resize(user + 1);  // scan/setup phase only; appends pre-check
  }
  IndexEntry& e = index_[user];
  if (e.seg != nullptr) {
    // Scan order is (writer, seq, slot) ascending, so an equal version seen
    // later is a compaction copy of the same table: later position wins.
    if (version < e.version) return;
    e.seg->live.fetch_sub(1, std::memory_order_relaxed);
  }
  e = IndexEntry{seg, offset, version};
  seg->live.fetch_add(1, std::memory_order_relaxed);
}

void SegmentStore::reserve_users(std::uint64_t users) {
  if (users > index_.size()) index_.resize(users);
}

SegmentStore::Segment* SegmentStore::new_segment(Writer& w) {
  auto seg = std::make_unique<Segment>();
  seg->writer = w.id;
  seg->seq = w.next_seq++;
  seg->capacity = capacity_per_segment_;
  seg->bytes = kSegmentHeaderBytes + seg->capacity * record_bytes_;
  seg->path = params_.dir + "/" + segment_file_name(w.id, seg->seq);
  const int fd = ::open(seg->path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("SegmentStore: cannot create " + seg->path);
  }
  if (::ftruncate(fd, static_cast<off_t>(seg->bytes)) != 0) {
    ::close(fd);
    throw std::runtime_error("SegmentStore: cannot size " + seg->path);
  }
  void* map =
      ::mmap(nullptr, seg->bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    throw std::runtime_error("SegmentStore: cannot mmap " + seg->path);
  }
  seg->base = static_cast<unsigned char*>(map);
  std::memcpy(seg->base, kSegmentMagic, 8);
  store_u64(seg->base + 8, w.id);
  store_u64(seg->base + 16, seg->seq);
  store_u64(seg->base + 24, record_bytes_);
  store_u64(seg->base + 32, seg->capacity);
  Segment* raw = seg.get();
  w.segs.push_back(std::move(seg));
  w.tail = raw;
  return raw;
}

void SegmentStore::append(std::uint64_t user, const rl::QTable& q,
                          std::uint64_t version) {
  if (q.num_states() != num_states_ || q.num_actions() != num_actions_) {
    throw std::runtime_error("SegmentStore::append: table shape mismatch");
  }
  if (user >= index_.size()) {
    throw std::runtime_error(
        "SegmentStore::append: user id beyond reserve_users()");
  }
  Writer& w = *writers_[user % params_.writers];
  maybe_compact(w);
  Segment* seg =
      (w.tail != nullptr && w.tail->consumed < w.tail->capacity)
          ? w.tail
          : new_segment(w);
  const std::uint64_t offset =
      kSegmentHeaderBytes + seg->consumed * record_bytes_;
  unsigned char* rec = seg->base + offset;
  const std::uint64_t qn = num_states_ * num_actions_;
  store_u64(rec, 0);  // never expose a stale magic while the body lands
  store_u64(rec + 8, user);
  store_u64(rec + 16, version);
  store_u64(rec + 24, qn);
  unsigned char* qp = rec + 32;
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (const double v : q.row(static_cast<rl::StateId>(s))) {
      store_f64(qp, v);
      qp += 8;
    }
  }
  store_u64(rec + record_bytes_ - 8, fnv1a(rec + 8, record_bytes_ - 16));
  if (pre_publish_hook_) pre_publish_hook_(seg->path);
  // Publish: only now can a scan (or a crashed restart) see the record.
  std::memcpy(rec, kRecordMagic, 8);
  ++seg->consumed;
  IndexEntry& e = index_[user];
  if (e.seg != nullptr) e.seg->live.fetch_sub(1, std::memory_order_relaxed);
  e = IndexEntry{seg, offset, version};
  seg->live.fetch_add(1, std::memory_order_relaxed);
  appends_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<std::uint64_t> SegmentStore::latest_version(
    std::uint64_t user) const {
  if (user >= index_.size() || index_[user].seg == nullptr) {
    return std::nullopt;
  }
  return index_[user].version;
}

std::optional<std::uint64_t> SegmentStore::load(std::uint64_t user,
                                                rl::QTable& q) const {
  if (q.num_states() != num_states_ || q.num_actions() != num_actions_) {
    throw std::runtime_error("SegmentStore::load: table shape mismatch");
  }
  if (user >= index_.size()) return std::nullopt;
  const IndexEntry& e = index_[user];
  if (e.seg == nullptr) return std::nullopt;
  const unsigned char* rec = e.seg->base + e.offset;
  const std::uint64_t qn = num_states_ * num_actions_;
  if (std::memcmp(rec, kRecordMagic, 8) != 0 || load_u64(rec + 8) != user ||
      load_u64(rec + 16) != e.version || load_u64(rec + 24) != qn ||
      load_u64(rec + record_bytes_ - 8) != fnv1a(rec + 8, record_bytes_ - 16)) {
    throw std::runtime_error(
        "SegmentStore::load: record failed validation (bit rot since the "
        "open-time scan) for user " +
        std::to_string(user));
  }
  const unsigned char* qp = rec + 32;
  for (std::size_t s = 0; s < num_states_; ++s) {
    for (double& v : q.row_mut(static_cast<rl::StateId>(s))) {
      v = load_f64(qp);
      qp += 8;
    }
  }
  return e.version;
}

void SegmentStore::maybe_compact(Writer& w) {
  std::uint64_t consumed = 0, live = 0;
  for (const auto& s : w.segs) {
    consumed += s->consumed;
    live += s->live.load(std::memory_order_relaxed);
  }
  if (consumed < params_.compact_min_records) return;
  const std::uint64_t dead = consumed - std::min(live, consumed);
  if (static_cast<double>(dead) <=
      params_.compact_dead_ratio * static_cast<double>(consumed)) {
    return;
  }
  compact_writer(w);
}

void SegmentStore::compact_writer(Writer& w) {
  // Swap the chain out; relocations below append into fresh segments.
  std::vector<std::unique_ptr<Segment>> old = std::move(w.segs);
  w.segs.clear();
  w.tail = nullptr;
  for (std::uint64_t u = w.id; u < index_.size(); u += params_.writers) {
    IndexEntry& e = index_[u];
    if (e.seg == nullptr) continue;
    Segment* dst =
        (w.tail != nullptr && w.tail->consumed < w.tail->capacity)
            ? w.tail
            : new_segment(w);
    const std::uint64_t offset =
        kSegmentHeaderBytes + dst->consumed * record_bytes_;
    std::memcpy(dst->base + offset, e.seg->base + e.offset, record_bytes_);
    ++dst->consumed;
    e.seg->live.fetch_sub(1, std::memory_order_relaxed);
    dst->live.fetch_add(1, std::memory_order_relaxed);
    e.seg = dst;
    e.offset = offset;
  }
  // Unlink chain segments nothing references anymore. A segment still
  // holding another writer's users (possible after a writers-count change)
  // survives, ahead of the fresh tail so appends keep landing at the end.
  std::vector<std::unique_ptr<Segment>> fresh = std::move(w.segs);
  w.segs.clear();
  for (auto& s : old) {
    if (s->live.load(std::memory_order_relaxed) == 0) {
      const std::string path = s->path;
      s.reset();  // munmap before unlink
      fs::remove(path);
    } else {
      w.segs.push_back(std::move(s));
    }
  }
  for (auto& s : fresh) w.segs.push_back(std::move(s));
  ++compactions_;
}

std::size_t SegmentStore::num_segments() const noexcept {
  std::size_t n = retired_.size();
  for (const auto& w : writers_) n += w->segs.size();
  return n;
}

std::uint64_t SegmentStore::live_records() const noexcept {
  std::uint64_t live = 0;
  for (const auto& w : writers_) {
    for (const auto& s : w->segs) live += s->live.load(std::memory_order_relaxed);
  }
  for (const auto& s : retired_) live += s->live.load(std::memory_order_relaxed);
  return live;
}

std::uint64_t SegmentStore::dead_records() const noexcept {
  std::uint64_t consumed = 0;
  for (const auto& w : writers_) {
    for (const auto& s : w->segs) consumed += s->consumed;
  }
  for (const auto& s : retired_) consumed += s->consumed;
  const std::uint64_t live = live_records();
  return consumed - std::min(live, consumed);
}

bool SegmentStore::is_store_dir(const std::string& dir) {
  std::error_code ec;
  return fs::is_regular_file(dir + "/" + kMetaFileName, ec);
}

SegmentStore::Info SegmentStore::inspect(const std::string& dir) {
  Info info;
  std::ifstream meta_in(dir + "/" + kMetaFileName, std::ios::binary);
  std::vector<unsigned char> meta{std::istreambuf_iterator<char>(meta_in),
                                  std::istreambuf_iterator<char>()};
  if (meta.size() < 8 + 6 * 8 + 8 ||
      std::memcmp(meta.data(), kStoreMetaMagic, 8) != 0) {
    return info;
  }
  info.num_steps = load_u64(meta.data() + 16);
  info.num_tools = load_u64(meta.data() + 24);
  info.num_states = load_u64(meta.data() + 32);
  info.num_actions = load_u64(meta.data() + 40);
  info.meta_ok =
      meta.size() == 8 + 6 * 8 + 8 * (info.num_steps + info.num_tools) + 8 &&
      load_u64(meta.data() + meta.size() - 8) ==
          fnv1a(meta.data(), meta.size() - 8);
  if (!info.meta_ok) return info;

  const std::uint64_t qn = info.num_states * info.num_actions;
  const std::size_t record_bytes = 8 * (4 + qn) + 8;
  std::vector<std::pair<std::uint64_t, std::string>> files;  // (writer<<32|seq)
  for (const fs::directory_entry& de : fs::directory_iterator(dir)) {
    std::uint64_t w = 0, seq = 0;
    if (de.is_regular_file() &&
        parse_segment_file_name(de.path().filename().string(), w, seq)) {
      files.emplace_back((w << 32) | seq, de.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  std::map<std::uint64_t, std::uint64_t> latest;  // user -> newest version
  for (const auto& [key, path] : files) {
    ++info.segments;
    std::ifstream in(path, std::ios::binary);
    std::vector<unsigned char> buf{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
    if (buf.size() < kSegmentHeaderBytes ||
        std::memcmp(buf.data(), kSegmentMagic, 8) != 0 ||
        load_u64(buf.data() + 24) != record_bytes) {
      ++info.corrupt_records;
      continue;
    }
    const std::uint64_t capacity = load_u64(buf.data() + 32);
    for (std::uint64_t slot = 0; slot < capacity; ++slot) {
      const std::size_t off = kSegmentHeaderBytes + slot * record_bytes;
      if (off + record_bytes > buf.size()) break;
      const unsigned char* rec = buf.data() + off;
      if (load_u64(rec) == 0) break;  // tail
      if (std::memcmp(rec, kRecordMagic, 8) != 0 ||
          load_u64(rec + 24) != qn ||
          load_u64(rec + record_bytes - 8) !=
              fnv1a(rec + 8, record_bytes - 16)) {
        ++info.corrupt_records;
        continue;
      }
      ++info.records;
      const std::uint64_t user = load_u64(rec + 8);
      const std::uint64_t version = load_u64(rec + 16);
      auto [it, inserted] = latest.emplace(user, version);
      if (!inserted) it->second = std::max(it->second, version);
      info.max_version = std::max(info.max_version, version);
    }
  }
  info.users = latest.size();
  info.live_records = latest.size();
  return info;
}

// ---------------------------------------------------------------------------
// SegmentPolicyStore
// ---------------------------------------------------------------------------

SegmentPolicyStore::SegmentPolicyStore(
    const planning::RoutineLearner& reference, SegmentPolicyStoreParams params)
    : PolicyStore(reference,
                  PolicyStoreParams{params.dir, params.flush_every}),
      seg_(steps(), tools(), reference.q().num_states(),
           reference.q().num_actions(),
           SegmentStoreParams{params.dir, params.segment_bytes, params.writers,
                              params.compact_dead_ratio,
                              params.compact_min_records}) {}

SegmentPolicyStore::~SegmentPolicyStore() {
  try {
    flush_all();
  } catch (...) {
    // Same contract as the base destructor: an unflushed tail only costs
    // the stages since the last flush.
  }
}

UserId SegmentPolicyStore::add_user(std::string name) {
  const UserId u = PolicyStore::add_user(std::move(name));
  seg_.reserve_users(num_users());
  return u;
}

UserId SegmentPolicyStore::add_user(std::string name,
                                    const rl::QTable& initial) {
  const UserId u = PolicyStore::add_user(std::move(name), initial);
  seg_.reserve_users(num_users());
  return u;
}

std::string SegmentPolicyStore::path_for(UserId user) const {
  entry(user);  // same unknown-id validation as the base store
  return params().dir;
}

void SegmentPolicyStore::persist_snapshot(UserId user, Entry& e) {
  seg_.append(user, e.q, e.version);
}

std::optional<std::uint64_t> SegmentPolicyStore::read_snapshot(
    UserId user, rl::QTable& staged) {
  return seg_.load(user, staged);
}

std::size_t SegmentPolicyStore::import_v2_dir(const std::string& from_dir) {
  std::size_t imported = 0;
  for (UserId u = 0; u < num_users(); ++u) {
    const std::string path = from_dir + "/" + user_name(u) + ".policy";
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    Entry& e = entry(u);
    rl::QTable staged(e.q.num_states(), e.q.num_actions());
    const std::uint64_t version =
        planning::load_policy_v2(in, steps_, tools_, staged);
    e.q = staged;
    e.version = version;
    persist_snapshot(u, e);
    ++e.disk;
    e.unflushed = 0;
    ++imported;
  }
  return imported;
}

}  // namespace coreda::serve
