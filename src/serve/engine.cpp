#include "serve/engine.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace coreda::serve {

namespace {

std::uint64_t session_checksum(const core::SessionResult& r) {
  std::uint64_t sum = r.prompts_total + r.steps_completed;
  for (const adl::StepId id : r.observed_steps) sum += id;
  return sum;
}

}  // namespace

ServeEngine::ServeEngine(const adl::AdlLibrary& library, const adl::Adl& adl,
                         PolicyStore& store, ServeEngineParams params)
    : params_(params),
      store_(&store),
      pool_(library, adl, store, params.pool),
      retrainer_(adl, store, params.pool.system.learner, pool_.slots(),
                 params.retrain),
      by_slot_(pool_.slots()),
      results_(pool_.slots()) {
  for (core::SessionResult& r : results_) {
    r.observed_steps.reserve(core::kMaxSessionSteps);
  }
}

UserId ServeEngine::add_user(std::string name,
                             patient::PatientProfile profile) {
  // Engine user ids and store user ids must coincide (the pool checks out
  // by the shared id), so the engine either adopts the next store entry or
  // creates it.
  const UserId user = static_cast<UserId>(profiles_.size());
  if (user == store_->num_users()) {
    store_->add_user(std::move(name));
  } else if (user > store_->num_users()) {
    throw std::invalid_argument(
        "ServeEngine::add_user: store is missing earlier users");
  }
  profiles_.push_back(std::move(profile));
  stats_.emplace_back();
  retrainer_.add_user();
  return user;
}

void ServeEngine::enqueue(UserId user, std::size_t sessions) {
  if (user >= profiles_.size()) {
    throw std::out_of_range("ServeEngine::enqueue: unknown user id " +
                            std::to_string(user));
  }
  if (sessions == 0) return;
  by_slot_[pool_.slot_for(user)].push_back(Request{user, sessions});
}

std::size_t ServeEngine::queued() const noexcept {
  std::size_t total = 0;
  for (const std::vector<Request>& slot : by_slot_) {
    for (const Request& r : slot) total += r.sessions;
  }
  return total;
}

const ServeUserStats& ServeEngine::user_stats(UserId user) const {
  if (user >= stats_.size()) {
    throw std::out_of_range("ServeEngine::user_stats: unknown user id " +
                            std::to_string(user));
  }
  return stats_[user];
}

void ServeEngine::serve_one(UserId user, core::SessionResult& result) {
  pool_.serve_session(user, profiles_[user], params_.session_cap, {},
                      result);
  // Completed sessions feed the user's transcript ring — what the user
  // actually did is the ground truth a retrain replays. Recorded even with
  // retraining disabled (it is allocation-free) so flipping the switch on a
  // live engine starts from warm rings.
  if (result.completed) {
    retrainer_.record(user, result.observed_steps);
  }
  ServeUserStats& s = stats_[user];
  const auto prompts = static_cast<double>(result.prompts_total);
  // Seed the EWMA with the first observation instead of decaying up from
  // zero — otherwise a warmup-length burst of prompts reads as calm.
  s.prompt_ewma = (s.sessions == 0)
                      ? prompts
                      : s.prompt_ewma +
                            params_.drift.alpha * (prompts - s.prompt_ewma);
  ++s.sessions;
  s.completed += result.completed ? 1 : 0;
  s.prompts += result.prompts_total;
  s.checksum += session_checksum(result);
  if (s.sessions >= params_.drift.warmup_sessions &&
      s.prompt_ewma >= params_.drift.threshold) {
    s.needs_retraining = true;  // sticky until a retrain recovers the EWMA
  }
  // Redeploy verified: the post-retrain policy pulled the EWMA back under
  // the threshold, so the loop for this drift episode is closed.
  if (s.awaiting_recovery && s.prompt_ewma < params_.drift.threshold) {
    s.needs_retraining = false;
    s.awaiting_recovery = false;
  }
}

bool ServeEngine::retrain_due(UserId user) const {
  const ServeUserStats& s = stats_[user];
  if (!s.needs_retraining) return false;
  if (!retrainer_.has_enough_transcripts(user)) return false;
  // After a retrain the refreshed policy gets cooldown_sessions of serving
  // to move the EWMA before another job may queue for the same user.
  return s.retrains == 0 || s.sessions - s.last_retrain_session >=
                                params_.retrain.cooldown_sessions;
}

void ServeEngine::attach_faults(faults::Injector& injector) {
  injector.attach(stall_site_);
  injector.attach(radio_site_);
  store_->attach_faults(injector);
  retrainer_.attach_faults(injector);
  pool_.arm_fault_bursts(radio_site_);
}

ServeReport ServeEngine::drain(exec::TrialRunner& runner) {
  ++drains_;
  // The queue is already bucketed by home slot (enqueue order preserved
  // within a slot). Each slot is one trial: its users' sessions run
  // serially, in order, on whichever worker picks the trial up — the same
  // result at any --jobs — against the slot's persistent scratch result.
  runner.run(pool_.slots(), /*base_seed=*/0,
             [&](exec::TrialContext& ctx) -> char {
               // Stalled slot: injected scheduling delay, wall-clock only.
               const std::uint64_t stall =
                   stall_site_.stall_ns(ctx.index, drains_);
               if (stall != 0) {
                 std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
               }
               core::SessionResult& result = results_[ctx.index];
               for (const Request& r : by_slot_[ctx.index]) {
                 for (std::size_t i = 0; i < r.sessions; ++i) {
                   serve_one(r.user, result);
                 }
               }
               by_slot_[ctx.index].clear();  // keeps its capacity
               return 0;  // results land in stats_ (disjoint per slot)
             });

  // Close the loop: queue a retrain for every drift-flagged user whose ring
  // is deep enough, fan the jobs across the same runner, and invalidate the
  // retrained users' slot residency so their next session serves the
  // refreshed table. Users are scanned in id order — the queue (and hence
  // the drain) is a pure function of engine state, never of worker timing.
  std::size_t retrained_now = 0;
  if (params_.retrain.enabled) {
    for (UserId user = 0; user < stats_.size(); ++user) {
      if (retrain_due(user)) retrainer_.enqueue(user);
    }
    const std::span<const UserId> retrained = retrainer_.drain(runner);
    retrained_now = retrained.size();
    for (const UserId user : retrained) {
      pool_.invalidate(user);
      ServeUserStats& s = stats_[user];
      ++s.retrains;
      s.awaiting_recovery = true;
      s.last_retrain_session = s.sessions;
    }
  }

  ServeReport report;
  report.users = stats_;
  for (const ServeUserStats& s : stats_) {
    report.sessions += s.sessions;
    report.completed += s.completed;
    report.prompts += s.prompts;
    report.checksum += s.checksum;
    report.flagged_users += s.needs_retraining ? 1 : 0;
  }
  report.pool_hits = pool_.hits();
  report.policy_swaps = pool_.swaps();
  report.staged_writes = store_->staged_writes();
  report.disk_writes = store_->disk_writes();
  report.crashed_stages = pool_.crashed_stages();
  report.retrained_this_drain = retrained_now;
  report.retrain = retrainer_.counters();
  return report;
}

}  // namespace coreda::serve
