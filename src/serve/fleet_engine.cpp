#include "serve/fleet_engine.hpp"

#include <charconv>
#include <chrono>
#include <ostream>
#include <stdexcept>
#include <thread>

namespace coreda::serve {

namespace {

std::uint64_t session_checksum(const core::SessionResult& r) {
  std::uint64_t sum = r.prompts_total + r.steps_completed;
  for (const adl::StepId id : r.observed_steps) sum += id;
  return sum;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FleetEngine::FleetEngine(const adl::AdlLibrary& library, const adl::Adl& adl,
                         SegmentStore& store, const rl::QTable& reference,
                         FleetEngineParams params)
    : params_(params), store_(&store), reference_(&reference) {
  if (params_.shards == 0 || params_.slots_per_shard == 0) {
    throw std::invalid_argument("FleetEngine: shards and slots_per_shard "
                                "must be >= 1");
  }
  if (store.writers() != params_.shards) {
    throw std::invalid_argument(
        "FleetEngine: store.writers() must equal shards — the lock-free "
        "writer partitioning holds only when shard threads own disjoint "
        "segment chains");
  }
  if (reference.num_states() != store.num_states() ||
      reference.num_actions() != store.num_actions()) {
    throw std::invalid_argument(
        "FleetEngine: reference table shape differs from the store schema");
  }
  shards_.reserve(params_.shards);
  for (std::size_t sh = 0; sh < params_.shards; ++sh) {
    shards_.emplace_back(reference.num_states(), reference.num_actions());
    Shard& shard = shards_.back();
    shard.slots.resize(params_.slots_per_shard);
    for (std::size_t s = 0; s < params_.slots_per_shard; ++s) {
      core::SystemConfig config = params_.system;
      config.seed =
          exec::trial_seed(params_.seed, sh * params_.slots_per_shard + s);
      shard.slots[s].system =
          std::make_unique<core::CoredaSystem>(library, adl, config);
      shard.slots[s].system->import_policy(reference);
    }
    shard.result.observed_steps.reserve(core::kMaxSessionSteps);
  }
}

void FleetEngine::reserve_users(std::uint64_t users) {
  packed_.reserve(static_cast<std::size_t>(users));
  store_->reserve_users(users);
}

std::uint64_t FleetEngine::register_user(double severity) {
  const std::uint64_t user = packed_.size();
  packed_.push_back(quantize_severity(severity));
  // The store index is reserved ahead by reserve_users(); this keeps the
  // contract when a caller registers past the reservation.
  store_->reserve_users(packed_.size());
  return user;
}

void FleetEngine::enqueue(std::uint64_t user) {
  if (user >= packed_.size()) {
    throw std::out_of_range("FleetEngine::enqueue: unknown user id " +
                            std::to_string(user));
  }
  shards_[shard_for(user)].queue.push_back(user);
}

std::size_t FleetEngine::queued() const noexcept {
  std::size_t total = 0;
  for (const Shard& sh : shards_) total += sh.queue.size();
  return total;
}

std::uint64_t FleetEngine::version(std::uint64_t user) const {
  if (user >= packed_.size()) {
    throw std::out_of_range("FleetEngine::version: unknown user id " +
                            std::to_string(user));
  }
  // Both halves advance together: a session bumps the unwritten count, an
  // append moves those sessions into the stored version.
  return store_->latest_version(user).value_or(0) +
         unflushed_count(packed_[user]);
}

double FleetEngine::prompt_ewma(std::uint64_t user) const {
  if (user >= packed_.size()) {
    throw std::out_of_range("FleetEngine::prompt_ewma: unknown user id " +
                            std::to_string(user));
  }
  const std::uint32_t packed = packed_[user];
  if (!(packed & kPrimedBit)) return 0.0;
  return static_cast<double>((packed >> 16) & 0xFF) / 8.0;
}

void FleetEngine::append_user(Shard& sh, const Slot& slot,
                              std::uint64_t user) {
  std::uint32_t& packed = packed_[user];
  const std::uint64_t version =
      store_->latest_version(user).value_or(0) + unflushed_count(packed);
  try {
    store_->append(user, slot.system->learner().q(), version);
  } catch (const faults::InjectedCrash&) {
    // An injected crash aborts the append exactly like a power cut: the
    // store keeps its committed prefix, the unflushed count stays, and a
    // later write-back (or flush_residents) retries at a higher version.
    ++sh.crashed_appends;
    return;
  }
  packed &= ~kUnflushedMask;
  ++sh.appends;
}

void FleetEngine::serve_one(Shard& sh, std::uint64_t user) {
  // Node dropout: the user's node never came up for this session. Keyed on
  // the shard-serial attempt counter, so the schedule is a pure function of
  // the enqueue history at any --jobs.
  ++sh.attempts;
  if (dropout_site_.should_inject(user, sh.attempts)) {
    ++sh.dropped;
    return;
  }
  const std::uint64_t t0 = now_ns();
  Slot& slot = sh.slots[slot_in_shard(user)];
  if (slot.resident != user) {
    // Never lose an evicted user's learned updates: append before the slot
    // is repurposed (no-op wear-wise when nothing is unwritten).
    if (slot.resident != kNoUser && unflushed_count(packed_[slot.resident]) > 0) {
      append_user(sh, slot, slot.resident);
    }
    if (store_->load(user, sh.scratch_q).has_value()) {
      slot.system->import_policy(sh.scratch_q);
      ++sh.cold_loads;
    } else {
      slot.system->import_policy(*reference_);
      ++sh.reference_starts;
    }
    slot.resident = user;
  } else {
    ++sh.pool_hits;
  }
  char name[24] = {'U'};
  const auto [end, ec] = std::to_chars(name + 1, name + sizeof name, user);
  sh.profile.name.assign(name, static_cast<std::size_t>(end - name));
  std::uint32_t& packed = packed_[user];
  sh.profile.apply_severity(severity_of(packed));
  slot.system->run_session_inplace(sh.profile, params_.session_cap, {},
                                   sh.result);
  // One more session not yet in the store — the derived version advances.
  const std::uint32_t unflushed = unflushed_count(packed) + 1;
  packed = (packed & ~kUnflushedMask) | (unflushed << 8);
  // Drift EWMA over prompts/session in 5.3 fixed point: q' = q + (x - q)/8.
  // Integer truncation stalls within 7/8 of a prompt of the true mean —
  // well inside the threshold's resolution.
  const auto x8 = static_cast<std::uint32_t>(
      sh.result.prompts_total >= 31 ? 255 : sh.result.prompts_total * 8);
  std::uint32_t q = (packed >> 16) & 0xFF;
  if (packed & kPrimedBit) {
    q = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(q) +
        (static_cast<std::int32_t>(x8) - static_cast<std::int32_t>(q)) / 8);
  } else {
    q = x8;
  }
  packed = (packed & ~kEwmaMask) | (q << 16) | kPrimedBit;
  if (static_cast<double>(q) / 8.0 >= params_.drift_threshold) {
    ++sh.drift_flagged;
  }
  if ((params_.write_back_every != 0 &&
       unflushed >= params_.write_back_every) ||
      unflushed == 255) {  // counter saturation: the append is forced
    append_user(sh, slot, user);
  }
  ++sh.sessions;
  sh.completed += sh.result.completed ? 1 : 0;
  sh.prompts += sh.result.prompts_total;
  sh.checksum += (user + 1) * session_checksum(sh.result);
  sh.latency.record(now_ns() - t0);
}

FleetReport FleetEngine::drain(exec::TrialRunner& runner) {
  ++drains_;
  runner.run(shards_.size(), params_.seed,
             [&](exec::TrialContext& ctx) -> char {
               Shard& sh = shards_[ctx.index];
               // Stalled shard: an injected scheduling delay at drain start.
               // Wall-clock only — it moves the latency histogram (a timing
               // side-channel), never the served results.
               const std::uint64_t stall =
                   stall_site_.stall_ns(ctx.index, drains_);
               if (stall != 0) {
                 std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
               }
               for (const std::uint64_t user : sh.queue) serve_one(sh, user);
               sh.queue.clear();
               return 0;  // results land in the shard (disjoint per trial)
             });
  FleetReport report;
  for (const Shard& sh : shards_) {
    for (const Slot& slot : sh.slots) {
      report.radio_lost_frames += slot.system->channel().stats().lost_fault;
    }
    report.dropped_sessions += sh.dropped;
    report.crashed_appends += sh.crashed_appends;
    report.sessions += sh.sessions;
    report.completed += sh.completed;
    report.prompts += sh.prompts;
    report.checksum += sh.checksum;
    report.pool_hits += sh.pool_hits;
    report.cold_loads += sh.cold_loads;
    report.reference_starts += sh.reference_starts;
    report.appends += sh.appends;
    report.drift_flagged += sh.drift_flagged;
    report.latency.merge(sh.latency);
  }
  return report;
}

void FleetEngine::reset_latency() {
  for (Shard& sh : shards_) sh.latency.reset();
}

void FleetEngine::attach_faults(faults::Injector& injector) {
  injector.attach(stall_site_);
  injector.attach(dropout_site_);
  injector.attach(radio_site_);
  store_->attach_faults(injector);
  for (std::size_t sh = 0; sh < shards_.size(); ++sh) {
    for (std::size_t s = 0; s < shards_[sh].slots.size(); ++s) {
      shards_[sh].slots[s].system->channel_mut().arm_fault_burst(
          radio_site_, sh * params_.slots_per_shard + s);
    }
  }
}

void FleetEngine::flush_residents() {
  for (Shard& sh : shards_) {
    for (const Slot& slot : sh.slots) {
      if (slot.resident != kNoUser &&
          unflushed_count(packed_[slot.resident]) > 0) {
        append_user(sh, slot, slot.resident);
      }
    }
  }
}

void FleetEngine::dump_policies(std::ostream& out) const {
  rl::QTable q(reference_->num_states(), reference_->num_actions());
  out << std::hexfloat;
  for (std::uint64_t user = 0; user < packed_.size(); ++user) {
    const std::optional<std::uint64_t> version = store_->load(user, q);
    if (!version) continue;
    out << "user " << user << " v" << *version;
    for (std::size_t s = 0; s < q.num_states(); ++s) {
      for (const double v : q.row(static_cast<rl::StateId>(s))) {
        out << ' ' << v;
      }
    }
    out << '\n';
  }
  out << std::defaultfloat;
}

}  // namespace coreda::serve
