#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "planning/learner.hpp"
#include "rl/q_table.hpp"

namespace coreda::serve {

/// Index of a registered user in a PolicyStore / ServeEngine. Users are
/// registered once at startup and addressed by index on the serving hot
/// path — no string lookups per session.
using UserId = std::uint32_t;

/// On-disk snapshot encoding of the per-file PolicyStore backend.
enum class SnapshotFormat : std::uint8_t {
  kV2 = 2,       ///< one full "coreda-policy v2" record per flush
  kV3Delta = 3,  ///< v3 anchor + appended changed-row delta records
};

struct PolicyStoreParams {
  /// Snapshot directory. One policy file per user, `<dir>/<user>.policy`.
  /// Empty = memory-only store: versions and staging still work, nothing
  /// ever touches disk (the pure-serving configuration the benches use).
  std::string dir;
  /// Wear-aware write batching, mirroring the node EEPROM model: a policy
  /// write-back lands in the in-memory entry immediately, but only every
  /// `flush_every`-th staged write per user is persisted to disk (plus
  /// explicit flush() / flush_all() / destruction). A box serving 20
  /// sessions/user/day with the default batching writes each user's file
  /// ~2-3 times a day instead of 20 — the same k-fold wear reduction the
  /// nodes' EEPROM ring buys their flash.
  std::size_t flush_every = 8;
  /// v2 (default): every flush atomically rewrites the full snapshot.
  /// v3: a flush appends one delta record carrying only the Q rows that
  /// changed since the last persisted state — the write-amplification fix
  /// for large-vocab tables — with a fresh full anchor (atomic tmp+rename)
  /// every `rebase_every` deltas and after every restore. A v3 store
  /// restores v2 files transparently and rebases them to v3 on the next
  /// flush (the in-place migration path `policy migrate` batch-drives).
  SnapshotFormat format = SnapshotFormat::kV2;
  /// Max delta records between full anchors in v3 mode (bounds chain replay
  /// time and the blast radius of a torn tail).
  std::size_t rebase_every = 8;
};

/// Per-user versioned policy snapshots for the serving tier.
///
/// The store is the source of truth between sessions: a SystemPool slot
/// checks a user's table out (import_policy), serves, and stages the table
/// back. Every stage bumps the user's version monotonically, so operators
/// can tell a stale snapshot from a current one, and a warm restart
/// (restore()) resumes from the last flushed version.
///
/// The class is open for alternative persistence backends: the staging /
/// versioning / wear-batching logic lives here, while the four protected
/// virtuals (persist_snapshot, read_snapshot, path_for,
/// set_pre_publish_hook) define where bytes actually land. The base class
/// writes one v2 snapshot file per user; SegmentPolicyStore
/// (segment_store.hpp) overrides the seam to append into a memory-mapped
/// segmented store instead, without ServeEngine or RetrainScheduler
/// noticing the difference.
///
/// Thread-safety: add_user() and restore() are setup-phase only. stage()
/// and the per-user readers may be called concurrently for *different*
/// users (the ServeEngine shards disjoint users across slots); concurrent
/// calls for the same user are the caller's bug. Aggregate counters
/// (staged_writes, disk_writes) are sums over per-user counters and are
/// meant to be read after a drain, not mid-flight.
class PolicyStore {
 public:
  /// Captures the snapshot schema — step/tool vocabularies and table shape
  /// — from `reference`, typically the offline-trained donor learner.
  /// Every user entry starts as a copy of the reference table (version 1).
  /// Creates `params.dir` when set and missing.
  explicit PolicyStore(const planning::RoutineLearner& reference,
                       PolicyStoreParams params = {});

  /// Flushes every dirty entry (best effort — errors are swallowed, a
  /// destructor cannot throw; call flush_all() first to observe failures).
  /// Derived stores must flush in their own destructor: by the time this
  /// one runs, virtual dispatch has already fallen back to the base
  /// persistence.
  virtual ~PolicyStore();

  PolicyStore(const PolicyStore&) = delete;
  PolicyStore& operator=(const PolicyStore&) = delete;

  /// Registers a user starting from the reference policy. Not callable
  /// while sessions are being served (entry references would move).
  virtual UserId add_user(std::string name);
  /// Registers a user with an explicit starting table (must match the
  /// reference shape; throws std::invalid_argument otherwise).
  virtual UserId add_user(std::string name, const rl::QTable& initial);

  std::size_t num_users() const noexcept { return entries_.size(); }
  const std::string& user_name(UserId user) const;
  /// The user's current table — what the next checkout will serve.
  const rl::QTable& q(UserId user) const;
  std::uint64_t version(UserId user) const;

  /// Write-back: copies `q` into the user's entry and bumps its version.
  /// Allocation-free at steady state (same-shape table copy); flushes to
  /// disk only when the wear batch fills (see PolicyStoreParams).
  void stage(UserId user, const rl::QTable& q);

  /// Persists the user's entry now (no-op when memory-only). Throws
  /// std::runtime_error when the snapshot cannot be written.
  void flush(UserId user);
  void flush_all();

  /// Warm restart: loads the user's committed snapshot into the entry and
  /// adopts its version. Returns the version, or nullopt when the store is
  /// memory-only or no snapshot exists yet. Throws std::runtime_error on a
  /// corrupt/mismatched snapshot (entry unchanged).
  std::optional<std::uint64_t> restore(UserId user);

  /// Total stage() calls across users — the writes the policy tier *asked*
  /// for...
  std::uint64_t staged_writes() const noexcept;
  /// ...and the snapshots actually persisted — the wear the disk *saw*.
  std::uint64_t disk_writes() const noexcept;
  /// Bytes those persisted snapshots put on disk (full records in v2 mode;
  /// anchors + delta records in v3 mode) — the write-amplification metric
  /// the retrain bench gates.
  std::uint64_t flush_bytes() const noexcept;

  /// Snapshot location for a user; empty when memory-only. The per-file
  /// base store returns `<dir>/<name>.policy`; a segmented store returns
  /// its directory (users share segments there).
  virtual std::string path_for(UserId user) const;

  /// The crash seam, as a faults::Site: evaluated with the publish target
  /// after the snapshot body is fully written but *before* the rename (v2 /
  /// v3 anchor) or before any byte lands (v3 delta append). A crash here —
  /// a throwing test hook or a planned faults::InjectedCrash — leaves the
  /// committed snapshot untouched and the entry still unflushed, so a later
  /// flush retries. SegmentPolicyStore returns the segment store's site:
  /// both backends expose ONE seam with ONE contract.
  virtual faults::Site& pre_publish_site() noexcept {
    return pre_publish_site_;
  }

  /// Arms this store's fault sites (crash + snapshot-byte corruption)
  /// against `injector`'s plan. Setup-phase only.
  virtual void attach_faults(faults::Injector& injector) {
    injector.attach(pre_publish_site_);
    injector.attach(corrupt_site_);
  }

  /// Deprecated: the raw hook setter predates coreda::faults. Routes into
  /// pre_publish_site().set_hook() so legacy callers keep working with the
  /// unified contract.
  [[deprecated("use pre_publish_site().set_hook()")]] void
  set_pre_publish_hook(std::function<void(const std::string&)> hook) {
    pre_publish_site().set_hook(std::move(hook));
  }

  std::span<const adl::StepId> steps() const noexcept { return steps_; }
  std::span<const adl::ToolId> tools() const noexcept { return tools_; }
  const PolicyStoreParams& params() const noexcept { return params_; }

 protected:
  struct Entry {
    std::string name;
    rl::QTable q;
    std::uint64_t version = 1;
    std::uint64_t staged = 0;    ///< stage() calls on this entry
    std::uint64_t disk = 0;      ///< snapshot writes persisted for this entry
    std::size_t unflushed = 0;   ///< stages since the last persisted write
    std::uint64_t flush_bytes = 0;  ///< snapshot bytes persisted so far
    // --- v3 chain state ---------------------------------------------------
    /// The table as the committed file reconstructs it — the diff base for
    /// the next delta. Null until the first v3 anchor lands (or after a
    /// restore/append failure), which forces a full rewrite.
    std::unique_ptr<rl::QTable> flushed = nullptr;
    std::uint64_t flushed_version = 0;  ///< version the chain ends at
    std::size_t chain_deltas = 0;       ///< deltas since the last anchor
  };

  Entry& entry(UserId user);
  const Entry& entry(UserId user) const;

  /// Backend seam: durably record `e` (table + version) for `user`. The
  /// base implementation writes `<dir>/<name>.policy.tmp` then renames.
  /// Must be atomic-publish (a crash mid-write leaves the previous
  /// committed snapshot readable) and must leave `e.unflushed`/`e.disk`
  /// untouched — the caller accounts for wear after a successful return.
  virtual void persist_snapshot(UserId user, Entry& e);

  /// Backend seam: load the committed snapshot for `user` into `staged`
  /// (already shaped like the reference table) and return its version;
  /// nullopt when the backend is memory-only or holds nothing for this
  /// user; std::runtime_error when the committed bytes are corrupt. Must
  /// not touch the resident entry — restore() commits only on success.
  virtual std::optional<std::uint64_t> read_snapshot(UserId user,
                                                     rl::QTable& staged);

  PolicyStoreParams params_;
  std::vector<adl::StepId> steps_;
  std::vector<adl::ToolId> tools_;
  rl::QTable reference_;
  std::vector<Entry> entries_;
  faults::Site pre_publish_site_{"policy_store.pre_publish"};
  faults::Site corrupt_site_{"policy_store.corrupt"};
};

}  // namespace coreda::serve
