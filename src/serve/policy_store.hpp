#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "planning/learner.hpp"
#include "rl/q_table.hpp"

namespace coreda::serve {

/// Index of a registered user in a PolicyStore / ServeEngine. Users are
/// registered once at startup and addressed by index on the serving hot
/// path — no string lookups per session.
using UserId = std::uint32_t;

struct PolicyStoreParams {
  /// Snapshot directory. One "coreda-policy v2" file per user,
  /// `<dir>/<user>.policy`, written atomically (temp file + rename).
  /// Empty = memory-only store: versions and staging still work, nothing
  /// ever touches disk (the pure-serving configuration the benches use).
  std::string dir;
  /// Wear-aware write batching, mirroring the node EEPROM model: a policy
  /// write-back lands in the in-memory entry immediately, but only every
  /// `flush_every`-th staged write per user is persisted to disk (plus
  /// explicit flush() / flush_all() / destruction). A box serving 20
  /// sessions/user/day with the default batching writes each user's file
  /// ~2-3 times a day instead of 20 — the same k-fold wear reduction the
  /// nodes' EEPROM ring buys their flash.
  std::size_t flush_every = 8;
};

/// Per-user versioned policy snapshots for the serving tier.
///
/// The store is the source of truth between sessions: a SystemPool slot
/// checks a user's table out (import_policy), serves, and stages the table
/// back. Every stage bumps the user's version monotonically, so operators
/// can tell a stale snapshot from a current one, and a warm restart
/// (restore()) resumes from the last flushed version.
///
/// Thread-safety: add_user() and restore() are setup-phase only. stage()
/// and the per-user readers may be called concurrently for *different*
/// users (the ServeEngine shards disjoint users across slots); concurrent
/// calls for the same user are the caller's bug. Aggregate counters
/// (staged_writes, disk_writes) are sums over per-user counters and are
/// meant to be read after a drain, not mid-flight.
class PolicyStore {
 public:
  /// Captures the snapshot schema — step/tool vocabularies and table shape
  /// — from `reference`, typically the offline-trained donor learner.
  /// Every user entry starts as a copy of the reference table (version 1).
  /// Creates `params.dir` when set and missing.
  explicit PolicyStore(const planning::RoutineLearner& reference,
                       PolicyStoreParams params = {});

  /// Flushes every dirty entry (best effort — errors are swallowed, a
  /// destructor cannot throw; call flush_all() first to observe failures).
  ~PolicyStore();

  PolicyStore(const PolicyStore&) = delete;
  PolicyStore& operator=(const PolicyStore&) = delete;

  /// Registers a user starting from the reference policy. Not callable
  /// while sessions are being served (entry references would move).
  UserId add_user(std::string name);
  /// Registers a user with an explicit starting table (must match the
  /// reference shape; throws std::invalid_argument otherwise).
  UserId add_user(std::string name, const rl::QTable& initial);

  std::size_t num_users() const noexcept { return entries_.size(); }
  const std::string& user_name(UserId user) const;
  /// The user's current table — what the next checkout will serve.
  const rl::QTable& q(UserId user) const;
  std::uint64_t version(UserId user) const;

  /// Write-back: copies `q` into the user's entry and bumps its version.
  /// Allocation-free at steady state (same-shape table copy); flushes to
  /// disk only when the wear batch fills (see PolicyStoreParams).
  void stage(UserId user, const rl::QTable& q);

  /// Persists the user's entry now (no-op when memory-only). Throws
  /// std::runtime_error when the file cannot be written.
  void flush(UserId user);
  void flush_all();

  /// Warm restart: loads `<dir>/<name>.policy` into the entry and adopts
  /// its version. Returns the version, or nullopt when the store is
  /// memory-only or no snapshot exists yet. Throws std::runtime_error on a
  /// corrupt/mismatched snapshot (entry unchanged).
  std::optional<std::uint64_t> restore(UserId user);

  /// Total stage() calls across users — the writes the policy tier *asked*
  /// for...
  std::uint64_t staged_writes() const noexcept;
  /// ...and the snapshot files actually written — the wear the disk *saw*.
  std::uint64_t disk_writes() const noexcept;

  /// Snapshot path for a user; empty when memory-only.
  std::string path_for(UserId user) const;

  /// Fault-injection seam for the crash tests: invoked with the temp-file
  /// path after the snapshot body is fully written but *before* the rename
  /// publishes it. A hook that throws simulates a crash in the
  /// write-then-publish window — the temp file is left behind, the
  /// committed snapshot (if any) is untouched, and the entry still counts
  /// as unflushed so a later flush retries. Never set in production.
  void set_pre_publish_hook(std::function<void(const std::string&)> hook) {
    pre_publish_hook_ = std::move(hook);
  }

  std::span<const adl::StepId> steps() const noexcept { return steps_; }
  std::span<const adl::ToolId> tools() const noexcept { return tools_; }
  const PolicyStoreParams& params() const noexcept { return params_; }

 private:
  struct Entry {
    std::string name;
    rl::QTable q;
    std::uint64_t version = 1;
    std::uint64_t staged = 0;    ///< stage() calls on this entry
    std::uint64_t disk = 0;      ///< snapshot files written for this entry
    std::size_t unflushed = 0;   ///< stages since the last disk write
  };

  Entry& entry(UserId user);
  const Entry& entry(UserId user) const;
  void write_snapshot(Entry& e);

  PolicyStoreParams params_;
  std::vector<adl::StepId> steps_;
  std::vector<adl::ToolId> tools_;
  rl::QTable reference_;
  std::vector<Entry> entries_;
  std::function<void(const std::string&)> pre_publish_hook_;
};

}  // namespace coreda::serve
