#include "serve/system_pool.hpp"

#include <stdexcept>

#include "exec/trial_runner.hpp"

namespace coreda::serve {

SystemPool::SystemPool(const adl::AdlLibrary& library, const adl::Adl& adl,
                       PolicyStore& store, SystemPoolParams params)
    : store_(&store) {
  if (params.slots == 0) {
    throw std::invalid_argument("SystemPool: slots must be >= 1");
  }
  slots_.reserve(params.slots);
  for (std::size_t i = 0; i < params.slots; ++i) {
    core::SystemConfig config = params.system;
    config.seed = exec::trial_seed(params.seed, i);
    Slot slot;
    slot.system =
        std::make_unique<core::CoredaSystem>(library, adl, config);
    slots_.push_back(std::move(slot));
  }
}

void SystemPool::serve_session(
    UserId user, const patient::PatientProfile& profile,
    sim::Duration max_duration,
    const std::function<void(patient::PatientActor&)>& setup,
    core::SessionResult& result) {
  Slot& slot = slots_[slot_for(user)];
  if (slot.resident == user) {
    // The slot's learner already holds this user's latest table (every
    // session stages back on its way out), so the checkout is free.
    ++slot.hits;
  } else {
    slot.system->import_policy(store_->q(user));
    slot.resident = user;
    ++slot.swaps;
  }
  slot.system->run_session_inplace(profile, max_duration, setup, result);
  // Write-back even when learning is off: the version bump marks the
  // snapshot current, and a user whose next session lands after another
  // tenant evicted them re-imports exactly what they left behind.
  try {
    store_->stage(user, slot.system->learner().q());
  } catch (const faults::InjectedCrash&) {
    // The crash hit the disk flush after stage() already committed the
    // in-memory entry: serving state is intact, persistence retries on a
    // later wear batch — exactly the power-cut contract the crash tests
    // prove.
    ++slot.crashed_stages;
  }
  ++slot.sessions;
}

void SystemPool::arm_fault_bursts(faults::Site& site) noexcept {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].system->channel_mut().arm_fault_burst(site, i);
  }
}

std::uint64_t SystemPool::crashed_stages() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.crashed_stages;
  return total;
}

void SystemPool::invalidate(UserId user) {
  Slot& slot = slots_[slot_for(user)];
  if (slot.resident == user) {
    slot.resident = kNoUser;
    ++invalidations_;
  }
}

std::uint64_t SystemPool::hits() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.hits;
  return total;
}

std::uint64_t SystemPool::swaps() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.swaps;
  return total;
}

std::uint64_t SystemPool::sessions() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.sessions;
  return total;
}

UserId SystemPool::resident(std::size_t slot) const {
  return slots_.at(slot).resident;
}

std::uint64_t SystemPool::slot_sessions(std::size_t slot) const {
  return slots_.at(slot).sessions;
}

const core::CoredaSystem& SystemPool::system(std::size_t slot) const {
  return *slots_.at(slot).system;
}

}  // namespace coreda::serve
