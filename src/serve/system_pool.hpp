#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "serve/policy_store.hpp"

namespace coreda::serve {

struct SystemPoolParams {
  /// Warm CoredaSystem instances — the box's working-set budget. Far fewer
  /// than users: sharding maps user u to slot u % slots.
  std::size_t slots = 4;
  /// Slot i's system is seeded with exec::trial_seed(seed, i), so pool
  /// behavior is a pure function of configuration, never of scheduling.
  std::uint64_t seed = 42;
  /// Template for every slot's system (the seed field is overridden
  /// per slot).
  core::SystemConfig system{};
};

/// A fixed pool of warm CoredaSystem instances shared by many users.
///
/// PR 3 made one warm system serve back-to-back sessions allocation-free
/// and made policy swaps cheap (import_policy); the pool turns that into a
/// multi-tenant tier: each session is checkout -> import the user's policy
/// from the store (skipped when the user is already resident) ->
/// run_session_inplace -> stage the policy back -> return. Hit/swap
/// counters expose how well residency tracks the request stream.
///
/// Determinism: users are sharded statically (slot = user % slots), so a
/// slot's session sequence — and therefore every simulated outcome — is a
/// pure function of (params, store contents, request order). The
/// ServeEngine runs one trial per slot on the exec pool: any --jobs value
/// produces byte-identical results, only wall-clock differs.
///
/// Thread-safety: calls for users of different slots may run concurrently
/// (disjoint systems, disjoint store entries); calls within one slot must
/// be serialized — which the per-slot trial sharding gives for free.
class SystemPool {
 public:
  static constexpr UserId kNoUser = std::numeric_limits<UserId>::max();

  /// `library`, `adl` and `store` must outlive the pool. All slot systems
  /// are built warm (and their pools provisioned) at construction.
  SystemPool(const adl::AdlLibrary& library, const adl::Adl& adl,
             PolicyStore& store, SystemPoolParams params = {});

  std::size_t slots() const noexcept { return slots_.size(); }
  std::size_t slot_for(UserId user) const noexcept {
    return user % slots_.size();
  }

  /// Serves one closed-loop session for `user` on its home slot. The
  /// caller owns `result`, which is reused across calls — at steady state
  /// (warm slot, registered user) the whole serve, including a policy
  /// swap and the write-back, performs zero heap allocations.
  void serve_session(
      UserId user, const patient::PatientProfile& profile,
      sim::Duration max_duration,
      const std::function<void(patient::PatientActor&)>& setup,
      core::SessionResult& result);

  /// Drops the user's slot residency so their next session re-imports from
  /// the store. The retraining scheduler calls this after staging a
  /// refreshed table: residency means "the slot's learner already holds the
  /// user's latest table", which a retrain makes false without the slot
  /// ever seeing the new version. No-op when the user is not resident.
  void invalidate(UserId user);
  /// invalidate() calls that actually dropped a residency.
  std::uint64_t invalidations() const noexcept { return invalidations_; }

  /// Arms every slot system's radio burst chain against `site` (lane =
  /// slot index). Setup phase only.
  void arm_fault_bursts(faults::Site& site) noexcept;
  /// Write-backs whose disk flush an injected crash aborted (the staged
  /// in-memory entry is kept; the flush retries on a later wear batch).
  std::uint64_t crashed_stages() const noexcept;

  /// Sessions whose user was already resident on their slot (no import).
  std::uint64_t hits() const noexcept;
  /// Sessions that had to import the user's policy from the store.
  std::uint64_t swaps() const noexcept;
  std::uint64_t sessions() const noexcept;

  UserId resident(std::size_t slot) const;
  std::uint64_t slot_sessions(std::size_t slot) const;
  const core::CoredaSystem& system(std::size_t slot) const;

 private:
  struct Slot {
    std::unique_ptr<core::CoredaSystem> system;
    UserId resident = kNoUser;
    std::uint64_t hits = 0;
    std::uint64_t swaps = 0;
    std::uint64_t sessions = 0;
    std::uint64_t crashed_stages = 0;
  };

  PolicyStore* store_;
  std::vector<Slot> slots_;
  std::uint64_t invalidations_ = 0;
};

}  // namespace coreda::serve
