#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "serve/policy_store.hpp"

namespace coreda::serve {

struct BundleStoreParams {
  /// Bundle directory, one file per user: `<dir>/user_<id>.bundle`. Empty
  /// = memory-only (the scenario benches' configuration: versions and
  /// staging still work, nothing touches disk).
  std::string dir;
};

/// Per-user "coreda-bundle v1" records for the multi-ADL serving tier.
///
/// Where PolicyStore keeps one decoded Q table per (user, ADL), the bundle
/// store keeps each user's *entire* home policy set — every ADL's v2
/// record framed into one checksummed blob (planning::save_policy_bundle).
/// One record per user means a slot checkout restores tea-making and
/// tooth-brushing policies atomically: there is no torn state where half a
/// user's ADLs are current and half are stale.
///
/// The store itself treats bundles as opaque bytes; validation happens at
/// checkout, where HomePool decodes the blob against its learners and
/// falls back to the donor baseline when the record is corrupt (counted as
/// a rejected bundle, never an error mid-serve).
///
/// Thread-safety: add_user() and restore_all() are setup-phase only.
/// stage()/bytes()/version() may run concurrently for *different* users —
/// the entry vector never moves after setup and every counter lives in the
/// user's own entry (the HomePool shards users across slots, so same-user
/// races cannot happen by construction).
class BundleStore {
 public:
  /// Creates `params.dir` when set and missing.
  explicit BundleStore(BundleStoreParams params = {});

  /// Registers a user with no bundle yet (their first checkout serves the
  /// donor baseline). Setup-phase only.
  UserId add_user(std::string name);

  std::size_t num_users() const noexcept { return entries_.size(); }
  const std::string& user_name(UserId user) const;

  /// The user's current bundle record, empty before the first stage().
  const std::string& bytes(UserId user) const;
  bool has_bundle(UserId user) const { return !bytes(user).empty(); }
  /// Bumped by every stage(); 0 before the first.
  std::uint64_t version(UserId user) const;

  /// Write-back: copies `record` into the user's entry, bumps its version,
  /// and (when a directory is configured) persists it atomically
  /// (tmp+rename). Throws std::runtime_error when the file cannot be
  /// written; the in-memory entry keeps the new record either way.
  void stage(UserId user, std::string_view record);

  /// Warm restart: loads every user's bundle file back into memory (users
  /// whose file is absent keep an empty entry). Setup-phase only; no-op
  /// when memory-only. Byte corruption is NOT detected here — checkout
  /// validation owns that.
  void restore_all();

  /// Bundle files written to disk across all users.
  std::uint64_t disk_writes() const noexcept;

  const std::string& dir() const noexcept { return params_.dir; }

 private:
  struct Entry {
    std::string name;
    std::string record;
    std::uint64_t version = 0;
    std::uint64_t disk_writes = 0;
  };

  std::string path_for(UserId user) const;

  BundleStoreParams params_;
  std::vector<Entry> entries_;
};

}  // namespace coreda::serve
