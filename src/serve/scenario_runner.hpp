#pragma once

#include <cstdint>

#include "core/home.hpp"
#include "serve/home_pool.hpp"
#include "sim/scenario_dsl.hpp"

namespace coreda::serve {

/// Compiles a scenario plan's part list into the SessionScript every served
/// session plays through (1:1 part mapping; the plan's hint becomes the
/// script hint). Pure data transformation — ADL names are validated later
/// by run_script against the live library.
core::SessionScript compile_script(const sim::ScenarioPlan& plan);

struct ScenarioRunnerParams {
  /// Pool width; scenario users shard to slot = user % slots. One exec
  /// trial per slot keeps any --jobs byte-identical.
  std::size_t slots = 4;
  core::SystemConfig system{};
  recognition::ActivityTracker::Params tracker{
      .switch_window = 2, .switch_threshold = 0.8, .switch_patience = 1};
  std::size_t pretrain_episodes = 120;
  std::uint64_t pretrain_seed = 7;
};

/// Aggregate outcome of one scenario run, summed over every session of
/// every round. All fields are exact integers (plus one order-independent
/// digest), so the regression corpus can gate them with equality.
struct ScenarioSummary {
  std::uint64_t sessions = 0;
  std::uint64_t completed_sessions = 0;
  std::uint64_t segments = 0;
  std::uint64_t segments_completed = 0;
  std::uint64_t prompts = 0;
  std::uint64_t praises = 0;
  std::uint64_t wrong_tool_recoveries = 0;
  std::uint64_t segment_switches = 0;
  std::uint64_t idle_episodes = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_swaps = 0;
  std::uint64_t rejected_bundles = 0;
  /// Wrapping sum of per-session digests (user, round, and every counter
  /// above plus elapsed time mixed through SplitMix64) — order-independent,
  /// so identical at any --jobs, yet sensitive to any behavioural change in
  /// any session.
  std::uint64_t checksum = 0;

  double completion_rate() const noexcept {
    return sessions == 0
               ? 0.0
               : static_cast<double>(completed_sessions) /
                     static_cast<double>(sessions);
  }
  double prompts_per_session() const noexcept {
    return sessions == 0 ? 0.0
                         : static_cast<double>(prompts) /
                               static_cast<double>(sessions);
  }
};

/// Executes a scenario plan against a HomePool: `plan.users` users play the
/// compiled script for `plan.rounds` rounds, with per-round severity drift,
/// compliance decay, and the plan's arrival pattern. Policies persist
/// across rounds through a memory-only BundleStore, so round r+1 serves the
/// policies round r staged — drift meets adaptation, as in the paper's
/// multi-week deployments.
///
/// Determinism: one exec trial per pool slot; slot s serves exactly the
/// users with u % slots == s in (round, arrival-order) order, and every
/// source of variation — per-user severity offset, per-session actor
/// randomness — derives from plan.seed. run(plan, 1) and run(plan, 8)
/// return identical summaries, bit for bit.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioRunnerParams params = {});

  ScenarioSummary run(const sim::ScenarioPlan& plan,
                      std::size_t jobs = 1) const;

 private:
  ScenarioRunnerParams params_;
};

/// The per-scenario metric block printed by bench_scenario_corpus, `coreda
/// scenario run`, and golden-compared by the corpus regression test. Exact
/// integers plus hexfloat derived rates (every bit gates) and the hex
/// checksum — byte-identical at any --jobs by the runner's contract.
std::string format_scenario_report(std::string_view name,
                                   const sim::ScenarioPlan& plan,
                                   const ScenarioSummary& sum);

}  // namespace coreda::serve
