#include "serve/home_pool.hpp"

#include <sstream>
#include <stdexcept>

#include "exec/trial_runner.hpp"
#include "planning/serialize.hpp"

namespace coreda::serve {

HomePool::HomePool(const adl::AdlLibrary& library, BundleStore& store,
                   HomePoolParams params)
    : library_(&library), store_(&store) {
  if (params.slots == 0) {
    throw std::invalid_argument("HomePool: slots must be > 0");
  }

  core::SystemConfig donor_config = params.system;
  donor_config.seed = params.seed;
  donor_ = std::make_unique<core::HomeDeployment>(library, donor_config);
  donor_->pretrain(params.pretrain_episodes, params.pretrain_seed);

  slots_.resize(params.slots);
  for (std::size_t i = 0; i < params.slots; ++i) {
    core::SystemConfig config = params.system;
    config.seed = exec::trial_seed(params.seed, i);
    slots_[i].home = std::make_unique<core::HomeDeployment>(library, config);
    slots_[i].home->adopt_recognizer(donor_->recognizer());
    for (const adl::Adl& adl : library.adls()) {
      slots_[i].home->import_policy(adl.name(),
                                    donor_->learner(adl.name()).q());
    }
    slots_[i].home->set_tracker_params(params.tracker);
  }
}

void HomePool::checkout(UserId user, Slot& slot) {
  if (slot.resident == user) {
    ++slot.hits;
    return;
  }
  ++slot.swaps;
  slot.resident = user;

  if (store_->has_bundle(user)) {
    // Decode the user's one bundle record into scratch tables; only when
    // *every* entry validates do the slot's learners adopt them.
    std::vector<rl::QTable> staged;
    std::vector<planning::PolicyBundleSlot> wanted;
    staged.reserve(library_->adls().size());
    wanted.reserve(library_->adls().size());
    for (const adl::Adl& adl : library_->adls()) {
      const planning::RoutineLearner& learner = slot.home->learner(adl.name());
      staged.emplace_back(learner.q().num_states(), learner.q().num_actions());
      wanted.push_back(planning::PolicyBundleSlot{
          adl.name(), learner.state_codec().symbols(),
          learner.action_codec().tools(), &staged.back()});
    }
    try {
      std::istringstream in(store_->bytes(user));
      planning::load_policy_bundle(in, wanted);
      for (std::size_t i = 0; i < staged.size(); ++i) {
        slot.home->import_policy(library_->adls()[i].name(), staged[i]);
      }
      return;
    } catch (const std::runtime_error&) {
      ++slot.rejected;  // corrupt record: fall through to the baseline
    }
  }

  for (const adl::Adl& adl : library_->adls()) {
    slot.home->import_policy(adl.name(), donor_->learner(adl.name()).q());
  }
}

void HomePool::stage_back(UserId user, Slot& slot) {
  std::vector<planning::PolicyBundleItem> items;
  items.reserve(library_->adls().size());
  for (const adl::Adl& adl : library_->adls()) {
    const planning::RoutineLearner& learner = slot.home->learner(adl.name());
    items.push_back(planning::PolicyBundleItem{
        adl.name(), learner.state_codec().symbols(),
        learner.action_codec().tools(), &learner.q()});
  }
  std::ostringstream out;
  planning::save_policy_bundle(out, items, store_->version(user) + 1);
  store_->stage(user, out.str());
}

core::HomeScriptResult HomePool::serve_script(
    UserId user, const core::SessionScript& script,
    const patient::PatientProfile& profile, sim::Duration max_duration) {
  Slot& slot = slots_[slot_for(user)];
  checkout(user, slot);
  core::HomeScriptResult result =
      slot.home->run_script(script, profile, max_duration);
  stage_back(user, slot);
  ++slot.sessions;
  return result;
}

std::uint64_t HomePool::hits() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.hits;
  return total;
}

std::uint64_t HomePool::swaps() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.swaps;
  return total;
}

std::uint64_t HomePool::sessions() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.sessions;
  return total;
}

std::uint64_t HomePool::rejected_bundles() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) total += slot.rejected;
  return total;
}

UserId HomePool::resident(std::size_t slot) const {
  return slots_.at(slot).resident;
}

const core::HomeDeployment& HomePool::deployment(std::size_t slot) const {
  return *slots_.at(slot).home;
}

}  // namespace coreda::serve
