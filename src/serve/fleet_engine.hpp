#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"
#include "serve/segment_store.hpp"
#include "util/latency_histogram.hpp"

namespace coreda::serve {

struct FleetEngineParams {
  /// Per-core shards. A user lives on shard `user % shards` forever; a
  /// drain runs one TrialRunner trial per shard, so any --jobs value
  /// produces byte-identical tables and stdout (the ServeEngine determinism
  /// argument, lifted from slots to shards).
  std::size_t shards = 4;
  /// Warm CoredaSystem slots per shard. Within its shard a user maps to
  /// slot `(user / shards) % slots_per_shard`.
  std::size_t slots_per_shard = 2;
  /// Slot system `shard * slots_per_shard + slot` is seeded with
  /// exec::trial_seed(seed, that global index).
  std::uint64_t seed = 99;
  /// Template for every slot's system (seed overridden per slot).
  core::SystemConfig system{};
  /// Wall-clock cap per session (virtual time).
  sim::Duration session_cap = sim::Duration::minutes(15.0);
  /// Append the user's table into the segment store every Nth session
  /// (wear batching at fleet scale; 0 = only on eviction/flush). An
  /// evicted user with unwritten sessions is always appended first, so
  /// learning-enabled fleets never lose table updates.
  std::size_t write_back_every = 1;
};

/// Cumulative fleet-wide serving counters, merged across shards after a
/// drain. All fields except `latency` are deterministic functions of the
/// configuration + enqueue history; `latency` is wall-clock and belongs in
/// timing side-channels only, never on stdout.
struct FleetReport {
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;
  std::uint64_t prompts = 0;
  std::uint64_t checksum = 0;          ///< order-independent digest
  std::uint64_t pool_hits = 0;         ///< user already resident on its slot
  std::uint64_t cold_loads = 0;        ///< policy loaded from the mmap store
  std::uint64_t reference_starts = 0;  ///< no stored record: donor table
  std::uint64_t appends = 0;           ///< write-backs into the store
  util::LatencyHistogram latency;      ///< per-session serve latency (ns)
};

/// The million-user tier: a sharded serving frontend over a SegmentStore.
///
/// Where ServeEngine keeps a resident QTable per user (PolicyStore entry),
/// FleetEngine keeps ~25 bytes of RAM per registered user — severity,
/// version, unflushed count — plus the store's index entry; every table
/// lives in the mmap'd segment store and is faulted in on checkout. That is
/// what lets one box *register* 100k–1M users while only the active set
/// costs anything per round.
///
/// Thread-safety mirrors the store's writer partitioning: the engine sets
/// the store's writers == shards and only ever touches user `u` from shard
/// `u % shards`, so concurrent drains append to disjoint segments and
/// disjoint index entries. register_user / enqueue / flush_residents /
/// dump_policies are main-thread (setup or post-drain) only.
class FleetEngine {
 public:
  static constexpr std::uint64_t kNoUser =
      std::numeric_limits<std::uint64_t>::max();

  /// `library`, `adl`, `store` and `reference` must outlive the engine.
  /// `reference` is the donor table users start from before their first
  /// write-back; its shape must match the store's schema.
  /// Throws std::invalid_argument when store.writers() != params.shards
  /// (the partitioning argument above would not hold).
  FleetEngine(const adl::AdlLibrary& library, const adl::Adl& adl,
              SegmentStore& store, const rl::QTable& reference,
              FleetEngineParams params = {});

  /// Registers a user with the given dementia severity. Ids are dense and
  /// shared with the store. Setup-phase only.
  std::uint64_t register_user(double severity);
  std::size_t num_users() const noexcept { return severity_.size(); }

  std::size_t shard_for(std::uint64_t user) const noexcept {
    return static_cast<std::size_t>(user % shards_.size());
  }

  /// Queues one session for the user (bucketed straight onto its shard —
  /// no per-drain redistribution pass).
  void enqueue(std::uint64_t user);
  std::size_t queued() const noexcept;

  /// Serves every queued session, one trial per shard, and returns the
  /// merged cumulative report.
  FleetReport drain(exec::TrialRunner& runner);

  /// Appends every resident table with unwritten sessions to the store
  /// (post-drain, main thread) — the fleet-wide flush_all.
  void flush_residents();

  /// Clears the per-shard latency histograms (main thread, between drains).
  /// The bench calls this after its warm-up round so the reported
  /// percentiles cover only the timed traffic.
  void reset_latency();

  /// Hexfloat dump of every user's *stored* table and version — the
  /// cross---jobs byte-identity witness the determinism test compares.
  void dump_policies(std::ostream& out) const;

  std::uint64_t version(std::uint64_t user) const;
  const SegmentStore& store() const noexcept { return *store_; }
  const FleetEngineParams& params() const noexcept { return params_; }

 private:
  struct Slot {
    std::unique_ptr<core::CoredaSystem> system;
    std::uint64_t resident = kNoUser;
  };
  struct Shard {
    explicit Shard(std::size_t num_states, std::size_t num_actions)
        : scratch_q(num_states, num_actions) {}
    std::vector<Slot> slots;
    std::vector<std::uint64_t> queue;  ///< users, in enqueue order
    // Per-shard scratch reused across every session of every drain: the
    // serve loop is allocation-free at steady state.
    core::SessionResult result;
    patient::PatientProfile profile;
    rl::QTable scratch_q;
    util::LatencyHistogram latency;
    std::uint64_t sessions = 0;
    std::uint64_t completed = 0;
    std::uint64_t prompts = 0;
    std::uint64_t checksum = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t cold_loads = 0;
    std::uint64_t reference_starts = 0;
    std::uint64_t appends = 0;
  };

  std::size_t slot_in_shard(std::uint64_t user) const noexcept {
    return static_cast<std::size_t>((user / shards_.size()) %
                                    params_.slots_per_shard);
  }
  void serve_one(Shard& sh, std::uint64_t user);
  void append_user(Shard& sh, const Slot& slot, std::uint64_t user);

  FleetEngineParams params_;
  SegmentStore* store_;
  const rl::QTable* reference_;
  std::vector<Shard> shards_;
  // Dense per-user state — the entire RAM cost of a registered user.
  std::vector<double> severity_;
  std::vector<std::uint64_t> version_;
  std::vector<std::uint32_t> unflushed_;
};

}  // namespace coreda::serve
