#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <vector>

#include "core/system.hpp"
#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"
#include "serve/segment_store.hpp"
#include "util/latency_histogram.hpp"

namespace coreda::serve {

struct FleetEngineParams {
  /// Per-core shards. A user lives on shard `user % shards` forever; a
  /// drain runs one TrialRunner trial per shard, so any --jobs value
  /// produces byte-identical tables and stdout (the ServeEngine determinism
  /// argument, lifted from slots to shards).
  std::size_t shards = 4;
  /// Warm CoredaSystem slots per shard. Within its shard a user maps to
  /// slot `(user / shards) % slots_per_shard`.
  std::size_t slots_per_shard = 2;
  /// Slot system `shard * slots_per_shard + slot` is seeded with
  /// exec::trial_seed(seed, that global index).
  std::uint64_t seed = 99;
  /// Template for every slot's system (seed overridden per slot).
  core::SystemConfig system{};
  /// Wall-clock cap per session (virtual time).
  sim::Duration session_cap = sim::Duration::minutes(15.0);
  /// Append the user's table into the segment store every Nth session
  /// (wear batching at fleet scale; 0 = only on eviction/flush). An
  /// evicted user with unwritten sessions is always appended first, so
  /// learning-enabled fleets never lose table updates. Regardless of the
  /// setting, a user is force-appended when its 8-bit unwritten-session
  /// counter would saturate (255 sessions), keeping the packed record
  /// exact.
  std::size_t write_back_every = 1;
  /// A session whose post-update prompt EWMA (alpha = 1/8) reaches this
  /// many prompts flags the user as drifting — the care-side signal that a
  /// patient needs attention, surfaced fleet-wide for ~0 resident bytes.
  double drift_threshold = 6.0;
};

/// Cumulative fleet-wide serving counters, merged across shards after a
/// drain. All fields except `latency` are deterministic functions of the
/// configuration + enqueue history; `latency` is wall-clock and belongs in
/// timing side-channels only, never on stdout.
struct FleetReport {
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;
  std::uint64_t prompts = 0;
  std::uint64_t checksum = 0;          ///< order-independent digest
  std::uint64_t pool_hits = 0;         ///< user already resident on its slot
  std::uint64_t cold_loads = 0;        ///< policy loaded from the mmap store
  std::uint64_t reference_starts = 0;  ///< no stored record: donor table
  std::uint64_t appends = 0;           ///< write-backs into the store
  std::uint64_t drift_flagged = 0;     ///< sessions whose EWMA crossed the
                                       ///< drift threshold
  std::uint64_t dropped_sessions = 0;  ///< injected node dropouts (the
                                       ///< session never ran; retried only
                                       ///< if re-enqueued)
  std::uint64_t crashed_appends = 0;   ///< store write-backs aborted by an
                                       ///< injected crash (entry stays
                                       ///< unflushed and retries later)
  std::uint64_t radio_lost_frames = 0; ///< frames dropped by injected
                                       ///< Gilbert–Elliott radio bursts
  util::LatencyHistogram latency;      ///< per-session serve latency (ns)
};

/// The million-user tier: a sharded serving frontend over a SegmentStore.
///
/// Where ServeEngine keeps a resident QTable per user (PolicyStore entry),
/// FleetEngine keeps FOUR bytes of RAM per registered user — one packed u32
/// holding quantized severity, the unwritten-session count, and a prompt
/// EWMA for drift flagging — plus ~9 bytes of store index slab. The
/// version is not resident at all: it is derived as the store's latest
/// version plus the unwritten-session count (both always advance
/// together). Every table lives in the mmap'd segment store and is faulted
/// in on checkout. Total resident cost lands under 16 bytes per registered
/// user, which is what lets one box register a million users while only
/// the active set costs anything per round.
///
/// Thread-safety mirrors the store's writer partitioning: the engine sets
/// the store's writers == shards and only ever touches user `u` from shard
/// `u % shards`, so concurrent drains append to disjoint segments and
/// disjoint index entries. register_user / enqueue / flush_residents /
/// dump_policies are main-thread (setup or post-drain) only.
class FleetEngine {
 public:
  static constexpr std::uint64_t kNoUser =
      std::numeric_limits<std::uint64_t>::max();

  /// `library`, `adl`, `store` and `reference` must outlive the engine.
  /// `reference` is the donor table users start from before their first
  /// write-back; its shape must match the store's schema.
  /// Throws std::invalid_argument when store.writers() != params.shards
  /// (the partitioning argument above would not hold).
  FleetEngine(const adl::AdlLibrary& library, const adl::Adl& adl,
              SegmentStore& store, const rl::QTable& reference,
              FleetEngineParams params = {});

  /// Pre-sizes the packed-record slab and the store's index for `users`
  /// registrations — one allocation instead of doubling growth (setup
  /// phase).
  void reserve_users(std::uint64_t users);

  /// Registers a user with the given dementia severity (quantized to 1/256
  /// steps). Ids are dense and shared with the store. Setup-phase only.
  std::uint64_t register_user(double severity);
  std::size_t num_users() const noexcept { return packed_.size(); }

  std::size_t shard_for(std::uint64_t user) const noexcept {
    return static_cast<std::size_t>(user % shards_.size());
  }

  /// Queues one session for the user (bucketed straight onto its shard —
  /// no per-drain redistribution pass).
  void enqueue(std::uint64_t user);
  std::size_t queued() const noexcept;

  /// Serves every queued session, one trial per shard, and returns the
  /// merged cumulative report.
  FleetReport drain(exec::TrialRunner& runner);

  /// Appends every resident table with unwritten sessions to the store
  /// (post-drain, main thread) — the fleet-wide flush_all.
  void flush_residents();

  /// Clears the per-shard latency histograms (main thread, between drains).
  /// The bench calls this after its warm-up round so the reported
  /// percentiles cover only the timed traffic.
  void reset_latency();

  /// Arms the fleet's fault seams against `injector`'s plan: shard stalls
  /// ("fleet.stall"), node dropouts ("fleet.node_dropout"), the store's
  /// crash/corruption sites, and every slot system's radio burst chain
  /// ("radio.loss_burst", lane = global slot index). Setup phase or between
  /// drains only — never while shard trials run.
  void attach_faults(faults::Injector& injector);

  /// Hexfloat dump of every user's *stored* table and version — the
  /// cross---jobs byte-identity witness the determinism test compares.
  void dump_policies(std::ostream& out) const;

  /// The user's session count lineage: stored version + sessions not yet
  /// appended (derived — no resident u64 per user).
  std::uint64_t version(std::uint64_t user) const;
  /// The user's prompt EWMA in prompts/session (0 until the first session).
  double prompt_ewma(std::uint64_t user) const;
  /// Bytes of engine-resident per-user state: the packed u32 slab. The
  /// store's index slab (SegmentStore::index_slab_bytes) is the only other
  /// per-user resident cost.
  std::size_t resident_state_bytes() const noexcept {
    return packed_.size() * sizeof(std::uint32_t);
  }
  const SegmentStore& store() const noexcept { return *store_; }
  const FleetEngineParams& params() const noexcept { return params_; }

 private:
  // One u32 of resident state per registered user:
  //   [7:0]   severity, quantized to 1/256 (dequantized as (q + 0.5)/256)
  //   [15:8]  sessions since the last store append (append forced at 255)
  //   [23:16] prompts-per-session EWMA, 5.3 fixed point, alpha = 1/8
  //   [24]    EWMA primed (first session seeds instead of blending)
  static constexpr std::uint32_t kUnflushedMask = 0xFFu << 8;
  static constexpr std::uint32_t kEwmaMask = 0xFFu << 16;
  static constexpr std::uint32_t kPrimedBit = 1u << 24;

  static std::uint32_t quantize_severity(double severity) noexcept {
    if (severity <= 0.0) return 0;
    if (severity >= 1.0) return 255;
    const auto q = static_cast<std::uint32_t>(severity * 256.0);
    return q > 255 ? 255 : q;
  }
  static double severity_of(std::uint32_t packed) noexcept {
    return (static_cast<double>(packed & 0xFF) + 0.5) / 256.0;
  }
  static std::uint32_t unflushed_count(std::uint32_t packed) noexcept {
    return (packed >> 8) & 0xFF;
  }

  struct Slot {
    std::unique_ptr<core::CoredaSystem> system;
    std::uint64_t resident = kNoUser;
  };
  struct Shard {
    explicit Shard(std::size_t num_states, std::size_t num_actions)
        : scratch_q(num_states, num_actions) {}
    std::vector<Slot> slots;
    std::vector<std::uint64_t> queue;  ///< users, in enqueue order
    // Per-shard scratch reused across every session of every drain: the
    // serve loop is allocation-free at steady state.
    core::SessionResult result;
    patient::PatientProfile profile;
    rl::QTable scratch_q;
    util::LatencyHistogram latency;
    std::uint64_t sessions = 0;
    std::uint64_t completed = 0;
    std::uint64_t prompts = 0;
    std::uint64_t checksum = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t cold_loads = 0;
    std::uint64_t reference_starts = 0;
    std::uint64_t appends = 0;
    std::uint64_t drift_flagged = 0;
    std::uint64_t attempts = 0;  ///< serve_one calls (dropout decision tick)
    std::uint64_t dropped = 0;
    std::uint64_t crashed_appends = 0;
  };

  std::size_t slot_in_shard(std::uint64_t user) const noexcept {
    return static_cast<std::size_t>((user / shards_.size()) %
                                    params_.slots_per_shard);
  }
  void serve_one(Shard& sh, std::uint64_t user);
  void append_user(Shard& sh, const Slot& slot, std::uint64_t user);

  FleetEngineParams params_;
  SegmentStore* store_;
  const rl::QTable* reference_;
  std::vector<Shard> shards_;
  faults::Site stall_site_{"fleet.stall"};
  faults::Site dropout_site_{"fleet.node_dropout"};
  faults::Site radio_site_{"radio.loss_burst"};
  std::uint64_t drains_ = 0;  ///< stall decision tick
  /// Dense per-user state — the ENTIRE engine-resident RAM cost of a
  /// registered user (layout above).
  std::vector<std::uint32_t> packed_;
};

}  // namespace coreda::serve
