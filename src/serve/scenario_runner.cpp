#include "serve/scenario_runner.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
#include <vector>

#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"

namespace coreda::serve {
namespace {

/// SplitMix64 finalizer (same construction as faults::mix64) — the digest
/// primitive behind the per-session checksum and per-user severity offsets.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_interval(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Users arriving in round `r`, in arrival order.
std::vector<UserId> arrivals_for_round(const sim::ScenarioPlan& plan,
                                       std::uint64_t r) {
  const auto users = static_cast<UserId>(plan.users);
  std::vector<UserId> out;
  if (plan.arrivals == "roundrobin") {
    const std::uint64_t active =
        plan.active == 0 ? plan.users : std::min(plan.active, plan.users);
    out.reserve(active);
    const std::uint64_t start = (r * active) % plan.users;
    for (std::uint64_t k = 0; k < active; ++k) {
      out.push_back(static_cast<UserId>((start + k) % plan.users));
    }
  } else {  // "all"
    out.reserve(users);
    for (UserId u = 0; u < users; ++u) out.push_back(u);
  }
  return out;
}

/// Profile of user `u` in round `r`: plan severity plus a deterministic
/// per-user offset in [-0.1, 0.1) and `r` rounds of drift, compliance
/// decayed multiplicatively per round.
patient::PatientProfile profile_for(const sim::ScenarioPlan& plan,
                                    const std::string& name, UserId u,
                                    std::uint64_t r) {
  const double offset =
      unit_interval(mix64(plan.seed ^ (0xC0FFEEULL + u))) * 0.2 - 0.1;
  const double severity =
      std::clamp(plan.severity + offset +
                     static_cast<double>(r) * plan.severity_drift,
                 0.0, 1.0);
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity(name, severity);
  const double keep = 1.0 - plan.compliance_decay;
  for (std::uint64_t i = 0; i < r; ++i) {
    profile.comply_minimal *= keep;
    profile.comply_specific *= keep;
  }
  return profile;
}

struct SlotOutcome {
  ScenarioSummary sum;
};

void fold_session(ScenarioSummary& sum, const sim::ScenarioPlan& plan,
                  UserId user, std::uint64_t round,
                  const core::HomeScriptResult& r) {
  ++sum.sessions;
  if (r.completed) ++sum.completed_sessions;
  sum.segments += r.segments;
  sum.segments_completed += r.segments_completed;
  sum.prompts += r.session.prompts_total;
  sum.praises += r.session.praises;
  sum.wrong_tool_recoveries += r.session.wrong_tool_recoveries;
  sum.segment_switches += r.session.segment_switches;
  sum.idle_episodes += r.idle_episodes;

  std::uint64_t digest = mix64(plan.seed ^ mix64(user) ^ (round << 32));
  const auto fold = [&digest](std::uint64_t v) { digest = mix64(digest ^ v); };
  fold(r.session.prompts_total);
  fold(r.session.praises);
  fold(r.session.wrong_tool_recoveries);
  fold(r.session.segment_switches);
  fold(r.segments_completed);
  fold(r.idle_episodes);
  fold(r.completed ? 1 : 0);
  fold(std::bit_cast<std::uint64_t>(
      static_cast<std::int64_t>(r.session.elapsed.total_micros())));
  sum.checksum += digest;  // wrapping: order-independent across slots
}

}  // namespace

core::SessionScript compile_script(const sim::ScenarioPlan& plan) {
  core::SessionScript script;
  script.hint = plan.hint;
  script.parts.reserve(plan.parts.size());
  for (const sim::ScenarioPart& part : plan.parts) {
    core::ScriptPart compiled;
    compiled.adl = part.adl;
    compiled.steps = static_cast<std::size_t>(part.steps);
    compiled.resume = part.resume;
    compiled.freeze = static_cast<std::size_t>(part.freeze);
    compiled.wrong_tool = static_cast<std::size_t>(part.wrong_tool);
    compiled.wrong_tool_id = adl::kNoTool;
    compiled.pause = sim::Duration::seconds(part.pause_s);
    script.parts.push_back(std::move(compiled));
  }
  return script;
}

ScenarioRunner::ScenarioRunner(ScenarioRunnerParams params)
    : params_(std::move(params)) {}

ScenarioSummary ScenarioRunner::run(const sim::ScenarioPlan& plan,
                                    std::size_t jobs) const {
  const adl::AdlLibrary library;
  BundleStore store;  // memory-only: rounds share policies, nothing on disk
  for (std::uint64_t u = 0; u < plan.users; ++u) {
    store.add_user("user" + std::to_string(u));
  }

  HomePoolParams pool_params;
  pool_params.slots = params_.slots;
  pool_params.seed = plan.seed;
  pool_params.system = params_.system;
  pool_params.tracker = params_.tracker;
  pool_params.pretrain_episodes = params_.pretrain_episodes;
  pool_params.pretrain_seed = params_.pretrain_seed;
  HomePool pool(library, store, pool_params);

  const core::SessionScript script = compile_script(plan);
  const sim::Duration deadline = sim::Duration::minutes(plan.max_minutes);

  // One trial per slot: slot s serves exactly the users it owns
  // (u % slots == s), in (round, arrival-order) order. Slots touch
  // disjoint deployments and disjoint store entries, so trials are
  // data-race-free and the outcome is independent of `jobs`.
  exec::TrialRunner runner(jobs);
  const std::vector<SlotOutcome> outcomes = runner.run(
      pool.slots(), plan.seed, [&](exec::TrialContext& ctx) {
        SlotOutcome out;
        for (std::uint64_t r = 0; r < plan.rounds; ++r) {
          for (const UserId user : arrivals_for_round(plan, r)) {
            if (pool.slot_for(user) != ctx.index) continue;
            const patient::PatientProfile profile =
                profile_for(plan, store.user_name(user), user, r);
            const core::HomeScriptResult result =
                pool.serve_script(user, script, profile, deadline);
            fold_session(out.sum, plan, user, r, result);
          }
        }
        return out;
      });

  ScenarioSummary sum;
  for (const SlotOutcome& out : outcomes) {
    sum.sessions += out.sum.sessions;
    sum.completed_sessions += out.sum.completed_sessions;
    sum.segments += out.sum.segments;
    sum.segments_completed += out.sum.segments_completed;
    sum.prompts += out.sum.prompts;
    sum.praises += out.sum.praises;
    sum.wrong_tool_recoveries += out.sum.wrong_tool_recoveries;
    sum.segment_switches += out.sum.segment_switches;
    sum.idle_episodes += out.sum.idle_episodes;
    sum.checksum += out.sum.checksum;
  }
  sum.pool_hits = pool.hits();
  sum.pool_swaps = pool.swaps();
  sum.rejected_bundles = pool.rejected_bundles();
  return sum;
}

std::string format_scenario_report(std::string_view name,
                                   const sim::ScenarioPlan& plan,
                                   const ScenarioSummary& sum) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "[%.*s] users=%llu rounds=%llu sessions=%llu\n",
                static_cast<int>(name.size()), name.data(),
                static_cast<unsigned long long>(plan.users),
                static_cast<unsigned long long>(plan.rounds),
                static_cast<unsigned long long>(sum.sessions));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  completed=%llu segments=%llu/%llu prompts=%llu praises=%llu "
      "recoveries=%llu switches=%llu idle=%llu\n",
      static_cast<unsigned long long>(sum.completed_sessions),
      static_cast<unsigned long long>(sum.segments_completed),
      static_cast<unsigned long long>(sum.segments),
      static_cast<unsigned long long>(sum.prompts),
      static_cast<unsigned long long>(sum.praises),
      static_cast<unsigned long long>(sum.wrong_tool_recoveries),
      static_cast<unsigned long long>(sum.segment_switches),
      static_cast<unsigned long long>(sum.idle_episodes));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  pool: hits=%llu swaps=%llu rejected=%llu\n",
                static_cast<unsigned long long>(sum.pool_hits),
                static_cast<unsigned long long>(sum.pool_swaps),
                static_cast<unsigned long long>(sum.rejected_bundles));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  completion_rate=%a prompts_per_session=%a\n",
                sum.completion_rate(), sum.prompts_per_session());
  out += buf;
  std::snprintf(buf, sizeof(buf), "  checksum=%016llx\n",
                static_cast<unsigned long long>(sum.checksum));
  out += buf;
  return out;
}

}  // namespace coreda::serve
