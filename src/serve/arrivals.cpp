#include "serve/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace coreda::serve {

ZipfianArrivals::ZipfianArrivals(std::size_t n, double exponent,
                                 std::uint64_t seed)
    : exponent_(exponent), rng_(seed) {
  if (n == 0) {
    throw std::invalid_argument("ZipfianArrivals: n must be >= 1");
  }
  if (!(exponent > 0.0)) {
    throw std::invalid_argument("ZipfianArrivals: exponent must be > 0");
  }
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail unreachable
}

std::size_t ZipfianArrivals::next() noexcept {
  const double u = rng_.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace coreda::serve
