#include "serve/bundle_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace coreda::serve {

BundleStore::BundleStore(BundleStoreParams params)
    : params_(std::move(params)) {
  if (!params_.dir.empty()) {
    std::filesystem::create_directories(params_.dir);
  }
}

UserId BundleStore::add_user(std::string name) {
  entries_.push_back(Entry{std::move(name), {}, 0, 0});
  return static_cast<UserId>(entries_.size() - 1);
}

const std::string& BundleStore::user_name(UserId user) const {
  return entries_.at(user).name;
}

const std::string& BundleStore::bytes(UserId user) const {
  return entries_.at(user).record;
}

std::uint64_t BundleStore::version(UserId user) const {
  return entries_.at(user).version;
}

std::string BundleStore::path_for(UserId user) const {
  return params_.dir + "/user_" + std::to_string(user) + ".bundle";
}

void BundleStore::stage(UserId user, std::string_view record) {
  Entry& entry = entries_.at(user);
  entry.record.assign(record.data(), record.size());
  ++entry.version;
  if (params_.dir.empty()) return;

  const std::string path = path_for(user);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("BundleStore: cannot write " + tmp);
    }
    out.write(entry.record.data(),
              static_cast<std::streamsize>(entry.record.size()));
    if (!out) {
      throw std::runtime_error("BundleStore: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("BundleStore: cannot rename " + tmp + " to " +
                             path);
  }
  ++entry.disk_writes;
}

void BundleStore::restore_all() {
  if (params_.dir.empty()) return;
  for (UserId user = 0; user < entries_.size(); ++user) {
    std::ifstream in(path_for(user), std::ios::binary);
    if (!in) continue;  // no bundle persisted for this user yet
    std::ostringstream blob;
    blob << in.rdbuf();
    entries_[user].record = blob.str();
  }
}

std::uint64_t BundleStore::disk_writes() const noexcept {
  std::uint64_t total = 0;
  for (const Entry& entry : entries_) total += entry.disk_writes;
  return total;
}

}  // namespace coreda::serve
