#include "serve/retrain_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace coreda::serve {

RetrainScheduler::RetrainScheduler(const adl::Adl& adl, PolicyStore& store,
                                   planning::LearnerConfig learner_config,
                                   std::size_t lanes, RetrainParams params)
    : params_(params), store_(&store) {
  if (lanes == 0) {
    throw std::invalid_argument("RetrainScheduler: lanes must be >= 1");
  }
  if (params_.ring_capacity == 0 || params_.max_transcript_steps == 0) {
    throw std::invalid_argument(
        "RetrainScheduler: ring_capacity and max_transcript_steps must be "
        ">= 1");
  }
  if (params_.min_transcripts == 0 || params_.replay_passes == 0) {
    throw std::invalid_argument(
        "RetrainScheduler: min_transcripts and replay_passes must be >= 1");
  }
  if (params_.lane_width == 0) {
    throw std::invalid_argument("RetrainScheduler: lane_width must be >= 1");
  }
  lane_queues_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    Lane lane;
    // One warm learner per lane, rebuilt for every job via
    // begin_retraining; the placeholder seed never trains anything.
    lane.learner = std::make_unique<planning::RoutineLearner>(
        adl, util::Rng(0), learner_config);
    if (params_.lane_width > 1) {
      // The lockstep replay engine; transcript slots bound episode length,
      // so pre-sizing its traces/scratch here makes retrains alloc-free.
      lane.trainer = std::make_unique<planning::LaneTrainer>(
          adl, params_.lane_width, learner_config,
          params_.max_transcript_steps);
      const rl::QTable& shape = lane.learner->q();
      lane.scratch = std::make_unique<rl::QTable>(shape.num_states(),
                                                  shape.num_actions());
    }
    lane_queues_.push_back(std::move(lane));
  }
}

void RetrainScheduler::add_user() {
  Ring ring;
  ring.data.resize(params_.ring_capacity * params_.max_transcript_steps);
  ring.lengths.resize(params_.ring_capacity, 0);
  rings_.push_back(std::move(ring));
  attempts_.push_back(0);
  // Worst case every user queues one job on the same lane: reserving the
  // user count keeps enqueue() allocation-free from here on.
  for (Lane& lane : lane_queues_) lane.queue.reserve(rings_.size());
  retrained_.reserve(rings_.size());
}

RetrainScheduler::Ring& RetrainScheduler::ring(UserId user) {
  if (user >= rings_.size()) {
    throw std::out_of_range("RetrainScheduler: unknown user id " +
                            std::to_string(user));
  }
  return rings_[user];
}

const RetrainScheduler::Ring& RetrainScheduler::ring(UserId user) const {
  return const_cast<RetrainScheduler*>(this)->ring(user);
}

void RetrainScheduler::record(UserId user,
                              std::span<const adl::StepId> steps) {
  Ring& r = ring(user);
  const std::size_t len =
      std::min(steps.size(), params_.max_transcript_steps);
  adl::StepId* slot = r.data.data() + r.head * params_.max_transcript_steps;
  std::copy_n(steps.data(), len, slot);
  r.lengths[r.head] = static_cast<std::uint32_t>(len);
  r.head = (r.head + 1) % params_.ring_capacity;
  r.count = std::min(r.count + 1, params_.ring_capacity);
}

std::size_t RetrainScheduler::transcripts(UserId user) const {
  return ring(user).count;
}

std::span<const adl::StepId> RetrainScheduler::transcript(
    UserId user, std::size_t i) const {
  const Ring& r = ring(user);
  if (i >= r.count) {
    throw std::out_of_range("RetrainScheduler: transcript index " +
                            std::to_string(i) + " out of range");
  }
  const std::size_t cap = params_.ring_capacity;
  const std::size_t slot = (r.head + cap - r.count + i) % cap;
  return {r.data.data() + slot * params_.max_transcript_steps,
          r.lengths[slot]};
}

void RetrainScheduler::enqueue(UserId user) {
  (void)ring(user);  // validate the id
  lane_queues_[lane_for(user)].queue.push_back(user);
}

std::size_t RetrainScheduler::queued() const noexcept {
  std::size_t total = 0;
  for (const Lane& lane : lane_queues_) total += lane.queue.size();
  return total;
}

std::size_t RetrainScheduler::retrain_user(UserId user) {
  const Ring& r = ring(user);
  planning::RoutineLearner& learner = *lane_queues_[lane_for(user)].learner;
  // The retrain stream is keyed by the user, not the trial: the outcome
  // cannot depend on which lane (or how many) the job shares a drain with.
  learner.begin_retraining(store_->q(user),
                           util::Rng(exec::trial_seed(params_.seed, user)));
  std::size_t episodes = 0;
  for (std::size_t pass = 0; pass < params_.replay_passes; ++pass) {
    for (std::size_t i = 0; i < r.count; ++i) {
      learner.train_episode(transcript(user, i));
      ++episodes;
    }
  }
  // Stage the refreshed table back: a new version for the store, flushed to
  // disk on the same wear batch as any serve-path write-back.
  stage_retrained(user, learner.q());
  return episodes;
}

bool RetrainScheduler::stage_retrained(UserId user, const rl::QTable& q) {
  // Abort seam: the job dies after replay, before publishing — the user
  // keeps the stale table and the drift flag, and the engine's cooldown
  // retries on a later drain. The per-user attempt counter advances even on
  // an abort, so a retried job rolls a fresh decision.
  const std::uint32_t attempt = ++attempts_[user];
  if (abort_site_.should_inject(user, attempt)) {
    aborted_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  try {
    store_->stage(user, q);
  } catch (const faults::InjectedCrash&) {
    // stage() updated the in-memory entry before the disk flush crashed:
    // the refreshed table IS live and versioned, only its persistence is
    // deferred to a later wear batch.
    crashed_stages_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

std::size_t RetrainScheduler::retrain_batch(std::size_t lane,
                                            std::span<const UserId> users) {
  planning::LaneTrainer& trainer = *lane_queues_[lane].trainer;
  std::size_t episodes = 0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    trainer.begin_retraining(
        i, store_->q(users[i]),
        util::Rng(exec::trial_seed(params_.seed, users[i])));
  }
  // Pass-major lockstep over every slot's replay sequence (the exact
  // episode order retrain_user feeds its scalar learner), ragged when
  // users' rings hold different transcript counts.
  for (std::size_t round = 0;; ++round) {
    bool any = false;
    for (std::size_t i = 0; i < users.size(); ++i) {
      const Ring& r = ring(users[i]);
      if (round >= params_.replay_passes * r.count) continue;
      trainer.queue_episode(i, transcript(users[i], round % r.count));
      any = true;
      ++episodes;
    }
    if (!any) break;
    trainer.train_queued();
  }
  rl::QTable& scratch = *lane_queues_[lane].scratch;
  for (std::size_t i = 0; i < users.size(); ++i) {
    trainer.export_q(i, scratch);
    stage_retrained(users[i], scratch);
  }
  return episodes;
}

std::span<const UserId> RetrainScheduler::drain(exec::TrialRunner& runner) {
  retrained_.clear();
  if (queued() == 0) return retrained_;

  // One trial per lane, like the engine's serve drain: a lane's jobs run
  // serially in enqueue order on whichever worker takes the trial. Jobs of
  // one lane share that lane's learner; jobs of different lanes touch
  // disjoint learners, rings and store entries. With lane_width > 1 the
  // lane queue is chunked through the lane's lockstep trainer instead —
  // same per-user streams, same staging order, byte-identical outcome.
  const std::size_t width = params_.lane_width;
  std::vector<std::size_t> lane_episodes(lane_queues_.size(), 0);
  runner.run(lane_queues_.size(), /*base_seed=*/0,
             [&](exec::TrialContext& ctx) -> char {
               const std::vector<UserId>& queue =
                   lane_queues_[ctx.index].queue;
               if (width > 1) {
                 for (std::size_t base = 0; base < queue.size();
                      base += width) {
                   const std::size_t n =
                       std::min(width, queue.size() - base);
                   lane_episodes[ctx.index] += retrain_batch(
                       ctx.index, {queue.data() + base, n});
                 }
               } else {
                 for (const UserId user : queue) {
                   lane_episodes[ctx.index] += retrain_user(user);
                 }
               }
               return 0;
             });

  for (std::size_t lane = 0; lane < lane_queues_.size(); ++lane) {
    for (const UserId user : lane_queues_[lane].queue) {
      retrained_.push_back(user);
      ++counters_.jobs;
    }
    counters_.episodes += lane_episodes[lane];
    lane_queues_[lane].queue.clear();
  }
  return retrained_;
}

}  // namespace coreda::serve
