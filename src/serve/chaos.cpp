#include "serve/chaos.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "util/alloc_counter.hpp"

namespace coreda::serve {

namespace {

/// Same severity band as every serving bench, a pure function of the user
/// index, so the soak serves the exact population the baselines price.
double user_severity(std::uint64_t user) {
  util::Rng rng(exec::trial_seed(9001, user));
  return 0.1 + 0.4 * rng.uniform();
}

patient::PatientProfile user_profile(std::size_t user) {
  return patient::PatientProfile::with_severity("U" + std::to_string(user),
                                                user_severity(user));
}

std::vector<adl::StepId> primary_routine(const adl::Adl& adl) {
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : adl.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  return routine;
}

std::unique_ptr<planning::RoutineLearner> trained_learner(
    const adl::Adl& adl, std::uint64_t seed, int episodes,
    const std::vector<adl::StepId>& routine) {
  auto learner = std::make_unique<planning::RoutineLearner>(adl,
                                                            util::Rng(seed));
  for (int i = 0; i < episodes; ++i) learner->train_episode(routine);
  return learner;
}

SegmentStoreParams fleet_store_params(const ChaosFleetParams& p) {
  SegmentStoreParams sp;
  sp.dir = p.dir;
  sp.writers = p.shards;
  sp.rebase_every = p.rebase_every;
  return sp;
}

std::unique_ptr<SegmentStore> open_fleet_store(
    const ChaosFleetParams& p, const planning::RoutineLearner& donor,
    bool wipe) {
  if (p.dir.empty()) {
    throw std::invalid_argument("ChaosFleetSoak: dir is required");
  }
  if (wipe) std::filesystem::remove_all(p.dir);
  return std::make_unique<SegmentStore>(
      donor.state_codec().symbols(), donor.action_codec().tools(),
      donor.q().num_states(), donor.q().num_actions(),
      fleet_store_params(p));
}

std::unique_ptr<FleetEngine> build_fleet(const ChaosFleetParams& p,
                                         const adl::AdlLibrary& library,
                                         const adl::Adl& adl,
                                         SegmentStore& store,
                                         const planning::RoutineLearner&
                                             donor) {
  FleetEngineParams fp;
  fp.shards = p.shards;
  fp.slots_per_shard = p.slots_per_shard;
  fp.write_back_every = p.write_back_every;
  fp.system.learn_from_sessions = true;  // write-backs carry real deltas
  auto fleet =
      std::make_unique<FleetEngine>(library, adl, store, donor.q(), fp);
  fleet->reserve_users(p.users);
  for (std::size_t u = 0; u < p.users; ++u) {
    fleet->register_user(user_severity(u));
  }
  return fleet;
}

}  // namespace

// ---------------------------------------------------------------------------
// ChaosFleetSoak

ChaosFleetSoak::ChaosFleetSoak(ChaosFleetParams params,
                               faults::FaultPlan plan)
    : params_(std::move(params)),
      routine_(primary_routine(library_.tea_making())),
      donor_(trained_learner(library_.tea_making(), 17, 80, routine_)),
      store_(open_fleet_store(params_, *donor_, /*wipe=*/true)),
      fleet_(build_fleet(params_, library_, library_.tea_making(), *store_,
                         *donor_)),
      injector_(std::move(plan)),
      arrivals_(params_.users, params_.zipf, 777),
      committed_(params_.users, 0),
      scratch_(donor_->q().num_states(), donor_->q().num_actions()) {
  fleet_->attach_faults(injector_);
}

ChaosFleetSoak::~ChaosFleetSoak() = default;

ChaosRoundStats ChaosFleetSoak::check_round(ChaosFleetResult& result) {
  ChaosRoundStats rs;
  // Invariant 1 — committed versions only ever advance. A crashed or
  // corrupted append must abort *before* publishing, so the store's newest
  // valid record per user can never move backwards, round over round.
  for (std::uint64_t u = 0; u < params_.users; ++u) {
    const std::uint64_t now = store_->latest_version(u).value_or(0);
    if (now < committed_[u]) {
      ++rs.round_versions_lost;
    } else {
      committed_[u] = now;
    }
    if (now != 0) ++rs.committed_users;
  }
  // Invariant 2 — a restart recovers exactly what the live store serves.
  // Opening a second store on the same directory replays the crash-debris
  // scan a reboot would run: per user it must find the same newest version
  // AND load the full record chain (anchor + deltas) without a validation
  // error. The open is read-only, so checking every round is safe.
  SegmentStore reopened(donor_->state_codec().symbols(),
                        donor_->action_codec().tools(),
                        donor_->q().num_states(), donor_->q().num_actions(),
                        fleet_store_params(params_));
  for (std::uint64_t u = 0; u < params_.users; ++u) {
    const std::uint64_t live = store_->latest_version(u).value_or(0);
    const std::uint64_t back = reopened.latest_version(u).value_or(0);
    if (live != back) {
      ++rs.round_reopen_mismatches;
      continue;
    }
    if (back == 0) continue;
    try {
      if (reopened.load(u, scratch_).value_or(0) != back) {
        ++rs.round_reopen_mismatches;
      }
    } catch (const std::exception&) {
      ++rs.round_reopen_load_failures;
    }
  }
  result.committed_versions_lost += rs.round_versions_lost;
  result.reopen_mismatches += rs.round_reopen_mismatches;
  result.reopen_load_failures += rs.round_reopen_load_failures;
  return rs;
}

ChaosFleetResult ChaosFleetSoak::run(exec::TrialRunner& runner) {
  ChaosFleetResult result;
  const std::size_t total = params_.chaos_rounds + params_.tail_rounds;
  for (std::size_t round = 0; round < total; ++round) {
    for (std::size_t i = 0; i < params_.active; ++i) {
      fleet_->enqueue(arrivals_.next());
    }
    const exec::Stopwatch timer;
    result.report = fleet_->drain(runner);
    result.serve_seconds += timer.seconds();
    ChaosRoundStats rs = check_round(result);
    rs.epoch = injector_.epoch();
    rs.sessions = result.report.sessions;
    rs.dropped = result.report.dropped_sessions;
    rs.crashed_appends = result.report.crashed_appends;
    rs.radio_lost = result.report.radio_lost_frames;
    result.rounds.push_back(rs);
    injector_.advance_epoch();  // tail rounds run past every fault window
  }

  // Steady-state probe, serial so the number is independent of --jobs: the
  // fault window is closed and the tail rounds re-warmed every slot, so a
  // batch of ordinary sessions must not touch the heap. The soak's short
  // chain cap schedules real storage maintenance (segment rolls, chain
  // rebases) into some drains, so the probe takes the minimum over a few
  // drains: the drain the deterministic append sequence leaves
  // maintenance-free is the serving path's true allocation floor.
  exec::TrialRunner probe_runner(1);
  constexpr std::size_t kProbe = 64;
  constexpr std::size_t kProbeDrains = 4;
  result.steady_state_allocs = static_cast<double>(kProbe);
  for (std::size_t d = 0; d < kProbeDrains; ++d) {
    for (std::size_t i = 0; i < kProbe; ++i) {
      fleet_->enqueue(arrivals_.next());
    }
    const std::uint64_t before = util::allocation_count();
    result.report = fleet_->drain(probe_runner);
    const double allocs =
        static_cast<double>(util::allocation_count() - before) / kProbe;
    result.steady_state_allocs = std::min(result.steady_state_allocs, allocs);
  }

  for (const faults::Injector::SiteLog& site : injector_.log()) {
    if (site.name.ends_with(".pre_publish")) {
      result.injected_crashes += site.injections;
    } else if (site.name.ends_with(".corrupt")) {
      result.injected_corruptions += site.injections;
    }
  }
  result.invariant_violations = result.committed_versions_lost +
                                result.reopen_mismatches +
                                result.reopen_load_failures;
  return result;
}

// ---------------------------------------------------------------------------
// ChaosServeSoak

ChaosServeSoak::ChaosServeSoak(ChaosServeParams params,
                               faults::FaultPlan plan)
    : params_(std::move(params)), injector_(std::move(plan)) {
  if (params_.dir.empty()) {
    throw std::invalid_argument("ChaosServeSoak: dir is required");
  }
  if (params_.drifted == 0 || params_.drifted > params_.users) {
    throw std::invalid_argument(
        "ChaosServeSoak: drifted must be in [1, users]");
  }
  const adl::Adl& tea = library_.tea_making();
  routine_ = primary_routine(tea);
  // Yesterday's routine, first two steps swapped — the stale tables the
  // drifted cohort starts from (the A10 drift scenario).
  std::vector<adl::StepId> stale_routine = routine_;
  std::swap(stale_routine[0], stale_routine[1]);
  donor_ = trained_learner(tea, 17, 80, routine_);
  stale_ = trained_learner(tea, 18, 120, stale_routine);

  std::filesystem::remove_all(params_.dir);
  PolicyStoreParams sp;
  sp.dir = params_.dir;
  sp.flush_every = 1;  // every stage hits the crash/corruption seams
  sp.format = SnapshotFormat::kV3Delta;
  sp.rebase_every = 4;
  store_ = std::make_unique<PolicyStore>(*donor_, sp);

  ServeEngineParams ep;
  ep.pool.slots = params_.slots;
  ep.pool.seed = 4242;
  ep.drift.threshold = params_.threshold;
  ep.retrain.enabled = true;
  ep.retrain.lane_width = params_.lane_width;
  // Every (users/drifted)-th user is stale, spreading the cohort across
  // slots and lanes so recovery is not an artifact of one shard.
  is_drifted_.assign(params_.users, false);
  const std::size_t stride = params_.users / params_.drifted;
  for (std::size_t u = 0; u < params_.users; ++u) {
    const bool drift =
        u % stride == 0 && u / stride < params_.drifted;
    is_drifted_[u] = drift;
    store_->add_user("U" + std::to_string(u),
                     drift ? stale_->q() : donor_->q());
  }
  engine_ = std::make_unique<ServeEngine>(library_, tea, *store_, ep);
  for (std::size_t u = 0; u < params_.users; ++u) {
    engine_->add_user("U" + std::to_string(u), user_profile(u));
  }
  committed_.assign(params_.users, 0);
  engine_->attach_faults(injector_);
}

ChaosServeSoak::~ChaosServeSoak() = default;

ChaosServeResult ChaosServeSoak::run(exec::TrialRunner& runner) {
  ChaosServeResult result;
  const std::size_t total = params_.chaos_rounds + params_.tail_rounds;
  const std::size_t kNever = total + 1;
  std::vector<std::size_t> flagged_round(params_.users, kNever);
  std::vector<std::size_t> recovered_round(params_.users, kNever);
  for (std::size_t round = 0; round < total; ++round) {
    for (std::size_t u = 0; u < params_.users; ++u) {
      engine_->enqueue(static_cast<UserId>(u), params_.burst);
    }
    const exec::Stopwatch timer;
    result.report = engine_->drain(runner);
    result.serve_seconds += timer.seconds();
    injector_.advance_epoch();
    for (std::size_t u = 0; u < params_.users; ++u) {
      // Invariant — the committed (in-memory) policy version never moves
      // backwards: an injected flush crash may defer persistence, but the
      // serving state it already staged must survive.
      const std::uint64_t v = store_->version(static_cast<UserId>(u));
      if (v < committed_[u]) {
        ++result.committed_versions_lost;
      } else {
        committed_[u] = v;
      }
      if (!is_drifted_[u]) continue;
      const ServeUserStats& s = result.report.users[u];
      if (s.needs_retraining && flagged_round[u] == kNever) {
        flagged_round[u] = round;
      }
      if (!s.needs_retraining && s.retrains > 0 &&
          recovered_round[u] == kNever) {
        recovered_round[u] = round;
      }
    }
  }

  for (std::size_t u = 0; u < params_.users; ++u) {
    if (!is_drifted_[u]) continue;
    if (recovered_round[u] < kNever) {
      ++result.recovered_users;
      result.recovery_sessions_max =
          std::max(result.recovery_sessions_max,
                   static_cast<std::uint64_t>(
                       (recovered_round[u] - flagged_round[u]) *
                       params_.burst));
    } else {
      ++result.unrecovered_users;
    }
  }

  // Invariant — restart recovery. A clean flush (the fault window is shut)
  // must leave every snapshot restorable at exactly the live version, torn
  // delta tails from the soak included: a tear dropped the entry's diff
  // base, so its retry rewrote a clean full anchor over the debris.
  store_->flush_all();
  {
    PolicyStoreParams sp;
    sp.dir = params_.dir;
    sp.flush_every = 1;
    sp.format = SnapshotFormat::kV3Delta;
    sp.rebase_every = 4;
    PolicyStore reopened(*donor_, sp);
    for (std::size_t u = 0; u < params_.users; ++u) {
      const auto user = static_cast<UserId>(u);
      reopened.add_user(store_->user_name(user));
      if (reopened.restore(user).value_or(0) != store_->version(user)) {
        ++result.reopen_mismatches;
      }
    }
  }

  result.aborted_retrains = result.report.retrain.aborted;
  result.crashed_stages =
      result.report.crashed_stages + result.report.retrain.crashed_stages;
  result.invariant_violations = result.unrecovered_users +
                                result.committed_versions_lost +
                                result.reopen_mismatches;
  return result;
}

}  // namespace coreda::serve
