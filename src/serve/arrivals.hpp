#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace coreda::serve {

/// Seed-deterministic session-arrival generators for the serve/fleet
/// benches. Both draw user indices in [0, n): Uniform models a fleet where
/// every patient is equally active; Zipfian models the clinically realistic
/// skew — a small set of heavy users (low indices) generates most sessions,
/// so slot residency and mmap page cache both get to shine (or be caught
/// regressing) under the traffic shape they were built for.
///
/// Determinism: the sequence is a pure function of (n, exponent, seed).
/// The benches print hit rates derived from these streams, so the streams
/// must never depend on wall clock or thread interleaving.
class UniformArrivals {
 public:
  UniformArrivals(std::size_t n, std::uint64_t seed)
      : n_(n), rng_(seed) {}

  std::size_t next() noexcept { return rng_.pick_index(n_); }

 private:
  std::size_t n_;
  util::Rng rng_;
};

/// Zipf(s) over ranks 1..n mapped to user indices 0..n-1 (index 0 is the
/// hottest user). Sampling is one uniform draw + a binary search over the
/// precomputed CDF: O(log n) per arrival, no allocation after construction.
class ZipfianArrivals {
 public:
  /// Throws std::invalid_argument when n == 0 or exponent <= 0.
  ZipfianArrivals(std::size_t n, double exponent, std::uint64_t seed);

  std::size_t next() noexcept;

  double exponent() const noexcept { return exponent_; }

 private:
  double exponent_;
  util::Rng rng_;
  std::vector<double> cdf_;  ///< cdf_[i] = P(index <= i), cdf_.back() == 1
};

}  // namespace coreda::serve
