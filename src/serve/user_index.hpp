#pragma once

#include <cstdint>
#include <vector>

namespace coreda::serve {

// ---------------------------------------------------------------------------
// UserIndex — the fleet tier's user -> record-location map: a flat
// open-addressed robin-hood table in one contiguous slab, 8 bytes per slot,
// zero node allocations ever.
//
// Each occupied slot packs one u64:
//
//   [user:30][seg:14][off8:20]
//
//   user  key; dense fleet ids (< 2^30 - 1, ~1.07B registered users)
//   seg   store-global segment id (< 2^14)
//   off8  record byte offset / 8 inside the segment (records are 8-aligned,
//         so 20 bits address an 8 MiB segment file)
//
// Empty slots are all-ones (unreachable as an entry: user 2^30-1 is
// rejected). Keys are never deleted — a user's location is only ever
// updated in place — so probes need no tombstones. Robin-hood displacement
// keeps probe chains short at high load; the table runs at up to 7/8
// occupancy, i.e. ~9.15 bytes of slab per resident user.
//
// Concurrency contract: the SegmentStore keeps ONE UserIndex PER WRITER
// LANE (users are partitioned user % writers), so concurrent shard drains
// touch disjoint tables. A single shared open-addressed table would race:
// robin-hood insertion displaces neighbours that may belong to another
// writer's probe chain. Per-lane tables make the hot path lock-free by
// construction.
// ---------------------------------------------------------------------------
class UserIndex {
 public:
  /// Packed record location. seg is a store-global segment id, off8 the
  /// record's byte offset divided by 8.
  struct Loc {
    std::uint32_t seg = 0;
    std::uint32_t off8 = 0;
  };

  static constexpr std::uint64_t kMaxUsers = (std::uint64_t{1} << 30) - 1;
  static constexpr std::uint32_t kMaxSegments = std::uint32_t{1} << 14;
  static constexpr std::uint32_t kMaxOff8 = std::uint32_t{1} << 20;

  /// Grows the slab so `users` keys fit below the 7/8 load ceiling.
  /// Rehashes in place when growing; never shrinks. Setup / scan phase
  /// only — concurrent readers of the same lane must not be live.
  void reserve(std::uint64_t users);

  /// True when `user` has a location; writes it to `out`. Allocation-free.
  bool find(std::uint64_t user, Loc& out) const noexcept {
    if (slots_.empty()) return false;
    const std::size_t cap = slots_.size();
    std::size_t i = home(user, cap);
    std::size_t dist = 0;
    while (true) {
      const std::uint64_t e = slots_[i];
      if (e == kEmpty) return false;
      if ((e >> 34) == user) {
        out = unpack(e);
        return true;
      }
      // Robin-hood invariant: every resident sits no further from its home
      // than anything that probed past it, so once we out-distance the
      // resident the key cannot be further along.
      if (probe_distance(e, i, cap) < dist) return false;
      if (++i == cap) i = 0;
      ++dist;
    }
  }

  /// Inserts or updates `user`'s location. Never grows: inserting a NEW
  /// key above the load ceiling throws std::length_error (the caller
  /// violated the reserve() contract). Updates always succeed.
  /// Allocation-free — safe on the concurrent append hot path (each lane
  /// owns its table).
  void put(std::uint64_t user, Loc loc);

  /// Insert-or-update that grows the slab when needed (scan / import
  /// paths, where a reopened store may hold more users than any reserve
  /// promised). Amortised allocation-free once reserved correctly.
  void put_grow(std::uint64_t user, Loc loc);

  std::uint64_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  std::size_t slab_bytes() const noexcept { return slots_.size() * 8; }

  /// Visits every (user, loc); slot order (unspecified but deterministic
  /// for a deterministic operation history).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint64_t e : slots_) {
      if (e != kEmpty) fn(e >> 34, unpack(e));
    }
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  static std::uint64_t pack(std::uint64_t user, Loc loc) noexcept {
    return (user << 34) | (std::uint64_t{loc.seg} << 20) |
           std::uint64_t{loc.off8};
  }
  static Loc unpack(std::uint64_t e) noexcept {
    return Loc{static_cast<std::uint32_t>((e >> 20) & (kMaxSegments - 1)),
               static_cast<std::uint32_t>(e & (kMaxOff8 - 1))};
  }

  /// splitmix64 finalizer: dense sequential user ids hash to well-spread
  /// slots so linear probing stays O(1) at 7/8 load.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  /// Maps a hash onto [0, cap) without requiring a power-of-two capacity
  /// (fastrange: the high word of a 128-bit product).
  static std::size_t home(std::uint64_t user, std::size_t cap) noexcept {
    __extension__ typedef unsigned __int128 u128;
    return static_cast<std::size_t>((static_cast<u128>(mix(user)) * cap) >>
                                    64);
  }

  static std::size_t probe_distance(std::uint64_t e, std::size_t slot,
                                    std::size_t cap) noexcept {
    const std::size_t h = home(e >> 34, cap);
    return slot >= h ? slot - h : slot + cap - h;
  }

  /// Places a packed entry known not to be present (rehash path).
  void place_new(std::uint64_t e) noexcept;

  std::vector<std::uint64_t> slots_;
  std::uint64_t size_ = 0;
  std::uint64_t limit_ = 0;  ///< insert ceiling: 7/8 of capacity
};

}  // namespace coreda::serve
