#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exec/trial_runner.hpp"
#include "patient/profile.hpp"
#include "serve/retrain_scheduler.hpp"
#include "serve/system_pool.hpp"

namespace coreda::serve {

/// Prompt-rate drift detection (ROADMAP "drift re-learning").
///
/// A converged policy prompts rarely; a routine that drifted away from the
/// trained one makes the planner prompt at the wrong moments and the
/// re-prompt escalation kicks in — prompts per session spike. The engine
/// tracks an EWMA of prompts-per-session per user and marks the user
/// `needs_retraining` once it crosses the threshold. With retraining
/// enabled (RetrainParams::enabled) the flag feeds the RetrainScheduler and
/// clears once the post-retrain EWMA drops back below the threshold.
struct DriftConfig {
  /// EWMA weight of the newest session (ewma += alpha * (x - ewma); the
  /// first session seeds the average).
  double alpha = 0.3;
  /// Prompts-per-session EWMA at or above this flags the user.
  double threshold = 6.0;
  /// Sessions a user must have served before the flag may fire — a single
  /// bad day is not drift.
  std::size_t warmup_sessions = 3;
};

struct ServeEngineParams {
  SystemPoolParams pool{};
  DriftConfig drift{};
  /// The detect->retrain->redeploy loop (off by default; transcripts are
  /// recorded either way so enabling it later starts warm).
  RetrainParams retrain{};
  /// Wall-clock cap per session (virtual time).
  sim::Duration session_cap = sim::Duration::minutes(15.0);
};

/// Per-user serving metrics, persistent across drains (the EWMA must see a
/// user's whole history, not one batch).
struct ServeUserStats {
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;
  std::uint64_t prompts = 0;
  double prompt_ewma = 0.0;
  bool needs_retraining = false;
  /// Retrained, EWMA not yet back under the threshold. While set, the
  /// needs_retraining flag stays up but no further retrain is enqueued
  /// (beyond the cooldown) — the refreshed policy gets its chance first.
  bool awaiting_recovery = false;
  /// Retrain jobs executed for this user.
  std::uint64_t retrains = 0;
  /// sessions count when the last retrain ran (cooldown anchor).
  std::uint64_t last_retrain_session = 0;
  /// Order-independent digest of this user's session outcomes (steps,
  /// prompts) — the cross---jobs determinism witness.
  std::uint64_t checksum = 0;
};

struct ServeReport {
  std::uint64_t sessions = 0;
  std::uint64_t completed = 0;
  std::uint64_t prompts = 0;
  std::uint64_t checksum = 0;
  std::uint64_t pool_hits = 0;
  std::uint64_t policy_swaps = 0;
  std::uint64_t staged_writes = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t crashed_stages = 0;  ///< serve-path flushes an injected
                                     ///< crash aborted (memory state kept)
  std::size_t flagged_users = 0;  ///< users currently marked needs_retraining
  std::size_t retrained_this_drain = 0;  ///< retrain jobs this drain ran
  RetrainCounters retrain;               ///< cumulative scheduler counters
  std::vector<ServeUserStats> users;
};

/// The multi-tenant serving frontend: a queue of per-user session requests
/// drained through the SystemPool across the exec thread pool.
///
/// Requests are sharded by the user's home slot and each slot is one
/// TrialRunner trial, so a drain is byte-identical at any --jobs — the
/// TrialRunner determinism argument lifted one layer up (slots play the
/// role trials played in the benches; users within a slot are served in
/// enqueue order).
class ServeEngine {
 public:
  /// `library`, `adl` and `store` must outlive the engine.
  ServeEngine(const adl::AdlLibrary& library, const adl::Adl& adl,
              PolicyStore& store, ServeEngineParams params = {});

  /// Registers a user (must already exist in — or is added to — the store;
  /// see implementation) with the profile their sessions will simulate.
  /// Setup-phase only, like PolicyStore::add_user.
  UserId add_user(std::string name, patient::PatientProfile profile);

  /// Queues `sessions` session requests for the user — bucketed straight
  /// onto the user's home slot, so a drain never redistributes (and never
  /// allocates once the per-slot buckets are warm).
  void enqueue(UserId user, std::size_t sessions = 1);
  std::size_t queued() const noexcept;

  /// Serves every queued request, then — with retraining enabled — closes
  /// the loop: drift-flagged users with enough transcripts are retrained on
  /// the exec pool and their refreshed tables staged back through the
  /// store (their slot residency invalidated so the next session serves the
  /// new version). Returns the cumulative report. Deterministic for a given
  /// engine configuration and enqueue history at any runner job count.
  ServeReport drain(exec::TrialRunner& runner);

  const SystemPool& pool() const noexcept { return pool_; }
  const PolicyStore& store() const noexcept { return *store_; }
  const RetrainScheduler& retrainer() const noexcept { return retrainer_; }

  /// Arms the serving tier's fault seams against `injector`'s plan: slot
  /// stalls ("serve.stall"), the store's crash/corruption sites, the
  /// retrainer's abort seam, and every pool system's radio burst chain
  /// ("radio.loss_burst"). Setup phase or between drains only.
  void attach_faults(faults::Injector& injector);
  const ServeUserStats& user_stats(UserId user) const;
  const ServeEngineParams& params() const noexcept { return params_; }

 private:
  struct Request {
    UserId user;
    std::size_t sessions;
  };

  void serve_one(UserId user, core::SessionResult& result);
  /// Whether the user should be queued for retraining this drain.
  bool retrain_due(UserId user) const;

  ServeEngineParams params_;
  PolicyStore* store_;
  SystemPool pool_;
  RetrainScheduler retrainer_;
  std::vector<patient::PatientProfile> profiles_;  // by UserId
  std::vector<ServeUserStats> stats_;              // by UserId
  /// Request queue, bucketed by home slot at enqueue time. Buckets keep
  /// their capacity across drains.
  std::vector<std::vector<Request>> by_slot_;
  /// Per-slot session scratch, pre-provisioned at construction so even a
  /// slot's first session of a drain records allocation-free.
  std::vector<core::SessionResult> results_;
  faults::Site stall_site_{"serve.stall"};
  faults::Site radio_site_{"radio.loss_burst"};
  std::uint64_t drains_ = 0;  ///< stall decision tick
};

}  // namespace coreda::serve
