#include "serve/user_index.hpp"

#include <stdexcept>
#include <utility>

namespace coreda::serve {

void UserIndex::place_new(std::uint64_t e) noexcept {
  const std::size_t cap = slots_.size();
  std::size_t i = home(e >> 34, cap);
  std::size_t dist = 0;
  while (true) {
    std::uint64_t& slot = slots_[i];
    if (slot == kEmpty) {
      slot = e;
      return;
    }
    const std::size_t rdist = probe_distance(slot, i, cap);
    if (rdist < dist) {
      // Robin hood: the resident is closer to home than we are — take its
      // slot and carry it forward instead.
      std::swap(e, slot);
      dist = rdist;
    }
    if (++i == cap) i = 0;
    ++dist;
  }
}

void UserIndex::reserve(std::uint64_t users) {
  // Capacity such that `users` keys stay at or below 7/8 occupancy. Any
  // capacity works with the fastrange slot mapping — no power-of-two
  // rounding, so the slab is never ~2x larger than asked for.
  std::uint64_t cap = users + users / 7 + 1;
  if (cap < 16) cap = 16;
  if (cap <= slots_.size()) return;
  std::vector<std::uint64_t> old = std::move(slots_);
  slots_.assign(static_cast<std::size_t>(cap), kEmpty);
  limit_ = cap - cap / 8;
  for (const std::uint64_t e : old) {
    if (e != kEmpty) place_new(e);
  }
}

void UserIndex::put(std::uint64_t user, Loc loc) {
  if (user >= kMaxUsers || loc.seg >= kMaxSegments || loc.off8 >= kMaxOff8) {
    throw std::length_error("UserIndex::put: user/seg/offset out of range");
  }
  if (size_ >= limit_) {
    // At the ceiling only an update of an existing key may proceed.
    Loc ignored;
    if (!find(user, ignored)) {
      throw std::length_error(
          "UserIndex::put: table full — reserve() was not honoured");
    }
  }
  std::uint64_t e = pack(user, loc);
  const std::size_t cap = slots_.size();
  std::size_t i = home(user, cap);
  std::size_t dist = 0;
  while (true) {
    std::uint64_t& slot = slots_[i];
    if (slot == kEmpty) {
      slot = e;
      ++size_;
      return;
    }
    // An existing key is updated in place. After a robin-hood swap `e`
    // carries a displaced resident whose key cannot recur further along,
    // so this matches only the original probe key.
    if ((slot >> 34) == (e >> 34)) {
      slot = e;
      return;
    }
    const std::size_t rdist = probe_distance(slot, i, cap);
    if (rdist < dist) {
      std::swap(e, slot);
      dist = rdist;
    }
    if (++i == cap) i = 0;
    ++dist;
  }
}

void UserIndex::put_grow(std::uint64_t user, Loc loc) {
  if (size_ >= limit_) {
    Loc ignored;
    if (!find(user, ignored)) {
      reserve(size_ < 8 ? 16 : size_ * 2);
    }
  }
  put(user, loc);
}

}  // namespace coreda::serve
