#!/usr/bin/env bash
# Measures trial-parallel bench wall-clock at several --jobs values and
# assembles BENCH_parallel.json (JSON lines: bench, jobs,
# hardware_concurrency, trials, seconds, trials_per_sec). Bench stdout is
# discarded — it is byte-identical across job counts by design; only the
# timing side-channel differs.
#
# Every record carries hardware_concurrency: when jobs exceeds the machine's
# cores the "parallel" runs time-slice one core and the pool handoff is pure
# overhead — the PR-2 investigation found exactly that behind the jobs>1
# slowdown of sensitivity/ablation_radio in the original container
# (hardware_concurrency == 1; see EXPERIMENTS.md "Parallel scaling").
#
# Usage: tools/bench_parallel.sh [build-dir] [out-file]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_parallel.json}"

# bench_fleet_serve runs at its production default of 1,000,000 registered
# users: registration + packed-slab + index-reserve cost is part of what
# the parallel curve prices, and only the sparse active set pays per-round.
BENCHES=(bench_sensitivity bench_table3_extract bench_ablation_radio
         bench_ablation_detector bench_fig4_learning_curve
         bench_fleet_throughput bench_session_throughput
         bench_serve_throughput bench_retrain_recovery bench_fleet_serve
         bench_chaos_soak bench_scenario_corpus)

cmake --build "$BUILD_DIR" -j --target "${BENCHES[@]}"

HW_JOBS="$(nproc)"
JOB_COUNTS=(1 2 4)
case " ${JOB_COUNTS[*]} " in
  *" $HW_JOBS "*) ;;
  *) JOB_COUNTS+=("$HW_JOBS") ;;
esac

: > "$OUT"
for bench in "${BENCHES[@]}"; do
  # Warm-up pass (timing discarded): first touch pays page faults, lazy
  # pool construction and file-cache misses that would otherwise be
  # misread as a jobs=1 advantage — jobs=1 always ran first.
  "$BUILD_DIR/bench/$bench" --jobs=1 > /dev/null
  # The fleet training bench's jobs=1 episodes/sec seeds its jobs>1 runs'
  # parallel_efficiency field (eps/sec divided by jobs x the reference).
  REF_EPS=""
  for jobs in "${JOB_COUNTS[@]}"; do
    EXTRA_ARGS=()
    if [[ "$bench" == bench_fleet_throughput && -n "$REF_EPS" ]]; then
      EXTRA_ARGS+=("--ref-eps-per-sec=$REF_EPS")
    fi
    "$BUILD_DIR/bench/$bench" --jobs="$jobs" --timing-json="$OUT" \
      ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"} > /dev/null
    if [[ "$bench" == bench_fleet_throughput && "$jobs" == 1 ]]; then
      REF_EPS="$(tail -n 1 "$OUT" | python3 -c \
        'import json,sys; print(json.load(sys.stdin)["episodes_per_sec"])')"
    fi
  done
done

# Surface parallel-scaling inversions instead of silently recording them:
# on a box where jobs exceed the cores (hardware_concurrency below the job
# count) the pool handoff is pure overhead and jobs>1 loses to jobs=1 —
# expected there, but worth a warning either way so nobody reads the
# committed JSON as a healthy scaling curve.
python3 - "$OUT" <<'PYEOF'
import json, sys
records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
base = {r["bench"]: r for r in records if r.get("jobs") == 1}
for r in records:
    jobs = r.get("jobs", 1)
    ref = base.get(r.get("bench"))
    if jobs <= 1 or ref is None:
        continue
    for metric in ("trials_per_sec", "episodes_per_sec", "sessions_per_sec"):
        if metric in r and metric in ref and r[metric] < ref[metric]:
            eff = r.get("parallel_efficiency")
            eff_txt = (f", parallel_efficiency {eff:.2f}"
                       if isinstance(eff, (int, float)) else "")
            hw = r.get("hardware_concurrency")
            expected = (" (expected: jobs exceed hardware_concurrency"
                        f"={hw}, the pool handoff is pure overhead)"
                        if isinstance(hw, int) and jobs > hw else "")
            print(f"warning: {r['bench']} jobs={jobs} {metric} "
                  f"{r[metric]:.0f} < jobs=1 {ref[metric]:.0f}"
                  f"{eff_txt}{expected}", file=sys.stderr)
PYEOF

echo "Wrote $OUT:"
cat "$OUT"
