#!/usr/bin/env bash
# Measures trial-parallel bench wall-clock at several --jobs values and
# assembles BENCH_parallel.json (JSON lines: bench, jobs,
# hardware_concurrency, trials, seconds, trials_per_sec). Bench stdout is
# discarded — it is byte-identical across job counts by design; only the
# timing side-channel differs.
#
# Every record carries hardware_concurrency: when jobs exceeds the machine's
# cores the "parallel" runs time-slice one core and the pool handoff is pure
# overhead — the PR-2 investigation found exactly that behind the jobs>1
# slowdown of sensitivity/ablation_radio in the original container
# (hardware_concurrency == 1; see EXPERIMENTS.md "Parallel scaling").
#
# Usage: tools/bench_parallel.sh [build-dir] [out-file]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_parallel.json}"

BENCHES=(bench_sensitivity bench_table3_extract bench_ablation_radio
         bench_ablation_detector bench_fig4_learning_curve
         bench_fleet_throughput bench_session_throughput
         bench_serve_throughput bench_retrain_recovery bench_fleet_serve)

cmake --build "$BUILD_DIR" -j --target "${BENCHES[@]}"

HW_JOBS="$(nproc)"
JOB_COUNTS=(1 2 4)
case " ${JOB_COUNTS[*]} " in
  *" $HW_JOBS "*) ;;
  *) JOB_COUNTS+=("$HW_JOBS") ;;
esac

: > "$OUT"
for bench in "${BENCHES[@]}"; do
  # Warm-up pass (timing discarded): first touch pays page faults, lazy
  # pool construction and file-cache misses that would otherwise be
  # misread as a jobs=1 advantage — jobs=1 always ran first.
  "$BUILD_DIR/bench/$bench" --jobs=1 > /dev/null
  for jobs in "${JOB_COUNTS[@]}"; do
    "$BUILD_DIR/bench/$bench" --jobs="$jobs" --timing-json="$OUT" \
      > /dev/null
  done
done

echo "Wrote $OUT:"
cat "$OUT"
