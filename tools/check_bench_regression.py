#!/usr/bin/env python3
"""Compares fresh BENCH_*.json timing records against committed baselines.

The committed BENCH_parallel.json / BENCH_fleet.json / BENCH_sessions.json /
BENCH_serve.json / BENCH_retrain.json files double as performance baselines.
This checker re-keys both files by (bench, jobs, lanes) and flags:

  * missing records — a bench/jobs combination present in the baseline but
    absent from the fresh run;
  * throughput regressions — fresh trials_per_sec (and episodes_per_sec /
    sessions_per_sec, where present — episodes_per_sec is the fleet
    training bench's primary metric, so BENCH_fleet.json records are
    gated on it explicitly, lane records included) below baseline by more
    than
    --tolerance (default 0.40, i.e. a fresh run may be up to 40% slower
    before failing: wall-clock on shared CI machines is noisy, and the
    committed numbers may come from different hardware — catch collapses,
    not jitter);
  * allocation regressions — steady_state_allocs_per_episode (the fleet
    training bench's steady-state contract) and
    steady_state_allocs_per_session must never exceed the baseline (the
    zero-allocation contract is exact, not noisy, and holds on any
    hardware — no mismatch downgrade); the whole-drain
    allocs_per_session may exceed the baseline by at most 0.05 (the
    parallel path's per-trial task handoff allocates a few times per
    drain, amortized over hundreds of sessions — a per-session cold-path
    allocation shows up as a jump of ~1.0, far past the epsilon);
  * tail-latency regressions — the fleet bench's p50_ns / p99_ns / p999_ns
    serve-latency percentiles get per-metric bands scaled from
    --latency-tolerance (default 1.00): p50 may grow 1x the tolerance, p99
    2x, p999 4x (ceilings of 2x / 3x / 5x baseline at the default), plus a
    per-metric absolute slack (1 ms / 2 ms / 10 ms) on top. The slack is
    what makes a microsecond-scale baseline gateable at all: scheduler
    preemption adds milliseconds in absolute terms, and the deeper the
    percentile the fewer sessions stand behind it — a bench round's p999
    rests on a handful, so one unlucky preemption lands there. The gate
    exists to catch the mmap/eviction path collapsing (10-100x into the
    tens of milliseconds), not jitter. Hardware mismatches downgrade these
    to warnings like the throughput gates;
  * determinism regressions — pool_hit_rate (the serve bench's hit/swap
    split) is a pure function of the workload shape, independent of
    hardware and job count, and must never decrease: a drop means the
    slot-sharding or residency logic changed behaviour, not that the
    machine was slow;
  * flush-traffic regressions — the retrain bench's flush_bytes_per_retrain
    is deterministic (snapshot file sizes are pure functions of the table
    shape and the replay stream, not of wall-clock), so the gate is exact
    and hardware-independent: the v3 delta chain's write amplification
    must never grow past the committed baseline;
  * recovery regressions — the retrain bench's closed loop is deterministic
    too: recovered_users must not decrease, and recovery_sessions_max /
    post_retrain_prompts_per_session must not increase. Any change means
    the detect -> retrain -> redeploy loop got worse at its one job:
    pulling a drifted user's prompt rate back down.

Hardware mismatches (different hardware_concurrency) downgrade throughput
findings to warnings: comparing wall-clock across machine shapes is
meaningless, but the allocation contract still holds everywhere.

Usage:
  tools/check_bench_regression.py --fresh FRESH.json --baseline BASELINE.json
      [--tolerance 0.40]

Exit code 0 = OK, 1 = regression, 2 = usage/parse error. Wired as the
opt-in ctest label `bench-regression` (configure with
-DCOREDA_BENCH_REGRESSION=ON; see tests/CMakeLists.txt) so tier-1 runs
never depend on wall-clock.
"""

import argparse
import json
import sys


def load_records(path):
    """Parses a JSON-lines bench file into {(bench, jobs, lanes): record}."""
    records = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"error: {path}:{line_no}: unparsable JSON: {e}")
                # Lane records share a bench name with their scalar
                # siblings; "lanes" (default 1 — most benches don't emit
                # it) keeps them as separate gated entries.
                key = (record.get("bench"), record.get("jobs"),
                       record.get("lanes", 1))
                if key[0] is None or key[1] is None:
                    raise SystemExit(
                        f"error: {path}:{line_no}: record lacks bench/jobs")
                # Later records win: re-running a bench appends.
                records[key] = record
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional throughput drop (default "
                             "0.40)")
    parser.add_argument("--latency-tolerance", type=float, default=1.00,
                        help="allowed fractional growth of the p50/p99/p999 "
                             "latency percentiles (default 1.00 = 2x)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    if args.latency_tolerance < 0.0:
        print("error: --latency-tolerance must be >= 0", file=sys.stderr)
        return 2

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)

    failures = []
    warnings = []
    for key, base in sorted(baseline.items()):
        bench, jobs, lanes = key
        label = (f"{bench} (jobs={jobs}, lanes={lanes})" if lanes != 1
                 else f"{bench} (jobs={jobs})")
        got = fresh.get(key)
        if got is None:
            failures.append(f"{label}: missing from fresh run")
            continue

        same_hw = (base.get("hardware_concurrency") is not None and
                   base.get("hardware_concurrency")
                   == got.get("hardware_concurrency"))
        for metric in ("trials_per_sec", "episodes_per_sec",
                       "sessions_per_sec"):
            if metric not in base:
                continue
            base_v, got_v = base[metric], got.get(metric, 0.0)
            floor = base_v * (1.0 - args.tolerance)
            if got_v >= floor:
                continue
            message = (f"{label}: {metric} {got_v:.1f} < "
                       f"{floor:.1f} (baseline {base_v:.1f} - {args.tolerance:.0%})")
            if same_hw:
                failures.append(message)
            else:
                warnings.append(message + " [hardware mismatch: warning only]")

        # Tail latency: wall-clock-noisy, and noisier the deeper the
        # percentile (p999 of a bench round rests on a handful of
        # sessions), so both the relative band and the absolute slack
        # widen per metric. The gate is for order-of-magnitude collapses
        # of the serve path, not jitter.
        for metric, scale, slack_ns in (("p50_ns", 1.0, 1e6),
                                        ("p99_ns", 2.0, 2e6),
                                        ("p999_ns", 4.0, 10e6)):
            if metric not in base:
                continue
            base_v, got_v = base[metric], got.get(metric, 0.0)
            tolerance = scale * args.latency_tolerance
            ceiling = base_v * (1.0 + tolerance) + slack_ns
            if got_v <= ceiling:
                continue
            message = (f"{label}: {metric} {got_v:.0f} > "
                       f"{ceiling:.0f} (baseline {base_v:.0f} + "
                       f"{tolerance:.0%} + {slack_ns / 1e6:.0f} ms slack)")
            if same_hw:
                failures.append(message)
            else:
                warnings.append(message + " [hardware mismatch: warning only]")

        for metric in ("steady_state_allocs_per_episode",
                       "steady_state_allocs_per_session",
                       "steady_state_allocs_per_retrain"):
            if metric in base and got.get(metric, 0.0) > base[metric]:
                failures.append(
                    f"{label}: {metric} {got.get(metric)} > "
                    f"baseline {base[metric]} — the zero-allocation "
                    f"contract broke")

        # Whole-drain allocations per session: near-exact. The epsilon only
        # absorbs the parallel path's per-trial task handoff (a few heap
        # allocations per drain, amortized); a real cold-path allocation is
        # +1.0 per session and sails past it.
        if "allocs_per_session" in base and (
                got.get("allocs_per_session", 0.0)
                > base["allocs_per_session"] + 0.05):
            failures.append(
                f"{label}: allocs_per_session "
                f"{got.get('allocs_per_session')} > baseline "
                f"{base['allocs_per_session']} + 0.05 — a per-session "
                f"allocation crept into the drain path")

        # Exact, hardware-independent: the serve bench's hit/swap split is
        # determined entirely by the workload shape.
        if "pool_hit_rate" in base and (got.get("pool_hit_rate", 0.0)
                                        < base["pool_hit_rate"]):
            failures.append(
                f"{label}: pool_hit_rate "
                f"{got.get('pool_hit_rate')} < baseline "
                f"{base['pool_hit_rate']} — residency/sharding behaviour "
                f"changed")

        # Flush traffic is deterministic: snapshot bytes are a pure
        # function of the table shape and the replay stream. If the v3
        # delta chain starts writing more per retrain than the committed
        # baseline, the write-amplification win regressed — exact gate,
        # no hardware downgrade.
        if "flush_bytes_per_retrain" in base:
            got_v = got.get("flush_bytes_per_retrain")
            if got_v is None:
                failures.append(
                    f"{label}: flush_bytes_per_retrain "
                    f"missing from fresh run (baseline "
                    f"{base['flush_bytes_per_retrain']})")
            elif got_v > base["flush_bytes_per_retrain"]:
                failures.append(
                    f"{label}: flush_bytes_per_retrain "
                    f"{got_v} > baseline {base['flush_bytes_per_retrain']} "
                    f"— snapshot write amplification grew")

        # The closed loop is deterministic end to end: every drifted user
        # the baseline recovered must still recover, at least as fast, to
        # at least as low a post-retrain prompt rate.
        if "recovered_users" in base and (got.get("recovered_users", 0)
                                          < base["recovered_users"]):
            failures.append(
                f"{label}: recovered_users "
                f"{got.get('recovered_users')} < baseline "
                f"{base['recovered_users']} — drifted users no longer "
                f"recover")
        for metric in ("recovery_sessions_max",
                       "post_retrain_prompts_per_session"):
            if metric in base and got.get(metric, 0.0) > base[metric]:
                failures.append(
                    f"{label}: {metric} {got.get(metric)} > "
                    f"baseline {base[metric]} — the retrain loop recovers "
                    f"slower")

    for message in warnings:
        print(f"warning: {message}")
    if failures:
        for message in failures:
            print(f"REGRESSION: {message}")
        return 1
    print(f"ok: {len(baseline)} baseline records held "
          f"(tolerance {args.tolerance:.0%}, {len(warnings)} warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
