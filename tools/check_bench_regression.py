#!/usr/bin/env python3
"""Compares fresh BENCH_*.json timing records against committed baselines.

The committed BENCH_parallel.json / BENCH_fleet.json / BENCH_sessions.json /
BENCH_serve.json files double as performance baselines. This checker re-keys
both files by (bench, jobs) and flags:

  * missing records — a bench/jobs combination present in the baseline but
    absent from the fresh run;
  * throughput regressions — fresh trials_per_sec (and episodes_per_sec /
    sessions_per_sec, where present) below baseline by more than
    --tolerance (default 0.40, i.e. a fresh run may be up to 40% slower
    before failing: wall-clock on shared CI machines is noisy, and the
    committed numbers may come from different hardware — catch collapses,
    not jitter);
  * allocation regressions — steady_state_allocs_per_episode and
    steady_state_allocs_per_session must never exceed the baseline (the
    zero-allocation contract is exact, not noisy);
  * determinism regressions — pool_hit_rate (the serve bench's hit/swap
    split) is a pure function of the workload shape, independent of
    hardware and job count, and must never decrease: a drop means the
    slot-sharding or residency logic changed behaviour, not that the
    machine was slow;
  * recovery regressions — the retrain bench's closed loop is deterministic
    too: recovered_users must not decrease, and recovery_sessions_max /
    post_retrain_prompts_per_session must not increase. Any change means
    the detect -> retrain -> redeploy loop got worse at its one job:
    pulling a drifted user's prompt rate back down.

Hardware mismatches (different hardware_concurrency) downgrade throughput
findings to warnings: comparing wall-clock across machine shapes is
meaningless, but the allocation contract still holds everywhere.

Usage:
  tools/check_bench_regression.py --fresh FRESH.json --baseline BASELINE.json
      [--tolerance 0.40]

Exit code 0 = OK, 1 = regression, 2 = usage/parse error. Wired as the
opt-in ctest label `bench-regression` (configure with
-DCOREDA_BENCH_REGRESSION=ON; see tests/CMakeLists.txt) so tier-1 runs
never depend on wall-clock.
"""

import argparse
import json
import sys


def load_records(path):
    """Parses a JSON-lines bench file into {(bench, jobs): record}."""
    records = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"error: {path}:{line_no}: unparsable JSON: {e}")
                key = (record.get("bench"), record.get("jobs"))
                if None in key:
                    raise SystemExit(
                        f"error: {path}:{line_no}: record lacks bench/jobs")
                # Later records win: re-running a bench appends.
                records[key] = record
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional throughput drop (default "
                             "0.40)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)

    failures = []
    warnings = []
    for key, base in sorted(baseline.items()):
        bench, jobs = key
        got = fresh.get(key)
        if got is None:
            failures.append(f"{bench} (jobs={jobs}): missing from fresh run")
            continue

        same_hw = (base.get("hardware_concurrency") is not None and
                   base.get("hardware_concurrency")
                   == got.get("hardware_concurrency"))
        for metric in ("trials_per_sec", "episodes_per_sec",
                       "sessions_per_sec"):
            if metric not in base:
                continue
            base_v, got_v = base[metric], got.get(metric, 0.0)
            floor = base_v * (1.0 - args.tolerance)
            if got_v >= floor:
                continue
            message = (f"{bench} (jobs={jobs}): {metric} {got_v:.1f} < "
                       f"{floor:.1f} (baseline {base_v:.1f} - {args.tolerance:.0%})")
            if same_hw:
                failures.append(message)
            else:
                warnings.append(message + " [hardware mismatch: warning only]")

        for metric in ("steady_state_allocs_per_episode",
                       "steady_state_allocs_per_session",
                       "steady_state_allocs_per_retrain"):
            if metric in base and got.get(metric, 0.0) > base[metric]:
                failures.append(
                    f"{bench} (jobs={jobs}): {metric} {got.get(metric)} > "
                    f"baseline {base[metric]} — the zero-allocation "
                    f"contract broke")

        # Exact, hardware-independent: the serve bench's hit/swap split is
        # determined entirely by the workload shape.
        if "pool_hit_rate" in base and (got.get("pool_hit_rate", 0.0)
                                        < base["pool_hit_rate"]):
            failures.append(
                f"{bench} (jobs={jobs}): pool_hit_rate "
                f"{got.get('pool_hit_rate')} < baseline "
                f"{base['pool_hit_rate']} — residency/sharding behaviour "
                f"changed")

        # The closed loop is deterministic end to end: every drifted user
        # the baseline recovered must still recover, at least as fast, to
        # at least as low a post-retrain prompt rate.
        if "recovered_users" in base and (got.get("recovered_users", 0)
                                          < base["recovered_users"]):
            failures.append(
                f"{bench} (jobs={jobs}): recovered_users "
                f"{got.get('recovered_users')} < baseline "
                f"{base['recovered_users']} — drifted users no longer "
                f"recover")
        for metric in ("recovery_sessions_max",
                       "post_retrain_prompts_per_session"):
            if metric in base and got.get(metric, 0.0) > base[metric]:
                failures.append(
                    f"{bench} (jobs={jobs}): {metric} {got.get(metric)} > "
                    f"baseline {base[metric]} — the retrain loop recovers "
                    f"slower")

    for message in warnings:
        print(f"warning: {message}")
    if failures:
        for message in failures:
            print(f"REGRESSION: {message}")
        return 1
    print(f"ok: {len(baseline)} baseline records held "
          f"(tolerance {args.tolerance:.0%}, {len(warnings)} warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
