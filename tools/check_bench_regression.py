#!/usr/bin/env python3
"""Compares fresh BENCH_*.json timing records against committed baselines.

The committed BENCH_parallel.json / BENCH_fleet.json / BENCH_sessions.json /
BENCH_serve.json / BENCH_retrain.json / BENCH_fleet_serve.json /
BENCH_scenarios.json files double as performance baselines. This checker
re-keys both files by (bench, jobs, lanes) and gates every metric through
one of three explicit tables:

EQUALITY gates — behavioural counters of the scenario corpus
(BENCH_scenarios.json: sessions, prompts, recoveries, switches, pool
residency, the order-independent checksum, ...). The runner's contract
makes them pure functions of the committed .scenario file, so fresh must
equal baseline EXACTLY, in both directions, at every job count — a drift
of 1 in either direction is a behaviour change:

EXACT gates — deterministic functions of the workload shape and the build,
identical on any machine. These are NEVER downgraded to warnings on a
hardware mismatch; a miss is a behaviour change, not noise:

  * allocation contracts — steady_state_allocs_per_{episode,session,retrain}
    must never exceed baseline (zero-allocation contracts are exact);
    whole-drain allocs_per_session gets a 0.05 epsilon that only absorbs
    the parallel path's per-trial task handoff (a real per-session cold
    allocation shows up as ~+1.0);
  * hit rates — pool_hit_rate is a pure function of the workload shape and
    must never decrease: a drop means residency/sharding changed behaviour;
  * byte counts — flush_bytes_per_retrain (v3 snapshot chain) and
    segment_bytes_per_retrain (v2 segment delta chain) must never grow:
    write amplification is a pure function of table shape + replay stream.
    index_bytes_per_user and resident_bytes_per_user gate the fleet's
    per-user memory budget the same way. append_reduction (anchor bytes /
    actual bytes per append) must never decrease;
  * closed-loop recovery — recovered_users must not decrease;
    recovery_sessions_max / post_retrain_prompts_per_session must not
    increase.

BANDED gates — wall-clock, hence noisy and machine-shaped. Only these are
downgraded to warnings when hardware_concurrency differs from the baseline:

  * throughput floors — trials_per_sec / episodes_per_sec /
    sessions_per_sec may drop at most --tolerance (default 0.40) below
    baseline: catch collapses, not jitter;
  * tail-latency ceilings — p50_ns / p99_ns / p999_ns get per-metric bands
    scaled from --latency-tolerance (default 1.00): p50 may grow 1x the
    tolerance, p99 2x, p999 4x, plus absolute slack (1 ms / 2 ms / 10 ms).
    The slack makes microsecond-scale baselines gateable: preemption adds
    milliseconds in absolute terms, and a round's p999 rests on a handful
    of sessions. The gate catches the mmap/eviction path collapsing
    (10-100x), not scheduler jitter;
  * cold-start ceiling — cold_start_scan_ms (the fleet store's
    scan-on-open index rebuild) may grow 4x the latency tolerance plus
    50 ms slack: reopen cost scales with records on disk, and the gate is
    for the scan going accidentally quadratic, not for a cold page cache.

Any metric present in a baseline record but absent from the fresh run is a
failure for exact gates (the bench stopped reporting a contract) and a
warning for banded ones.

Usage:
  tools/check_bench_regression.py --fresh FRESH.json --baseline BASELINE.json
      [--tolerance 0.40] [--latency-tolerance 1.00]

Exit code 0 = OK, 1 = regression, 2 = usage/parse error. Wired as the
opt-in ctest label `bench-regression` (configure with
-DCOREDA_BENCH_REGRESSION=ON; see tests/CMakeLists.txt) so tier-1 runs
never depend on wall-clock.
"""

import argparse
import json
import sys

# --- Equality gates: fresh must equal baseline exactly ---------------------
# metric -> reason. Used by the scenario corpus (bench "scenario/<name>"),
# whose counters are deterministic functions of the committed .scenario
# file at any job count. Never hardware-downgraded, gated both directions.
EXACT_EQUALITIES = {
    "sessions": "the arrival pattern served a different session count",
    "completed_sessions": "scenario completion behaviour changed",
    "segments": "the compiled script changed shape",
    "segments_completed": "segment completion behaviour changed",
    "prompts": "the reminding loop fired a different number of prompts",
    "praises": "the praise/recovery loop changed behaviour",
    "wrong_tool_recoveries": "wrong-tool rescue behaviour changed",
    "segment_switches": "recognition-gated switching changed behaviour",
    "idle_episodes": "idle-gap episode segmentation changed behaviour",
    "pool_hits": "pool residency changed",
    "pool_swaps": "pool residency changed",
    "rejected_bundles": "bundle checkout validation changed behaviour",
    "checksum": "some session's outcome changed (order-independent "
                "digest over every per-session counter)",
}

# --- Exact gates: never hardware-downgraded --------------------------------
# metric -> (epsilon, reason). Fresh value must be <= baseline + epsilon.
EXACT_CEILINGS = {
    "steady_state_allocs_per_episode":
        (0.0, "the zero-allocation contract broke"),
    "steady_state_allocs_per_session":
        (0.0, "the zero-allocation contract broke"),
    "steady_state_allocs_per_retrain":
        (0.0, "the zero-allocation contract broke"),
    "allocs_per_session":
        (0.05, "a per-session allocation crept into the drain path"),
    "flush_bytes_per_retrain":
        (0.0, "snapshot write amplification grew"),
    "segment_bytes_per_retrain":
        (1e-6, "segment write amplification grew — the delta chain "
               "stopped paying"),
    "index_bytes_per_user":
        (1e-6, "the user-index slab grew past its per-user budget"),
    "resident_bytes_per_user":
        (1e-6, "resident per-user state grew past its budget"),
    "recovery_sessions_max":
        (0.0, "the retrain loop recovers slower"),
    "post_retrain_prompts_per_session":
        (0.0, "the retrain loop recovers slower"),
    # Chaos-soak invariants (bench_chaos_soak). Counters, not timings: a
    # baseline of 0 means any nonzero fresh value is a crash-consistency
    # bug, so these are never hardware-downgraded.
    "invariant_violations":
        (0.0, "a chaos-soak invariant broke — committed state was lost, "
              "a reopen diverged from the live store, or a drifted user "
              "failed to recover under faults"),
    "committed_versions_lost":
        (0.0, "a committed policy version regressed under fault "
              "injection — the pre-publish crash contract broke"),
    "reopen_mismatches":
        (0.0, "a reopened store recovered a different view than the live "
              "store — the longest-valid-prefix contract broke"),
}
# metric -> reason. Fresh value must be >= baseline.
EXACT_FLOORS = {
    "pool_hit_rate": "residency/sharding behaviour changed",
    "recovered_users": "drifted users no longer recover",
    "append_reduction": "the delta chain's append-traffic win shrank",
}

# --- Banded gates: hardware mismatch downgrades to warnings ----------------
THROUGHPUT_METRICS = ("trials_per_sec", "episodes_per_sec",
                      "sessions_per_sec")
# metric -> (tolerance scale, absolute slack in the metric's own unit).
LATENCY_CEILINGS = {
    "p50_ns": (1.0, 1e6),
    "p99_ns": (2.0, 2e6),
    "p999_ns": (4.0, 10e6),
    "cold_start_scan_ms": (4.0, 50.0),
}


def load_records(path):
    """Parses a JSON-lines bench file into {(bench, jobs, lanes): record}."""
    records = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as e:
                    raise SystemExit(
                        f"error: {path}:{line_no}: unparsable JSON: {e}")
                # Lane records share a bench name with their scalar
                # siblings; "lanes" (default 1 — most benches don't emit
                # it) keeps them as separate gated entries.
                key = (record.get("bench"), record.get("jobs"),
                       record.get("lanes", 1))
                if key[0] is None or key[1] is None:
                    raise SystemExit(
                        f"error: {path}:{line_no}: record lacks bench/jobs")
                # Later records win: re-running a bench appends.
                records[key] = record
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="freshly generated BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed fractional throughput drop (default "
                             "0.40)")
    parser.add_argument("--latency-tolerance", type=float, default=1.00,
                        help="allowed fractional growth of the latency "
                             "ceilings (default 1.00 = 2x for p50)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    if args.latency_tolerance < 0.0:
        print("error: --latency-tolerance must be >= 0", file=sys.stderr)
        return 2

    baseline = load_records(args.baseline)
    fresh = load_records(args.fresh)

    failures = []
    warnings = []
    for key, base in sorted(baseline.items()):
        bench, jobs, lanes = key
        label = (f"{bench} (jobs={jobs}, lanes={lanes})" if lanes != 1
                 else f"{bench} (jobs={jobs})")
        got = fresh.get(key)
        if got is None:
            failures.append(f"{label}: missing from fresh run")
            continue

        same_hw = (base.get("hardware_concurrency") is not None and
                   base.get("hardware_concurrency")
                   == got.get("hardware_concurrency"))

        def banded(message):
            """Banded gates are wall-clock: a hardware mismatch makes the
            comparison meaningless, so the finding becomes a warning."""
            if same_hw:
                failures.append(message)
            else:
                warnings.append(message +
                                " [hardware mismatch: warning only]")

        # --- Equality gates (scenario corpus only, never downgraded) ---
        # Scoped by bench name: other benches reuse key names like
        # "sessions" for shape parameters that are not equality contracts.
        if bench.startswith("scenario/"):
            for metric, reason in EXACT_EQUALITIES.items():
                if metric not in base:
                    continue
                got_v = got.get(metric)
                if got_v is None:
                    failures.append(
                        f"{label}: {metric} missing from fresh run "
                        f"(baseline {base[metric]})")
                elif got_v != base[metric]:
                    failures.append(
                        f"{label}: {metric} {got_v} != baseline "
                        f"{base[metric]} — {reason}")

        # --- Exact gates (never downgraded) ----------------------------
        for metric, (epsilon, reason) in EXACT_CEILINGS.items():
            if metric not in base:
                continue
            got_v = got.get(metric)
            if got_v is None:
                failures.append(
                    f"{label}: {metric} missing from fresh run "
                    f"(baseline {base[metric]})")
            elif got_v > base[metric] + epsilon:
                bound = (f"{base[metric]} + {epsilon}" if epsilon
                         else f"{base[metric]}")
                failures.append(
                    f"{label}: {metric} {got_v} > baseline {bound} — "
                    f"{reason}")
        for metric, reason in EXACT_FLOORS.items():
            if metric not in base:
                continue
            got_v = got.get(metric)
            if got_v is None:
                failures.append(
                    f"{label}: {metric} missing from fresh run "
                    f"(baseline {base[metric]})")
            elif got_v < base[metric]:
                failures.append(
                    f"{label}: {metric} {got_v} < baseline "
                    f"{base[metric]} — {reason}")

        # --- Banded gates (hardware mismatch -> warning) ---------------
        for metric in THROUGHPUT_METRICS:
            if metric not in base:
                continue
            base_v, got_v = base[metric], got.get(metric, 0.0)
            floor = base_v * (1.0 - args.tolerance)
            if got_v < floor:
                banded(f"{label}: {metric} {got_v:.1f} < {floor:.1f} "
                       f"(baseline {base_v:.1f} - {args.tolerance:.0%})")

        for metric, (scale, slack) in LATENCY_CEILINGS.items():
            if metric not in base:
                continue
            base_v, got_v = base[metric], got.get(metric, 0.0)
            tolerance = scale * args.latency_tolerance
            ceiling = base_v * (1.0 + tolerance) + slack
            if got_v > ceiling:
                banded(f"{label}: {metric} {got_v:.0f} > {ceiling:.0f} "
                       f"(baseline {base_v:.0f} + {tolerance:.0%} + "
                       f"{slack:g} slack)")

    for message in warnings:
        print(f"warning: {message}")
    if failures:
        for message in failures:
            print(f"REGRESSION: {message}")
        return 1
    print(f"ok: {len(baseline)} baseline records held "
          f"(tolerance {args.tolerance:.0%}, {len(warnings)} warnings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
