// The `coreda` command-line tool: train, inspect, and simulate CoReDA
// deployments without writing C++. See `coreda help`.

#include <iostream>

#include "tools/cli_commands.hpp"

int main(int argc, char** argv) {
  const coreda::util::Flags flags = coreda::util::Flags::parse(argc, argv);
  return coreda::cli::run_command(flags, std::cout, std::cerr);
}
