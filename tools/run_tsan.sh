#!/usr/bin/env bash
# Builds the exec + sim test binaries under ThreadSanitizer and runs them.
# The exec layer is the only intentionally multi-threaded code in the repo;
# the sim scheduler rides along to prove a Scheduler instance stays
# single-threaded under TrialRunner fan-out.
#
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DCOREDA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target test_exec test_sim test_trace \
  bench_fleet_throughput bench_session_throughput bench_serve_throughput \
  bench_retrain_recovery bench_fleet_serve bench_chaos_soak \
  bench_scenario_corpus

export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$BUILD_DIR"/tests/test_exec
"$BUILD_DIR"/tests/test_sim
# Dataset tests exercise sensed_training_set_parallel (sensing stacks on
# pool workers).
"$BUILD_DIR"/tests/test_trace --gtest_filter='DatasetFixture.*'
# The fleet bench is the heaviest TrialRunner consumer: N concurrent
# RoutineLearners plus the global operator-new counter (relaxed atomic) on
# every worker. A small fleet at --jobs=4 is enough for TSan to observe
# every cross-thread edge; timing output is irrelevant here.
"$BUILD_DIR"/bench/bench_fleet_throughput --users=50 --episodes=40 --jobs=4 \
  > /dev/null
# Same fleet through the SoA lane engine: lane batches train inside trial
# workers, so TSan checks the batched kernels' slabs never alias across
# concurrent trials.
"$BUILD_DIR"/bench/bench_fleet_throughput --users=50 --episodes=40 --jobs=4 \
  --lanes=8 > /dev/null
# The session bench fans whole closed-loop CoredaSystems (scheduler, radio,
# station, actor — all single-threaded by contract) across pool workers:
# TSan proves no system state leaks between concurrent trials.
"$BUILD_DIR"/bench/bench_session_throughput --users=8 --sessions=5 --jobs=4 \
  > /dev/null
# The serve bench adds the multi-tenant edges on top: pool workers write
# back Q-tables into a shared PolicyStore and bump shared-looking counters.
# Correctness rests on disjoint ownership (each user belongs to exactly one
# statically-sharded slot, each slot to exactly one trial); TSan proves the
# partition really is disjoint — no locks anywhere on the serve path.
"$BUILD_DIR"/bench/bench_serve_throughput --users=16 --slots=4 --sessions=5 \
  --jobs=4 > /dev/null
# The retrain bench closes the loop under TSan: serve trials hand off to
# retrain trials within one drain, lane learners replay transcript rings
# concurrently, and the refreshed tables are staged back into the shared
# store — all still lock-free on disjoint static shards.
"$BUILD_DIR"/bench/bench_retrain_recovery --users=12 --slots=4 --drifted=4 \
  --rounds=4 --jobs=4 > /dev/null
# The fleet-serve bench stacks the mmap segment store under the shard fan-
# out: shard trials append/load through disjoint writer chains (relaxed
# atomic live/reachable counters are the only shared-looking store state)
# while the main thread publishes the user index between drains. TSan
# proves the writer partitioning really is disjoint. Two shapes: a small
# fleet that compacts and rolls segments quickly, and the 1M-user register
# + packed-slab + index-reserve path of the production config (sparse
# active set keeps the session count TSan-sized; the retrain write-back
# phase runs its delta chains under the same fan-out in both).
"$BUILD_DIR"/bench/bench_fleet_serve --users=200 --active=50 --rounds=2 \
  --jobs=4 --dir="$BUILD_DIR/fleet_serve_tsan" > /dev/null
"$BUILD_DIR"/bench/bench_fleet_serve --users=1000000 --active=100 \
  --rounds=1 --retrain-users=64 --retrain-rounds=8 --jobs=4 \
  --dir="$BUILD_DIR/fleet_serve_tsan_1m" > /dev/null
# The chaos soak runs every fault seam concurrently: shard trials evaluate
# their sites' pure decision hashes and bump the shared relaxed injection
# counters while InjectedCrash unwinds through concurrent appends and the
# per-channel burst chains advance inside their owning shard. TSan proves
# injection adds no cross-thread edges beyond the counters it owns.
"$BUILD_DIR"/bench/bench_chaos_soak --users=128 --active=64 --rounds=3 \
  --tail-rounds=1 --serve-users=12 --drifted=3 --serve-rounds=3 \
  --serve-tail-rounds=4 --jobs=4 --dir="$BUILD_DIR/chaos_tsan" > /dev/null
# The scenario corpus fans whole HomeDeployments (scheduler, radio, tracker,
# actor) across pool-slot trials while every slot stages bundle records back
# into the shared BundleStore. Correctness again rests on disjoint static
# ownership (user -> slot -> trial, user -> store entry); TSan proves the
# bundle write-back path adds no cross-thread edges.
"$BUILD_DIR"/bench/bench_scenario_corpus --jobs=4 > /dev/null

echo "TSan: all exec/sim/trace-parallel tests, the" \
     "fleet/session/serve/retrain/fleet-serve/chaos benches and the" \
     "scenario corpus passed."
