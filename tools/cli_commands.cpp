#include "tools/cli_commands.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/home.hpp"
#include "core/scenario.hpp"
#include "core/system.hpp"
#include "faults/faults.hpp"
#include "planning/serialize.hpp"
#include "serve/chaos.hpp"
#include "serve/engine.hpp"
#include "serve/scenario_runner.hpp"
#include "sim/scenario_dsl.hpp"
#include "serve/segment_store.hpp"
#include "trace/dataset.hpp"
#include "util/table.hpp"

namespace coreda::cli {

namespace {

constexpr const char* kUsage = R"(coreda — context-aware ADL reminding (CoReDA reproduction)

usage: coreda <command> [--flags]

commands:
  list                         the deployment catalog (ADLs, tools, uids)
  simulate  --adl=<name> [--severity=0.5] [--sessions=3] [--seed=42]
            [--transcript]    closed-loop assisted sessions
  train     --adl=<name> --out=<file> [--episodes=120] [--seed=42]
                              train a planner, save the policy snapshot
  prompt    --adl=<name> --policy=<file> [--prev=<uid>] [--cur=<uid>]
                              next-step prompt from a saved policy
  policy save    --adl=<name> --out=<file> [--episodes=120] [--seed=42]
                 [--format=v2|v1|v3] [--version=1]
                              train and save a policy snapshot
  policy load    --adl=<name> --in=<file>
                              load a snapshot (v1, v2 or v3), report accuracy
  policy inspect --in=<file|store dir>
                              decode a snapshot header (v3: walk the delta
                              chain), or summarize a segment-store
                              directory, without loading it
  policy migrate --adl=<name> --from=<v2 dir> --out=<store dir>
                 [--writers=1] [--to=store|v3]
                              migrate per-file v2 snapshots into a
                              fleet-tier segment store, or (--to=v3) into
                              per-file delta-encoded v3 snapshots
  faults plan    [--seed=1] [--rounds=6] [--out=<file>]
                              write the standard chaos fault plan (text,
                              editable, re-playable)
  faults replay  [--seed=1] [--plan=<file>] [--users=96] [--active=48]
                 [--rounds=4] [--tail-rounds=1] [--dir=<store dir>]
                 [--jobs=N]   deterministic chaos replay: soak the fleet
                              tier under {seed, plan}, print the per-round
                              invariant log and the per-site injection
                              log (byte-identical at any --jobs)
  scenario                     replay the paper's Figure 1 timeline
  scenario run <file> [--jobs=N]
                              execute a .scenario plan through the
                              multi-ADL serving tier; metrics are
                              byte-identical at any --jobs
  scenario check <file>        parse a .scenario plan and print its
                              canonical form (round-trip validated)
  report    [--days=7] [--seed=42]
                              multi-day caregiver summary
  retrain   [--users=12] [--slots=3] [--drifted=3] [--rounds=8]
            [--burst=2] [--threshold=2.5] [--jobs=N]
                              closed-loop drift recovery: serve a fleet
                              where some users start from a stale policy,
                              flag them, retrain on their transcripts and
                              report the recovery
  home      [--severity=0.5] [--sessions=6] [--seed=42] [--hints]
                              multi-ADL sessions with activity recognition
  help                         this message
)";

patient::PatientProfile profile_from(const util::Flags& flags) {
  patient::PatientProfile profile = patient::PatientProfile::with_severity(
      flags.get("user", "Resident"), flags.get_double("severity", 0.5));
  return profile;
}

int cmd_list(std::ostream& out) {
  adl::AdlLibrary library;
  util::TextTable table("Deployment catalog");
  table.set_header({"ADL", "Step", "Tool (node uid)", "Sensor"});
  for (const adl::Adl& adl : library.adls()) {
    for (const adl::AdlRoutine& routine : adl.routines()) {
      for (const adl::AdlStep& step : routine.steps()) {
        const adl::Tool& tool = library.tools().at(step.tool);
        table.add_row({adl.name() + " (" + routine.name() + ")", step.name,
                       tool.name + " (" + std::to_string(tool.id) + ")",
                       std::string(to_string(tool.sensor))});
      }
    }
  }
  out << table.render();
  return 0;
}

int cmd_simulate(const util::Flags& flags, std::ostream& out,
                 std::ostream& err) {
  const std::string adl_name = flags.get("adl");
  if (adl_name.empty()) {
    err << "simulate: --adl=<name> is required (see 'coreda list')\n";
    return 1;
  }
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);

  core::SystemConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  core::CoredaSystem system(library, adl, config);
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("Trainer", 0.0),
      config.seed + 1);
  system.pretrain(datasets.sensed_training_set(adl, 120));

  const auto sessions = flags.get_int("sessions", 3);
  const patient::PatientProfile profile = profile_from(flags);

  util::TextTable table("Assisted sessions — " + adl.name());
  table.set_header({"#", "Completed", "Steps", "Prompts", "Praises",
                    "Elapsed (s)"});
  int completed = 0;
  for (std::int64_t i = 0; i < sessions; ++i) {
    const core::SessionResult result =
        system.run_session(profile, sim::Duration::minutes(40.0));
    completed += result.completed;
    table.add_row({std::to_string(i + 1), result.completed ? "yes" : "no",
                   std::to_string(result.steps_completed),
                   std::to_string(result.prompts_total),
                   std::to_string(result.praises),
                   util::format_fixed(result.elapsed.to_seconds(), 0)});
    if (flags.get_bool("transcript")) {
      for (const auto& r : system.reminder().log()) {
        out << "  [" << util::format_fixed(r.at.to_seconds(), 1) << "s] "
            << to_string(r.trigger) << " -> " << r.text << '\n';
      }
    }
  }
  out << table.render();
  out << completed << "/" << sessions << " sessions completed\n";
  return 0;
}

int cmd_train(const util::Flags& flags, std::ostream& out,
              std::ostream& err) {
  const std::string adl_name = flags.get("adl");
  const std::string out_path = flags.get("out");
  if (adl_name.empty() || out_path.empty()) {
    err << "train: --adl=<name> and --out=<file> are required\n";
    return 1;
  }
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);
  const auto episodes = flags.get_int("episodes", 120);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  planning::RoutineLearner learner(adl, util::Rng(seed));
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("Trainer", 0.0),
      seed + 1);
  for (const auto& ep : datasets.sensed_training_set(
           adl, static_cast<std::size_t>(episodes))) {
    learner.train_episode(ep);
  }

  std::ofstream file(out_path);
  if (!file) {
    err << "train: cannot write '" << out_path << "'\n";
    return 2;
  }
  planning::save_policy(file, learner);
  out << "Trained " << adl.name() << " on " << episodes
      << " sensed episodes (policy accuracy "
      << util::format_percent(learner.greedy_accuracy()) << "); saved to "
      << out_path << '\n';
  return 0;
}

int cmd_prompt(const util::Flags& flags, std::ostream& out,
               std::ostream& err) {
  const std::string adl_name = flags.get("adl");
  const std::string policy_path = flags.get("policy");
  if (adl_name.empty() || policy_path.empty()) {
    err << "prompt: --adl=<name> and --policy=<file> are required\n";
    return 1;
  }
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);
  planning::RoutineLearner learner(adl, util::Rng(1));
  std::ifstream file(policy_path);
  if (!file) {
    err << "prompt: cannot read '" << policy_path << "'\n";
    return 2;
  }
  planning::load_policy(file, learner);

  const auto prev = static_cast<adl::StepId>(flags.get_int("prev", 0));
  const auto cur = static_cast<adl::StepId>(flags.get_int("cur", 0));
  const auto prompt = learner.predict(prev, cur);
  if (!prompt) {
    err << "prompt: context <" << prev << ", " << cur
        << "> is outside this ADL's vocabulary\n";
    return 1;
  }
  out << "context <" << prev << ", " << cur << "> -> use "
      << library.tools().at(prompt->action.tool).name << " (uid "
      << prompt->action.tool << ", "
      << planning::to_string(prompt->action.level) << " reminder)\n";
  return 0;
}

int cmd_policy_save(const util::Flags& flags, std::ostream& out,
                    std::ostream& err) {
  const std::string adl_name = flags.get("adl");
  const std::string out_path = flags.get("out");
  if (adl_name.empty() || out_path.empty()) {
    err << "policy save: --adl=<name> and --out=<file> are required\n";
    return 1;
  }
  const std::string format = flags.get("format", "v2");
  if (format != "v1" && format != "v2" && format != "v3") {
    err << "policy save: --format must be v1, v2 or v3\n";
    return 1;
  }
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);
  const auto episodes = flags.get_int("episodes", 120);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  planning::RoutineLearner learner(adl, util::Rng(seed));
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("Trainer", 0.0),
      seed + 1);
  for (const auto& ep : datasets.sensed_training_set(
           adl, static_cast<std::size_t>(episodes))) {
    learner.train_episode(ep);
  }

  std::ofstream file(out_path, std::ios::binary);
  if (!file) {
    err << "policy save: cannot write '" << out_path << "'\n";
    return 2;
  }
  if (format == "v1") {
    planning::save_policy(file, learner);
  } else if (format == "v3") {
    planning::save_policy_v3_full(
        file, learner.state_codec().symbols(),
        learner.action_codec().tools(), learner.q(),
        static_cast<std::uint64_t>(flags.get_int("version", 1)));
  } else {
    planning::save_policy_v2(
        file, learner,
        static_cast<std::uint64_t>(flags.get_int("version", 1)));
  }
  out << "Trained " << adl.name() << " on " << episodes
      << " sensed episodes (policy accuracy "
      << util::format_percent(learner.greedy_accuracy()) << "); saved "
      << format << " snapshot to " << out_path << '\n';
  return 0;
}

int cmd_policy_load(const util::Flags& flags, std::ostream& out,
                    std::ostream& err) {
  const std::string adl_name = flags.get("adl");
  const std::string in_path = flags.get("in");
  if (adl_name.empty() || in_path.empty()) {
    err << "policy load: --adl=<name> and --in=<file> are required\n";
    return 1;
  }
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);
  std::ifstream file(in_path, std::ios::binary);
  if (!file) {
    err << "policy load: cannot read '" << in_path << "'\n";
    return 2;
  }
  const planning::PolicyFormat format = planning::detect_policy_format(file);
  planning::RoutineLearner learner(adl, util::Rng(1));
  const std::uint64_t version = planning::load_policy_any(file, learner);
  out << "Loaded "
      << (format == planning::PolicyFormat::kTextV1 ? "v1 (text)"
          : format == planning::PolicyFormat::kBinaryV3
              ? "v3 (binary, delta chain)"
              : "v2 (binary)")
      << " snapshot";
  if (format == planning::PolicyFormat::kBinaryV2 ||
      format == planning::PolicyFormat::kBinaryV3) {
    out << ", user version " << version;
  }
  out << ": " << adl.name() << ", " << learner.q().num_states()
      << " states x " << learner.q().num_actions()
      << " actions, greedy accuracy "
      << util::format_percent(learner.greedy_accuracy()) << '\n';
  return 0;
}

int inspect_segment_store(const std::string& dir, std::ostream& out,
                          std::ostream& err) {
  if (!serve::SegmentStore::is_store_dir(dir)) {
    err << "policy inspect: '" << dir
        << "' is a directory without a store.meta — not a segment store\n";
    return 2;
  }
  const serve::SegmentStore::Info info = serve::SegmentStore::inspect(dir);
  const std::uint64_t dead =
      info.records - info.live_records - info.corrupt_records;
  out << "format: coreda-policy store v1 (segmented)\n"
      << "meta: " << (info.meta_ok ? "ok" : "MISMATCH") << '\n'
      << "q-table: " << info.num_states << " states x " << info.num_actions
      << " actions\n"
      << "vocabulary: " << info.num_steps << " steps, " << info.num_tools
      << " tools\n"
      << "segments: " << info.segments << '\n'
      << "records: " << info.records << " (" << info.live_records
      << " live, " << dead << " dead, " << info.corrupt_records
      << " corrupt)\n"
      << "users: " << info.users << " (max version " << info.max_version
      << ")\n";
  // Chain shape: how well the delta encoding is amortizing appends. A mean
  // chain length near rebase_every means most appends were deltas; 1.0
  // means every record is a full anchor.
  out << "chain shape: " << info.anchors << " anchors, " << info.deltas
      << " deltas, mean chain length "
      << util::format_fixed(info.mean_chain_length, 2) << '\n';
  for (const serve::SegmentStore::SegmentInfo& seg : info.segment_details) {
    out << "  seg w" << seg.writer << '/' << seg.seq << ": " << seg.anchors
        << " anchors, " << seg.deltas << " deltas, " << seg.live
        << " live chains, mean length "
        << util::format_fixed(seg.mean_chain_length, 2)
        << (seg.legacy ? " [legacy v1]" : "") << '\n';
  }
  return info.meta_ok && info.corrupt_records == 0 ? 0 : 2;
}

int cmd_policy_inspect(const util::Flags& flags, std::ostream& out,
                       std::ostream& err) {
  const std::string in_path = flags.get("in");
  if (in_path.empty()) {
    err << "policy inspect: --in=<file|store dir> is required\n";
    return 1;
  }
  if (std::filesystem::is_directory(in_path)) {
    return inspect_segment_store(in_path, out, err);
  }
  std::ifstream file(in_path, std::ios::binary);
  if (!file) {
    err << "policy inspect: cannot read '" << in_path << "'\n";
    return 2;
  }
  switch (planning::detect_policy_format(file)) {
    case planning::PolicyFormat::kTextV1:
      out << "format: coreda-policy v1 (text)\n"
          << "checksum: none (v1 has no integrity trailer)\n";
      return 0;
    case planning::PolicyFormat::kBinaryV2: {
      const planning::PolicyV2Info info = planning::inspect_policy_v2(file);
      out << "format: coreda-policy v2 (binary)\n"
          << "user version: " << info.version << '\n'
          << "q-table: " << info.num_states << " states x "
          << info.num_actions << " actions\n"
          << "vocabulary: " << info.steps.size() << " steps, "
          << info.tools.size() << " tools\n"
          << "checksum: " << (info.checksum_ok ? "ok" : "MISMATCH") << '\n';
      return info.checksum_ok ? 0 : 2;
    }
    case planning::PolicyFormat::kBinaryV3: {
      const planning::PolicyV3Info info = planning::inspect_policy_v3(file);
      out << "format: coreda-policy v3 (binary, delta chain)\n"
          << "anchor version: " << info.anchor.version << '\n'
          << "q-table: " << info.anchor.num_states << " states x "
          << info.anchor.num_actions << " actions\n"
          << "vocabulary: " << info.anchor.steps.size() << " steps, "
          << info.anchor.tools.size() << " tools\n"
          << "anchor checksum: "
          << (info.anchor.checksum_ok ? "ok" : "MISMATCH") << '\n';
      if (!info.anchor.checksum_ok) return 2;
      out << "chain version: " << info.version << '\n'
          << "deltas since last full: " << info.delta_count << '\n'
          << "on-disk bytes: " << info.on_disk_bytes << " (full snapshot: "
          << info.reconstructed_bytes << ")\n"
          << "tail: "
          << (info.tail_skipped ? "SKIPPED invalid record(s)" : "ok") << '\n';
      return info.tail_skipped ? 2 : 0;
    }
    case planning::PolicyFormat::kUnknown:
      break;
  }
  err << "policy inspect: '" << in_path
      << "' is not a coreda policy snapshot\n";
  return 2;
}

int cmd_policy_migrate(const util::Flags& flags, std::ostream& out,
                       std::ostream& err) {
  const std::string adl_name = flags.get("adl");
  const std::string from_dir = flags.get("from");
  const std::string out_dir = flags.get("out");
  if (adl_name.empty() || from_dir.empty() || out_dir.empty()) {
    err << "policy migrate: --adl=<name>, --from=<v2 dir> and --out=<store "
           "dir> are required\n";
    return 1;
  }
  if (!std::filesystem::is_directory(from_dir)) {
    err << "policy migrate: '" << from_dir << "' is not a directory\n";
    return 2;
  }
  adl::AdlLibrary library;
  const adl::Adl& adl = library.by_name(adl_name);

  // Register every snapshot's stem as a user, in sorted order so user ids
  // (and hence writer lanes) never depend on directory iteration order.
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(from_dir)) {
    if (entry.path().extension() == ".policy") {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  if (names.empty()) {
    err << "policy migrate: no *.policy snapshots in '" << from_dir << "'\n";
    return 2;
  }

  const std::string to = flags.get("to", "store");
  if (to != "store" && to != "v3") {
    err << "policy migrate: --to must be store or v3\n";
    return 1;
  }

  // An untrained learner carries the ADL's schema (codecs + table shape);
  // every table the store ends up holding comes from the snapshots.
  planning::RoutineLearner reference(adl, util::Rng(1));

  if (to == "v3") {
    // Per-file migration: each v2 snapshot is rewritten as a v3 anchor
    // (atomic tmp+rename), preserving its version. A v3-mode PolicyStore
    // pointed at --out then extends each file with delta appends.
    std::filesystem::create_directories(out_dir);
    const auto steps = reference.state_codec().symbols();
    const auto tools = reference.action_codec().tools();
    rl::QTable q(reference.q().num_states(), reference.q().num_actions());
    std::size_t migrated = 0;
    for (const std::string& name : names) {
      const std::string src = from_dir + "/" + name + ".policy";
      std::ifstream in(src, std::ios::binary);
      std::uint64_t version = 0;
      try {
        version = planning::load_policy_v2(in, steps, tools, q);
      } catch (const std::exception& ex) {
        err << "policy migrate: skipping '" << src << "': " << ex.what()
            << '\n';
        continue;
      }
      const std::string dst = out_dir + "/" + name + ".policy";
      const std::string tmp = dst + ".tmp";
      {
        std::ofstream dst_file(tmp, std::ios::binary | std::ios::trunc);
        if (!dst_file) {
          err << "policy migrate: cannot write '" << tmp << "'\n";
          continue;
        }
        planning::save_policy_v3_full(dst_file, steps, tools, q, version);
        if (!dst_file.flush()) {
          err << "policy migrate: short write to '" << tmp << "'\n";
          continue;
        }
      }
      std::error_code rename_error;
      std::filesystem::rename(tmp, dst, rename_error);
      if (rename_error) {
        err << "policy migrate: cannot publish '" << dst << "'\n";
        continue;
      }
      ++migrated;
    }
    out << "Migrated " << migrated << "/" << names.size()
        << " v2 snapshots from " << from_dir << " into v3 snapshots in "
        << out_dir << '\n';
    return migrated == names.size() ? 0 : 2;
  }
  serve::SegmentPolicyStoreParams params;
  params.dir = out_dir;
  params.writers =
      static_cast<std::size_t>(flags.get_int("writers", 1));
  std::size_t imported = 0;
  {
    serve::SegmentPolicyStore store(reference, params);
    for (const std::string& name : names) store.add_user(name);
    imported = store.import_v2_dir(from_dir);
  }  // destructor flushes; inspect below reads the closed store

  const serve::SegmentStore::Info info = serve::SegmentStore::inspect(out_dir);
  out << "Migrated " << imported << "/" << names.size()
      << " v2 snapshots from " << from_dir << " into segment store "
      << out_dir << " (" << info.segments << " segments, "
      << info.live_records << " live records, max version "
      << info.max_version << ")\n";
  return imported == names.size() ? 0 : 2;
}

int cmd_policy(const util::Flags& flags, std::ostream& out,
               std::ostream& err) {
  const std::string sub =
      flags.positional().empty() ? "" : flags.positional().front();
  if (sub == "save") return cmd_policy_save(flags, out, err);
  if (sub == "load") return cmd_policy_load(flags, out, err);
  if (sub == "inspect") return cmd_policy_inspect(flags, out, err);
  if (sub == "migrate") return cmd_policy_migrate(flags, out, err);
  err << "policy: expected a subcommand save|load|inspect|migrate (try "
         "'coreda help')\n";
  return 1;
}

int cmd_faults_plan(const util::Flags& flags, std::ostream& out,
                    std::ostream& err) {
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto rounds = static_cast<std::uint64_t>(flags.get_int("rounds", 6));
  const faults::FaultPlan plan = faults::FaultPlan::standard_chaos(seed, rounds);
  const std::string out_path = flags.get("out");
  if (out_path.empty()) {
    plan.save(out);
    return 0;
  }
  std::ofstream file(out_path);
  if (!file) {
    err << "faults plan: cannot write '" << out_path << "'\n";
    return 2;
  }
  plan.save(file);
  out << "Wrote standard chaos plan (seed " << seed << ", " << rounds
      << " chaos epochs, " << plan.sites.size() << " sites) to " << out_path
      << '\n';
  return 0;
}

int cmd_faults_replay(const util::Flags& flags, std::ostream& out,
                      std::ostream& err) {
  serve::ChaosFleetParams p;
  p.users = static_cast<std::size_t>(flags.get_int("users", 96));
  p.active = static_cast<std::size_t>(flags.get_int("active", 48));
  p.chaos_rounds = static_cast<std::size_t>(flags.get_int("rounds", 4));
  p.tail_rounds = static_cast<std::size_t>(flags.get_int("tail-rounds", 1));
  p.dir = flags.get("dir");
  if (p.dir.empty()) {
    p.dir = (std::filesystem::temp_directory_path() / "coreda_faults_replay")
                .string();
  }

  // The replay contract is {seed, plan}: a plan file fixes the schedule, an
  // explicit --seed re-rolls it without editing the file.
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  faults::FaultPlan plan;
  const std::string plan_path = flags.get("plan");
  if (plan_path.empty()) {
    plan = faults::FaultPlan::standard_chaos(seed, p.chaos_rounds);
  } else {
    std::ifstream file(plan_path);
    if (!file) {
      err << "faults replay: cannot read '" << plan_path << "'\n";
      return 2;
    }
    try {
      plan = faults::FaultPlan::parse(file);
    } catch (const std::exception& ex) {
      err << "faults replay: " << plan_path << ": " << ex.what() << '\n';
      return 2;
    }
    if (flags.has("seed")) plan.seed = seed;
  }

  out << "Replaying fault plan seed " << plan.seed << " (" << plan.sites.size()
      << " sites) over " << p.users << " fleet users, " << p.chaos_rounds
      << " chaos + " << p.tail_rounds << " tail rounds x " << p.active
      << " sessions\n\n";

  serve::ChaosFleetSoak soak(p, std::move(plan));
  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  const serve::ChaosFleetResult result = soak.run(runner);

  util::TextTable rounds("Replay per round (cumulative counters)");
  rounds.set_header({"round", "epoch", "sessions", "dropped", "crashed",
                     "radio lost", "committed", "lost", "reopen bad"});
  for (std::size_t r = 0; r < result.rounds.size(); ++r) {
    const serve::ChaosRoundStats& rs = result.rounds[r];
    rounds.add_row({std::to_string(r), std::to_string(rs.epoch),
                    std::to_string(rs.sessions), std::to_string(rs.dropped),
                    std::to_string(rs.crashed_appends),
                    std::to_string(rs.radio_lost),
                    std::to_string(rs.committed_users),
                    std::to_string(rs.round_versions_lost),
                    std::to_string(rs.round_reopen_mismatches +
                                   rs.round_reopen_load_failures)});
  }
  out << rounds.render();

  out << "\nPer-site injection log:\n";
  soak.injector().report(out);
  out << '\n'
      << result.injected_crashes << " injected crashes, "
      << result.injected_corruptions << " corruptions, "
      << result.report.dropped_sessions << " dropped sessions, "
      << result.report.radio_lost_frames << " radio frames lost; "
      << result.invariant_violations << " invariant violations\n";
  if (result.invariant_violations != 0) {
    err << "faults replay: " << result.invariant_violations
        << " invariant violation(s) — committed_versions_lost="
        << result.committed_versions_lost
        << " reopen_mismatches=" << result.reopen_mismatches
        << " reopen_load_failures=" << result.reopen_load_failures << '\n';
    return 2;
  }
  return 0;
}

int cmd_faults(const util::Flags& flags, std::ostream& out,
               std::ostream& err) {
  const std::string sub =
      flags.positional().empty() ? "" : flags.positional().front();
  if (sub == "plan") return cmd_faults_plan(flags, out, err);
  if (sub == "replay") return cmd_faults_replay(flags, out, err);
  err << "faults: expected a subcommand plan|replay (try 'coreda help')\n";
  return 1;
}

int cmd_scenario_run(const util::Flags& flags, std::ostream& out,
                     std::ostream& err) {
  if (flags.positional().size() < 2) {
    err << "scenario run: expected a .scenario file "
           "(coreda scenario run tests/scenarios/interleaved_tea_brush"
           ".scenario)\n";
    return 1;
  }
  const std::string& path = flags.positional()[1];
  std::ifstream in(path);
  if (!in) {
    err << "scenario run: cannot read " << path << '\n';
    return 1;
  }
  const sim::ScenarioPlan plan = sim::ScenarioPlan::parse(in);
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs", 1));
  const serve::ScenarioRunner runner;
  const serve::ScenarioSummary sum = runner.run(plan, jobs == 0 ? 1 : jobs);
  out << serve::format_scenario_report(
      std::filesystem::path(path).stem().string(), plan, sum);
  // Incomplete sessions are a scenario outcome (high severity is supposed
  // to defeat some residents), not a failure of the run itself.
  return 0;
}

int cmd_scenario_check(const util::Flags& flags, std::ostream& out,
                       std::ostream& err) {
  if (flags.positional().size() < 2) {
    err << "scenario check: expected a .scenario file\n";
    return 1;
  }
  const std::string& path = flags.positional()[1];
  std::ifstream in(path);
  if (!in) {
    err << "scenario check: cannot read " << path << '\n';
    return 1;
  }
  const sim::ScenarioPlan plan = sim::ScenarioPlan::parse(in);
  std::stringstream canonical;
  plan.save(canonical);
  if (sim::ScenarioPlan::parse(canonical) != plan) {
    err << "scenario check: canonical form does not round-trip (bug)\n";
    return 2;
  }
  plan.save(out);
  return 0;
}

int cmd_scenario(const util::Flags& flags, std::ostream& out,
                 std::ostream& err) {
  const std::string sub =
      flags.positional().empty() ? "" : flags.positional().front();
  if (sub == "run") return cmd_scenario_run(flags, out, err);
  if (sub == "check") return cmd_scenario_check(flags, out, err);
  if (!sub.empty()) {
    err << "scenario: unknown subcommand '" << sub
        << "' (expected run|check, or no subcommand for the Figure 1 "
           "replay)\n";
    return 1;
  }
  adl::AdlLibrary library;
  core::ScenarioPlayer player(library);
  player.play_figure1(&out);
  return player.last_result().completed ? 0 : 2;
}

int cmd_home(const util::Flags& flags, std::ostream& out) {
  adl::AdlLibrary library;
  core::SystemConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  core::HomeDeployment home(library, config);
  home.pretrain(120, config.seed + 3);

  patient::PatientProfile profile = profile_from(flags);
  const auto sessions = flags.get_int("sessions", 6);
  const bool hints = flags.get_bool("hints");
  const char* rotation[] = {"Tea-making", "Tooth-brushing", "Hand-washing"};

  util::TextTable table("Multi-ADL home sessions");
  table.set_header({"#", "Attempted", "Recognized", "Completed", "Prompts"});
  int completed = 0;
  for (std::int64_t i = 0; i < sessions; ++i) {
    const char* adl = rotation[i % 3];
    const core::HomeSessionResult result = home.run_session(
        adl, profile, sim::Duration::minutes(40.0), hints ? adl : "");
    completed += result.completed;
    table.add_row({std::to_string(i + 1), adl,
                   result.recognized_adl.empty() ? "(hint only)"
                                                 : result.recognized_adl,
                   result.completed ? "yes" : "no",
                   std::to_string(result.prompts_total)});
  }
  out << table.render();
  out << completed << "/" << sessions << " sessions completed\n";
  return 0;
}

int cmd_report(const util::Flags& flags, std::ostream& out) {
  adl::AdlLibrary library;
  const auto days = flags.get_int("days", 7);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  util::TextTable table("Caregiver summary (" + std::to_string(days) +
                        " days, simulated)");
  table.set_header({"Severity", "ADL", "Completed", "Prompts/session"});
  for (double severity : {0.2, 0.5, 0.8}) {
    for (const char* adl_name : {"Tea-making", "Tooth-brushing"}) {
      const adl::Adl& adl = library.by_name(adl_name);
      core::SystemConfig config;
      config.seed = seed + static_cast<std::uint64_t>(severity * 100);
      core::CoredaSystem system(library, adl, config);
      trace::DatasetBuilder datasets(
          library, patient::PatientProfile::with_severity("T", 0.0),
          config.seed + 1);
      system.pretrain(datasets.sensed_training_set(adl, 120));

      const patient::PatientProfile profile =
          patient::PatientProfile::with_severity("Resident", severity);
      int completed = 0;
      std::size_t prompts = 0;
      for (std::int64_t d = 0; d < days; ++d) {
        const auto result =
            system.run_session(profile, sim::Duration::minutes(45.0));
        completed += result.completed;
        prompts += result.prompts_total;
      }
      table.add_row(
          {util::format_fixed(severity, 1), adl_name,
           std::to_string(completed) + "/" + std::to_string(days),
           util::format_fixed(static_cast<double>(prompts) /
                                  static_cast<double>(days),
                              1)});
    }
  }
  out << table.render();
  return 0;
}

int cmd_retrain(const util::Flags& flags, std::ostream& out,
                std::ostream& err) {
  const auto users = static_cast<std::size_t>(flags.get_int("users", 12));
  const auto slots = static_cast<std::size_t>(flags.get_int("slots", 3));
  const auto drifted = static_cast<std::size_t>(flags.get_int("drifted", 3));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 8));
  const auto burst = static_cast<std::size_t>(flags.get_int("burst", 2));
  const double threshold = flags.get_double("threshold", 2.5);
  if (users == 0 || drifted > users) {
    err << "retrain: need --users >= 1 and --drifted <= --users\n";
    return 1;
  }

  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();
  std::vector<adl::StepId> routine;
  for (const adl::AdlStep& s : tea.primary_routine().steps()) {
    routine.push_back(s.step_id());
  }
  std::vector<adl::StepId> stale_routine = routine;
  std::swap(stale_routine[0], stale_routine[1]);

  planning::RoutineLearner donor(tea, util::Rng(17));
  planning::RoutineLearner stale(tea, util::Rng(18));
  for (int i = 0; i < 80; ++i) donor.train_episode(routine);
  for (int i = 0; i < 120; ++i) stale.train_episode(stale_routine);

  serve::PolicyStore store(donor);
  serve::ServeEngineParams params;
  params.pool.slots = slots;
  params.pool.seed = 4242;
  params.drift.threshold = threshold;
  params.retrain.enabled = true;
  // Spread the stale tables across slots/lanes, like the recovery bench.
  std::vector<bool> is_drifted(users, false);
  for (std::size_t u = 0; u < users; ++u) {
    const bool drift = drifted > 0 && u % (users / drifted) == 0 &&
                       u / (users / drifted) < drifted;
    is_drifted[u] = drift;
    store.add_user("U" + std::to_string(u), drift ? stale.q() : donor.q());
  }
  serve::ServeEngine engine(library, tea, store, params);
  for (std::size_t u = 0; u < users; ++u) {
    util::Rng rng(exec::trial_seed(9001, u));
    engine.add_user("U" + std::to_string(u),
                    patient::PatientProfile::with_severity(
                        "U" + std::to_string(u), 0.1 + 0.4 * rng.uniform()));
  }

  exec::TrialRunner runner(exec::jobs_from_flags(flags));
  util::TextTable table("Closed-loop drift recovery (" +
                        std::to_string(users) + " users, " +
                        std::to_string(drifted) + " on stale policies)");
  table.set_header({"round", "flagged", "retrains", "recovered"});
  serve::ServeReport report;
  std::size_t recovered = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t u = 0; u < users; ++u) {
      engine.enqueue(static_cast<serve::UserId>(u), burst);
    }
    report = engine.drain(runner);
    recovered = 0;
    for (std::size_t u = 0; u < users; ++u) {
      const serve::ServeUserStats& s = report.users[u];
      if (is_drifted[u] && s.retrains > 0 && !s.needs_retraining) {
        ++recovered;
      }
    }
    table.add_row({std::to_string(round),
                   std::to_string(report.flagged_users),
                   std::to_string(report.retrain.jobs),
                   std::to_string(recovered) + "/" +
                       std::to_string(drifted)});
  }
  out << table.render();
  out << report.sessions << " sessions served; " << report.retrain.jobs
      << " retrain jobs replayed " << report.retrain.episodes
      << " transcript episodes; " << recovered << "/" << drifted
      << " drifted users recovered (prompt EWMA back under "
      << util::format_fixed(threshold, 1) << ")\n";
  return recovered == drifted ? 0 : 2;
}

}  // namespace

int run_command(const util::Flags& flags, std::ostream& out,
                std::ostream& err) {
  try {
    const std::string& command = flags.command();
    if (command.empty() || command == "help") {
      out << kUsage;
      return command.empty() ? 1 : 0;
    }
    if (command == "list") return cmd_list(out);
    if (command == "simulate") return cmd_simulate(flags, out, err);
    if (command == "train") return cmd_train(flags, out, err);
    if (command == "prompt") return cmd_prompt(flags, out, err);
    if (command == "policy") return cmd_policy(flags, out, err);
    if (command == "faults") return cmd_faults(flags, out, err);
    if (command == "scenario") return cmd_scenario(flags, out, err);
    if (command == "report") return cmd_report(flags, out);
    if (command == "retrain") return cmd_retrain(flags, out, err);
    if (command == "home") return cmd_home(flags, out);
    err << "unknown command '" << command << "' (try 'coreda help')\n";
    return 1;
  } catch (const std::invalid_argument& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::out_of_range& e) {
    err << "error: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    err << "failure: " << e.what() << '\n';
    return 2;
  }
}

}  // namespace coreda::cli
