#!/usr/bin/env bash
# Opt-in bench-regression gate: re-runs the fleet-throughput,
# session-throughput, serve-throughput, retrain-recovery, fleet-serve and
# chaos-soak benches at the baselines' job counts and compares the fresh
# timing records against the committed BENCH_fleet.json /
# BENCH_sessions.json / BENCH_serve.json / BENCH_retrain.json /
# BENCH_fleet_serve.json / BENCH_chaos.json via
# tools/check_bench_regression.py.
#
# Wired as the ctest label `bench-regression` when the build is configured
# with -DCOREDA_BENCH_REGRESSION=ON (see tests/CMakeLists.txt); never part
# of the default tier-1 run because it depends on wall-clock. These three
# benches are the gates of choice: they finish in seconds per job count yet
# cover the training, serving and multi-tenant throughput numbers AND every
# zero-allocation steady-state contract.
#
# Usage: tools/bench_regression_test.sh [build-dir] [tolerance]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TOLERANCE="${2:-0.40}"

for bench in bench_fleet_throughput bench_session_throughput \
             bench_serve_throughput bench_retrain_recovery \
             bench_fleet_serve bench_chaos_soak bench_scenario_corpus; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: $BUILD_DIR/bench/$bench not built (cmake --build" \
         "$BUILD_DIR --target $bench)" >&2
    exit 2
  fi
done

FRESH="$BUILD_DIR/BENCH_fleet.fresh.json"
: > "$FRESH"
# Warm-up pass, timing discarded — same rationale as tools/bench_parallel.sh.
"$BUILD_DIR/bench/bench_fleet_throughput" --jobs=1 > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_fleet_throughput" --jobs="$jobs" \
    --timing-json="$FRESH" > /dev/null
done
# Lane-engine record: same fleet, batched through the SoA lane path. The
# checker keys records by (bench, jobs, lanes), so this gates the batched
# episodes_per_sec alongside the scalar numbers.
"$BUILD_DIR/bench/bench_fleet_throughput" --jobs=1 --lanes=16 \
  --timing-json="$FRESH" > /dev/null
python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_fleet.json --tolerance "$TOLERANCE"

FRESH="$BUILD_DIR/BENCH_sessions.fresh.json"
: > "$FRESH"
"$BUILD_DIR/bench/bench_session_throughput" --jobs=1 > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_session_throughput" --jobs="$jobs" \
    --timing-json="$FRESH" > /dev/null
done
python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_sessions.json --tolerance "$TOLERANCE"

FRESH="$BUILD_DIR/BENCH_serve.fresh.json"
: > "$FRESH"
"$BUILD_DIR/bench/bench_serve_throughput" --jobs=1 > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_serve_throughput" --jobs="$jobs" \
    --timing-json="$FRESH" > /dev/null
done
python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_serve.json --tolerance "$TOLERANCE"

FRESH="$BUILD_DIR/BENCH_retrain.fresh.json"
: > "$FRESH"
"$BUILD_DIR/bench/bench_retrain_recovery" --jobs=1 > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_retrain_recovery" --jobs="$jobs" \
    --timing-json="$FRESH" > /dev/null
done
python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_retrain.json --tolerance "$TOLERANCE"

# Fleet tier: 1M registered users (the bench default) over the mmap
# segment store. The gate adds the p50/p99/p999 serve-latency percentiles,
# the cold_start_scan_ms reopen ceiling, and the exact per-user memory
# (resident_bytes_per_user, index_bytes_per_user) and per-retrain append
# traffic (segment_bytes_per_retrain, append_reduction) contracts on top
# of throughput and the allocation contract.
FRESH="$BUILD_DIR/BENCH_fleet_serve.fresh.json"
: > "$FRESH"
"$BUILD_DIR/bench/bench_fleet_serve" --jobs=1 \
  --dir="$BUILD_DIR/fleet_serve_bench" > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_fleet_serve" --jobs="$jobs" \
    --dir="$BUILD_DIR/fleet_serve_bench" --timing-json="$FRESH" > /dev/null
done
python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_fleet_serve.json --tolerance "$TOLERANCE"

# Chaos soak: both serving tiers under the standard fault plan. The gate
# here is correctness-first: invariant_violations and
# committed_versions_lost are exact counters (0 in the baseline, never
# hardware-downgraded), recovered_users is an exact floor, and the
# steady-state allocation contract must survive the fault window closing.
FRESH="$BUILD_DIR/BENCH_chaos.fresh.json"
: > "$FRESH"
"$BUILD_DIR/bench/bench_chaos_soak" --jobs=1 \
  --dir="$BUILD_DIR/chaos_bench" > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_chaos_soak" --jobs="$jobs" \
    --dir="$BUILD_DIR/chaos_bench" --timing-json="$FRESH" > /dev/null
done
python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_chaos.json --tolerance "$TOLERANCE"

# Scenario corpus: the committed tests/scenarios/*.scenario plans through
# the multi-ADL serving tier. Every behavioural counter and the checksum
# is EQUALITY-gated per (scenario, jobs) — the corpus is the repo's
# end-to-end behaviour lock, not a throughput gate.
FRESH="$BUILD_DIR/BENCH_scenarios.fresh.json"
: > "$FRESH"
"$BUILD_DIR/bench/bench_scenario_corpus" --jobs=1 > /dev/null
for jobs in 1 2 4; do
  "$BUILD_DIR/bench/bench_scenario_corpus" --jobs="$jobs" \
    --timing-json="$FRESH" > /dev/null
done
exec python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_scenarios.json --tolerance "$TOLERANCE"
