#!/usr/bin/env bash
# Opt-in bench-regression gate: re-runs the fleet-throughput bench at the
# baseline's job counts and compares the fresh timing records against the
# committed BENCH_fleet.json via tools/check_bench_regression.py.
#
# Wired as the ctest label `bench-regression` when the build is configured
# with -DCOREDA_BENCH_REGRESSION=ON (see tests/CMakeLists.txt); never part
# of the default tier-1 run because it depends on wall-clock. The fleet
# bench is the gate of choice: it finishes in well under a second per job
# count yet covers both the throughput number and the zero-allocation
# steady-state contract.
#
# Usage: tools/bench_regression_test.sh [build-dir] [tolerance]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
TOLERANCE="${2:-0.40}"

BENCH="$BUILD_DIR/bench/bench_fleet_throughput"
if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not built (cmake --build $BUILD_DIR --target" \
       "bench_fleet_throughput)" >&2
  exit 2
fi

FRESH="$BUILD_DIR/BENCH_fleet.fresh.json"
: > "$FRESH"
# Warm-up pass, timing discarded — same rationale as tools/bench_parallel.sh.
"$BENCH" --jobs=1 > /dev/null
for jobs in 1 2 4; do
  "$BENCH" --jobs="$jobs" --timing-json="$FRESH" > /dev/null
done

exec python3 tools/check_bench_regression.py \
  --fresh "$FRESH" --baseline BENCH_fleet.json --tolerance "$TOLERANCE"
