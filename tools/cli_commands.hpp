#pragma once

#include <iosfwd>

#include "util/flags.hpp"

namespace coreda::cli {

/// Dispatches one parsed command line against `out`/`err`. Returns the
/// process exit code (0 success, 1 user error, 2 execution failure).
///
/// Commands:
///   simulate   closed-loop assisted sessions and a summary
///   train      train a planner and save the policy snapshot
///   prompt     query a saved policy for the next-step prompt
///   policy     snapshot management: save / load / inspect (v1 text and
///              v2 binary formats; inspect decodes without a learner)
///   scenario   replay the paper's Figure 1 timeline
///   report     the multi-day caregiver summary
///   retrain    closed-loop drift recovery demo: flag users serving from
///              stale policies, retrain them on their own transcripts,
///              report the prompt-rate recovery (exit 0 iff all recover)
///   list       the deployment catalog (ADLs, tools, node uids)
///   help       usage
int run_command(const util::Flags& flags, std::ostream& out,
                std::ostream& err);

}  // namespace coreda::cli
