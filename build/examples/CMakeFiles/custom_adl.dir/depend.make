# Empty dependencies file for custom_adl.
# This may be replaced when dependencies are built.
