file(REMOVE_RECURSE
  "CMakeFiles/custom_adl.dir/custom_adl.cpp.o"
  "CMakeFiles/custom_adl.dir/custom_adl.cpp.o.d"
  "custom_adl"
  "custom_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
