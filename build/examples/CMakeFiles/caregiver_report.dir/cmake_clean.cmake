file(REMOVE_RECURSE
  "CMakeFiles/caregiver_report.dir/caregiver_report.cpp.o"
  "CMakeFiles/caregiver_report.dir/caregiver_report.cpp.o.d"
  "caregiver_report"
  "caregiver_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caregiver_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
