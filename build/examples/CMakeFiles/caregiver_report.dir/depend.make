# Empty dependencies file for caregiver_report.
# This may be replaced when dependencies are built.
