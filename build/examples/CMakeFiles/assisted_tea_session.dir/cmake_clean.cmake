file(REMOVE_RECURSE
  "CMakeFiles/assisted_tea_session.dir/assisted_tea_session.cpp.o"
  "CMakeFiles/assisted_tea_session.dir/assisted_tea_session.cpp.o.d"
  "assisted_tea_session"
  "assisted_tea_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assisted_tea_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
