# Empty compiler generated dependencies file for assisted_tea_session.
# This may be replaced when dependencies are built.
