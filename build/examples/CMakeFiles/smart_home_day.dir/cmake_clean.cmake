file(REMOVE_RECURSE
  "CMakeFiles/smart_home_day.dir/smart_home_day.cpp.o"
  "CMakeFiles/smart_home_day.dir/smart_home_day.cpp.o.d"
  "smart_home_day"
  "smart_home_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
