# Empty dependencies file for smart_home_day.
# This may be replaced when dependencies are built.
