
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/smart_home_day.cpp" "examples/CMakeFiles/smart_home_day.dir/smart_home_day.cpp.o" "gcc" "examples/CMakeFiles/smart_home_day.dir/smart_home_day.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coreda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/coreda_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/coreda_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/reminding/CMakeFiles/coreda_reminding.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/coreda_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/coreda_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/patient/CMakeFiles/coreda_patient.dir/DependInfo.cmake"
  "/root/repo/build/src/pavenet/CMakeFiles/coreda_pavenet.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/coreda_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/coreda_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coreda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/recognition/CMakeFiles/coreda_recognition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
