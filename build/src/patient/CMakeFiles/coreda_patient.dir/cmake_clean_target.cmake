file(REMOVE_RECURSE
  "libcoreda_patient.a"
)
