file(REMOVE_RECURSE
  "CMakeFiles/coreda_patient.dir/actor.cpp.o"
  "CMakeFiles/coreda_patient.dir/actor.cpp.o.d"
  "CMakeFiles/coreda_patient.dir/generator.cpp.o"
  "CMakeFiles/coreda_patient.dir/generator.cpp.o.d"
  "CMakeFiles/coreda_patient.dir/profile.cpp.o"
  "CMakeFiles/coreda_patient.dir/profile.cpp.o.d"
  "libcoreda_patient.a"
  "libcoreda_patient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_patient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
