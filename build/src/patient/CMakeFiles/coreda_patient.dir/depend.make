# Empty dependencies file for coreda_patient.
# This may be replaced when dependencies are built.
