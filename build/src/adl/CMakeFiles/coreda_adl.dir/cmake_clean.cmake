file(REMOVE_RECURSE
  "CMakeFiles/coreda_adl.dir/library.cpp.o"
  "CMakeFiles/coreda_adl.dir/library.cpp.o.d"
  "CMakeFiles/coreda_adl.dir/routine.cpp.o"
  "CMakeFiles/coreda_adl.dir/routine.cpp.o.d"
  "CMakeFiles/coreda_adl.dir/tool.cpp.o"
  "CMakeFiles/coreda_adl.dir/tool.cpp.o.d"
  "libcoreda_adl.a"
  "libcoreda_adl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_adl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
