# Empty compiler generated dependencies file for coreda_adl.
# This may be replaced when dependencies are built.
