
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adl/library.cpp" "src/adl/CMakeFiles/coreda_adl.dir/library.cpp.o" "gcc" "src/adl/CMakeFiles/coreda_adl.dir/library.cpp.o.d"
  "/root/repo/src/adl/routine.cpp" "src/adl/CMakeFiles/coreda_adl.dir/routine.cpp.o" "gcc" "src/adl/CMakeFiles/coreda_adl.dir/routine.cpp.o.d"
  "/root/repo/src/adl/tool.cpp" "src/adl/CMakeFiles/coreda_adl.dir/tool.cpp.o" "gcc" "src/adl/CMakeFiles/coreda_adl.dir/tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coreda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
