file(REMOVE_RECURSE
  "libcoreda_adl.a"
)
