# Empty compiler generated dependencies file for coreda_core.
# This may be replaced when dependencies are built.
