file(REMOVE_RECURSE
  "CMakeFiles/coreda_core.dir/home.cpp.o"
  "CMakeFiles/coreda_core.dir/home.cpp.o.d"
  "CMakeFiles/coreda_core.dir/scenario.cpp.o"
  "CMakeFiles/coreda_core.dir/scenario.cpp.o.d"
  "CMakeFiles/coreda_core.dir/system.cpp.o"
  "CMakeFiles/coreda_core.dir/system.cpp.o.d"
  "libcoreda_core.a"
  "libcoreda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
