file(REMOVE_RECURSE
  "libcoreda_core.a"
)
