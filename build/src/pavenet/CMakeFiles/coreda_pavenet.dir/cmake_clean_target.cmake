file(REMOVE_RECURSE
  "libcoreda_pavenet.a"
)
