file(REMOVE_RECURSE
  "CMakeFiles/coreda_pavenet.dir/base_station.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/base_station.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/calibration.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/calibration.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/detector.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/detector.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/eeprom.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/eeprom.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/energy.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/energy.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/led.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/led.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/node.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/node.cpp.o.d"
  "CMakeFiles/coreda_pavenet.dir/radio.cpp.o"
  "CMakeFiles/coreda_pavenet.dir/radio.cpp.o.d"
  "libcoreda_pavenet.a"
  "libcoreda_pavenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_pavenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
