# Empty dependencies file for coreda_pavenet.
# This may be replaced when dependencies are built.
