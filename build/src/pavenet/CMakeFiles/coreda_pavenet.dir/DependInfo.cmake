
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pavenet/base_station.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/base_station.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/base_station.cpp.o.d"
  "/root/repo/src/pavenet/calibration.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/calibration.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/calibration.cpp.o.d"
  "/root/repo/src/pavenet/detector.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/detector.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/detector.cpp.o.d"
  "/root/repo/src/pavenet/eeprom.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/eeprom.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/eeprom.cpp.o.d"
  "/root/repo/src/pavenet/energy.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/energy.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/energy.cpp.o.d"
  "/root/repo/src/pavenet/led.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/led.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/led.cpp.o.d"
  "/root/repo/src/pavenet/node.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/node.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/node.cpp.o.d"
  "/root/repo/src/pavenet/radio.cpp" "src/pavenet/CMakeFiles/coreda_pavenet.dir/radio.cpp.o" "gcc" "src/pavenet/CMakeFiles/coreda_pavenet.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coreda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/coreda_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/coreda_adl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
