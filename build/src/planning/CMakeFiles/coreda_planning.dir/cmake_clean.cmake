file(REMOVE_RECURSE
  "CMakeFiles/coreda_planning.dir/codec.cpp.o"
  "CMakeFiles/coreda_planning.dir/codec.cpp.o.d"
  "CMakeFiles/coreda_planning.dir/learner.cpp.o"
  "CMakeFiles/coreda_planning.dir/learner.cpp.o.d"
  "CMakeFiles/coreda_planning.dir/multi_routine.cpp.o"
  "CMakeFiles/coreda_planning.dir/multi_routine.cpp.o.d"
  "CMakeFiles/coreda_planning.dir/reward.cpp.o"
  "CMakeFiles/coreda_planning.dir/reward.cpp.o.d"
  "CMakeFiles/coreda_planning.dir/serialize.cpp.o"
  "CMakeFiles/coreda_planning.dir/serialize.cpp.o.d"
  "libcoreda_planning.a"
  "libcoreda_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
