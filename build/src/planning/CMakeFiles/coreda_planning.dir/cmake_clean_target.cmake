file(REMOVE_RECURSE
  "libcoreda_planning.a"
)
