# Empty compiler generated dependencies file for coreda_planning.
# This may be replaced when dependencies are built.
