
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planning/codec.cpp" "src/planning/CMakeFiles/coreda_planning.dir/codec.cpp.o" "gcc" "src/planning/CMakeFiles/coreda_planning.dir/codec.cpp.o.d"
  "/root/repo/src/planning/learner.cpp" "src/planning/CMakeFiles/coreda_planning.dir/learner.cpp.o" "gcc" "src/planning/CMakeFiles/coreda_planning.dir/learner.cpp.o.d"
  "/root/repo/src/planning/multi_routine.cpp" "src/planning/CMakeFiles/coreda_planning.dir/multi_routine.cpp.o" "gcc" "src/planning/CMakeFiles/coreda_planning.dir/multi_routine.cpp.o.d"
  "/root/repo/src/planning/reward.cpp" "src/planning/CMakeFiles/coreda_planning.dir/reward.cpp.o" "gcc" "src/planning/CMakeFiles/coreda_planning.dir/reward.cpp.o.d"
  "/root/repo/src/planning/serialize.cpp" "src/planning/CMakeFiles/coreda_planning.dir/serialize.cpp.o" "gcc" "src/planning/CMakeFiles/coreda_planning.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/coreda_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/adl/CMakeFiles/coreda_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coreda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
