file(REMOVE_RECURSE
  "CMakeFiles/coreda_baselines.dir/markov.cpp.o"
  "CMakeFiles/coreda_baselines.dir/markov.cpp.o.d"
  "CMakeFiles/coreda_baselines.dir/mdp_planner.cpp.o"
  "CMakeFiles/coreda_baselines.dir/mdp_planner.cpp.o.d"
  "CMakeFiles/coreda_baselines.dir/predictor.cpp.o"
  "CMakeFiles/coreda_baselines.dir/predictor.cpp.o.d"
  "CMakeFiles/coreda_baselines.dir/scheduled.cpp.o"
  "CMakeFiles/coreda_baselines.dir/scheduled.cpp.o.d"
  "libcoreda_baselines.a"
  "libcoreda_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
