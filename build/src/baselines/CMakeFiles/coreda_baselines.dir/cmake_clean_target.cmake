file(REMOVE_RECURSE
  "libcoreda_baselines.a"
)
