# Empty compiler generated dependencies file for coreda_baselines.
# This may be replaced when dependencies are built.
