
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/markov.cpp" "src/baselines/CMakeFiles/coreda_baselines.dir/markov.cpp.o" "gcc" "src/baselines/CMakeFiles/coreda_baselines.dir/markov.cpp.o.d"
  "/root/repo/src/baselines/mdp_planner.cpp" "src/baselines/CMakeFiles/coreda_baselines.dir/mdp_planner.cpp.o" "gcc" "src/baselines/CMakeFiles/coreda_baselines.dir/mdp_planner.cpp.o.d"
  "/root/repo/src/baselines/predictor.cpp" "src/baselines/CMakeFiles/coreda_baselines.dir/predictor.cpp.o" "gcc" "src/baselines/CMakeFiles/coreda_baselines.dir/predictor.cpp.o.d"
  "/root/repo/src/baselines/scheduled.cpp" "src/baselines/CMakeFiles/coreda_baselines.dir/scheduled.cpp.o" "gcc" "src/baselines/CMakeFiles/coreda_baselines.dir/scheduled.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/coreda_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/planning/CMakeFiles/coreda_planning.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/coreda_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coreda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
