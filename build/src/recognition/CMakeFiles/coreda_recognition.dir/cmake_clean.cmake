file(REMOVE_RECURSE
  "CMakeFiles/coreda_recognition.dir/recognizer.cpp.o"
  "CMakeFiles/coreda_recognition.dir/recognizer.cpp.o.d"
  "CMakeFiles/coreda_recognition.dir/tracker.cpp.o"
  "CMakeFiles/coreda_recognition.dir/tracker.cpp.o.d"
  "libcoreda_recognition.a"
  "libcoreda_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
