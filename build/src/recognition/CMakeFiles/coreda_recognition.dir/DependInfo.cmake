
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recognition/recognizer.cpp" "src/recognition/CMakeFiles/coreda_recognition.dir/recognizer.cpp.o" "gcc" "src/recognition/CMakeFiles/coreda_recognition.dir/recognizer.cpp.o.d"
  "/root/repo/src/recognition/tracker.cpp" "src/recognition/CMakeFiles/coreda_recognition.dir/tracker.cpp.o" "gcc" "src/recognition/CMakeFiles/coreda_recognition.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adl/CMakeFiles/coreda_adl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coreda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
