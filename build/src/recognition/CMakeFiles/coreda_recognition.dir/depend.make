# Empty dependencies file for coreda_recognition.
# This may be replaced when dependencies are built.
