file(REMOVE_RECURSE
  "libcoreda_recognition.a"
)
