file(REMOVE_RECURSE
  "libcoreda_trace.a"
)
