# Empty dependencies file for coreda_trace.
# This may be replaced when dependencies are built.
