file(REMOVE_RECURSE
  "CMakeFiles/coreda_trace.dir/dataset.cpp.o"
  "CMakeFiles/coreda_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/coreda_trace.dir/episode.cpp.o"
  "CMakeFiles/coreda_trace.dir/episode.cpp.o.d"
  "CMakeFiles/coreda_trace.dir/sensing_pipeline.cpp.o"
  "CMakeFiles/coreda_trace.dir/sensing_pipeline.cpp.o.d"
  "libcoreda_trace.a"
  "libcoreda_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
