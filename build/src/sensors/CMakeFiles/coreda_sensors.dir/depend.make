# Empty dependencies file for coreda_sensors.
# This may be replaced when dependencies are built.
