file(REMOVE_RECURSE
  "libcoreda_sensors.a"
)
