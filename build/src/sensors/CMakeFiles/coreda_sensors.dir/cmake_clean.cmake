file(REMOVE_RECURSE
  "CMakeFiles/coreda_sensors.dir/envelope.cpp.o"
  "CMakeFiles/coreda_sensors.dir/envelope.cpp.o.d"
  "CMakeFiles/coreda_sensors.dir/models.cpp.o"
  "CMakeFiles/coreda_sensors.dir/models.cpp.o.d"
  "CMakeFiles/coreda_sensors.dir/world.cpp.o"
  "CMakeFiles/coreda_sensors.dir/world.cpp.o.d"
  "libcoreda_sensors.a"
  "libcoreda_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
