file(REMOVE_RECURSE
  "libcoreda_sim.a"
)
