# Empty dependencies file for coreda_sim.
# This may be replaced when dependencies are built.
