file(REMOVE_RECURSE
  "CMakeFiles/coreda_sim.dir/scheduler.cpp.o"
  "CMakeFiles/coreda_sim.dir/scheduler.cpp.o.d"
  "libcoreda_sim.a"
  "libcoreda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
