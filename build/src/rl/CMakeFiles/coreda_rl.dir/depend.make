# Empty dependencies file for coreda_rl.
# This may be replaced when dependencies are built.
