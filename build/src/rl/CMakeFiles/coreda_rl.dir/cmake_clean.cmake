file(REMOVE_RECURSE
  "CMakeFiles/coreda_rl.dir/double_q.cpp.o"
  "CMakeFiles/coreda_rl.dir/double_q.cpp.o.d"
  "CMakeFiles/coreda_rl.dir/monitor.cpp.o"
  "CMakeFiles/coreda_rl.dir/monitor.cpp.o.d"
  "CMakeFiles/coreda_rl.dir/policy.cpp.o"
  "CMakeFiles/coreda_rl.dir/policy.cpp.o.d"
  "CMakeFiles/coreda_rl.dir/q_table.cpp.o"
  "CMakeFiles/coreda_rl.dir/q_table.cpp.o.d"
  "CMakeFiles/coreda_rl.dir/sarsa.cpp.o"
  "CMakeFiles/coreda_rl.dir/sarsa.cpp.o.d"
  "CMakeFiles/coreda_rl.dir/td_lambda.cpp.o"
  "CMakeFiles/coreda_rl.dir/td_lambda.cpp.o.d"
  "CMakeFiles/coreda_rl.dir/traces.cpp.o"
  "CMakeFiles/coreda_rl.dir/traces.cpp.o.d"
  "libcoreda_rl.a"
  "libcoreda_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
