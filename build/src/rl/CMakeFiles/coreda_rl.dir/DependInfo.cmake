
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/double_q.cpp" "src/rl/CMakeFiles/coreda_rl.dir/double_q.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/double_q.cpp.o.d"
  "/root/repo/src/rl/monitor.cpp" "src/rl/CMakeFiles/coreda_rl.dir/monitor.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/monitor.cpp.o.d"
  "/root/repo/src/rl/policy.cpp" "src/rl/CMakeFiles/coreda_rl.dir/policy.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/policy.cpp.o.d"
  "/root/repo/src/rl/q_table.cpp" "src/rl/CMakeFiles/coreda_rl.dir/q_table.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/q_table.cpp.o.d"
  "/root/repo/src/rl/sarsa.cpp" "src/rl/CMakeFiles/coreda_rl.dir/sarsa.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/sarsa.cpp.o.d"
  "/root/repo/src/rl/td_lambda.cpp" "src/rl/CMakeFiles/coreda_rl.dir/td_lambda.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/td_lambda.cpp.o.d"
  "/root/repo/src/rl/traces.cpp" "src/rl/CMakeFiles/coreda_rl.dir/traces.cpp.o" "gcc" "src/rl/CMakeFiles/coreda_rl.dir/traces.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coreda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
