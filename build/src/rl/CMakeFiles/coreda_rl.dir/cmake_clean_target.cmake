file(REMOVE_RECURSE
  "libcoreda_rl.a"
)
