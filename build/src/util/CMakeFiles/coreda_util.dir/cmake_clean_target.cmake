file(REMOVE_RECURSE
  "libcoreda_util.a"
)
