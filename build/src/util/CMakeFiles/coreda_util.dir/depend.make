# Empty dependencies file for coreda_util.
# This may be replaced when dependencies are built.
