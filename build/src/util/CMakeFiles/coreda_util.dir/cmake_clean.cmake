file(REMOVE_RECURSE
  "CMakeFiles/coreda_util.dir/csv.cpp.o"
  "CMakeFiles/coreda_util.dir/csv.cpp.o.d"
  "CMakeFiles/coreda_util.dir/flags.cpp.o"
  "CMakeFiles/coreda_util.dir/flags.cpp.o.d"
  "CMakeFiles/coreda_util.dir/logging.cpp.o"
  "CMakeFiles/coreda_util.dir/logging.cpp.o.d"
  "CMakeFiles/coreda_util.dir/rng.cpp.o"
  "CMakeFiles/coreda_util.dir/rng.cpp.o.d"
  "CMakeFiles/coreda_util.dir/stats.cpp.o"
  "CMakeFiles/coreda_util.dir/stats.cpp.o.d"
  "CMakeFiles/coreda_util.dir/table.cpp.o"
  "CMakeFiles/coreda_util.dir/table.cpp.o.d"
  "libcoreda_util.a"
  "libcoreda_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
