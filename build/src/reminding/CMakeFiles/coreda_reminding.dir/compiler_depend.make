# Empty compiler generated dependencies file for coreda_reminding.
# This may be replaced when dependencies are built.
