file(REMOVE_RECURSE
  "libcoreda_reminding.a"
)
