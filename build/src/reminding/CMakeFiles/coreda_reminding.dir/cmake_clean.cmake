file(REMOVE_RECURSE
  "CMakeFiles/coreda_reminding.dir/catalog.cpp.o"
  "CMakeFiles/coreda_reminding.dir/catalog.cpp.o.d"
  "CMakeFiles/coreda_reminding.dir/reminder.cpp.o"
  "CMakeFiles/coreda_reminding.dir/reminder.cpp.o.d"
  "CMakeFiles/coreda_reminding.dir/trigger.cpp.o"
  "CMakeFiles/coreda_reminding.dir/trigger.cpp.o.d"
  "libcoreda_reminding.a"
  "libcoreda_reminding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_reminding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
