# Empty dependencies file for bench_table4_predict.
# This may be replaced when dependencies are built.
