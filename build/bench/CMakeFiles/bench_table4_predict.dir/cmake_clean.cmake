file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_predict.dir/table4_predict.cpp.o"
  "CMakeFiles/bench_table4_predict.dir/table4_predict.cpp.o.d"
  "bench_table4_predict"
  "bench_table4_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
