file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_extract.dir/table3_extract.cpp.o"
  "CMakeFiles/bench_table3_extract.dir/table3_extract.cpp.o.d"
  "bench_table3_extract"
  "bench_table3_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
