file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduled_vs_context.dir/scheduled_vs_context.cpp.o"
  "CMakeFiles/bench_scheduled_vs_context.dir/scheduled_vs_context.cpp.o.d"
  "bench_scheduled_vs_context"
  "bench_scheduled_vs_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduled_vs_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
