# Empty compiler generated dependencies file for bench_scheduled_vs_context.
# This may be replaced when dependencies are built.
