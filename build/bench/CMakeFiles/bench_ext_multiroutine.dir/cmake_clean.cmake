file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiroutine.dir/ext_multiroutine.cpp.o"
  "CMakeFiles/bench_ext_multiroutine.dir/ext_multiroutine.cpp.o.d"
  "bench_ext_multiroutine"
  "bench_ext_multiroutine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiroutine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
