# Empty compiler generated dependencies file for bench_ext_multiroutine.
# This may be replaced when dependencies are built.
