# Empty dependencies file for bench_personalization.
# This may be replaced when dependencies are built.
