file(REMOVE_RECURSE
  "CMakeFiles/bench_personalization.dir/personalization.cpp.o"
  "CMakeFiles/bench_personalization.dir/personalization.cpp.o.d"
  "bench_personalization"
  "bench_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
