# Empty dependencies file for bench_ablation_radio.
# This may be replaced when dependencies are built.
