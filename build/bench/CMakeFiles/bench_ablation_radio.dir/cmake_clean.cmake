file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_radio.dir/ablation_radio.cpp.o"
  "CMakeFiles/bench_ablation_radio.dir/ablation_radio.cpp.o.d"
  "bench_ablation_radio"
  "bench_ablation_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
