# Empty compiler generated dependencies file for bench_recognition.
# This may be replaced when dependencies are built.
