file(REMOVE_RECURSE
  "libcoreda_cli_lib.a"
)
