file(REMOVE_RECURSE
  "CMakeFiles/coreda_cli_lib.dir/cli_commands.cpp.o"
  "CMakeFiles/coreda_cli_lib.dir/cli_commands.cpp.o.d"
  "libcoreda_cli_lib.a"
  "libcoreda_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
