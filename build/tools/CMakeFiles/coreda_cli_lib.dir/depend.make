# Empty dependencies file for coreda_cli_lib.
# This may be replaced when dependencies are built.
