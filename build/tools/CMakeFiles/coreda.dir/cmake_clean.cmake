file(REMOVE_RECURSE
  "CMakeFiles/coreda.dir/coreda_main.cpp.o"
  "CMakeFiles/coreda.dir/coreda_main.cpp.o.d"
  "coreda"
  "coreda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coreda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
