# Empty dependencies file for coreda.
# This may be replaced when dependencies are built.
