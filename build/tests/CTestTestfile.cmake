# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_pavenet[1]_include.cmake")
include("/root/repo/build/tests/test_adl[1]_include.cmake")
include("/root/repo/build/tests/test_patient[1]_include.cmake")
include("/root/repo/build/tests/test_rl[1]_include.cmake")
include("/root/repo/build/tests/test_planning[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_reminding[1]_include.cmake")
include("/root/repo/build/tests/test_recognition[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
