file(REMOVE_RECURSE
  "CMakeFiles/test_planning.dir/planning/codec_test.cpp.o"
  "CMakeFiles/test_planning.dir/planning/codec_test.cpp.o.d"
  "CMakeFiles/test_planning.dir/planning/learner_test.cpp.o"
  "CMakeFiles/test_planning.dir/planning/learner_test.cpp.o.d"
  "CMakeFiles/test_planning.dir/planning/multi_routine_test.cpp.o"
  "CMakeFiles/test_planning.dir/planning/multi_routine_test.cpp.o.d"
  "CMakeFiles/test_planning.dir/planning/reward_test.cpp.o"
  "CMakeFiles/test_planning.dir/planning/reward_test.cpp.o.d"
  "CMakeFiles/test_planning.dir/planning/serialize_test.cpp.o"
  "CMakeFiles/test_planning.dir/planning/serialize_test.cpp.o.d"
  "test_planning"
  "test_planning.pdb"
  "test_planning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
