file(REMOVE_RECURSE
  "CMakeFiles/test_rl.dir/rl/double_q_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/double_q_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/gridworld_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/gridworld_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/monitor_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/monitor_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/policy_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/policy_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/q_table_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/q_table_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/sarsa_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/sarsa_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/td_lambda_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/td_lambda_test.cpp.o.d"
  "CMakeFiles/test_rl.dir/rl/traces_test.cpp.o"
  "CMakeFiles/test_rl.dir/rl/traces_test.cpp.o.d"
  "test_rl"
  "test_rl.pdb"
  "test_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
