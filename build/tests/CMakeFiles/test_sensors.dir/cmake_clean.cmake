file(REMOVE_RECURSE
  "CMakeFiles/test_sensors.dir/sensors/envelope_test.cpp.o"
  "CMakeFiles/test_sensors.dir/sensors/envelope_test.cpp.o.d"
  "CMakeFiles/test_sensors.dir/sensors/models_test.cpp.o"
  "CMakeFiles/test_sensors.dir/sensors/models_test.cpp.o.d"
  "CMakeFiles/test_sensors.dir/sensors/world_test.cpp.o"
  "CMakeFiles/test_sensors.dir/sensors/world_test.cpp.o.d"
  "test_sensors"
  "test_sensors.pdb"
  "test_sensors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
