file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/escalation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/escalation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/home_test.cpp.o"
  "CMakeFiles/test_core.dir/core/home_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/lifecycle_test.cpp.o"
  "CMakeFiles/test_core.dir/core/lifecycle_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scenario_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scenario_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/system_test.cpp.o"
  "CMakeFiles/test_core.dir/core/system_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
