file(REMOVE_RECURSE
  "CMakeFiles/test_recognition.dir/recognition/recognizer_test.cpp.o"
  "CMakeFiles/test_recognition.dir/recognition/recognizer_test.cpp.o.d"
  "CMakeFiles/test_recognition.dir/recognition/tracker_test.cpp.o"
  "CMakeFiles/test_recognition.dir/recognition/tracker_test.cpp.o.d"
  "test_recognition"
  "test_recognition.pdb"
  "test_recognition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
