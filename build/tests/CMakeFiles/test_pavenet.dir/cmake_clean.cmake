file(REMOVE_RECURSE
  "CMakeFiles/test_pavenet.dir/pavenet/base_station_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/base_station_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/calibration_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/calibration_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/detector_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/detector_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/eeprom_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/eeprom_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/energy_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/energy_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/led_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/led_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/node_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/node_test.cpp.o.d"
  "CMakeFiles/test_pavenet.dir/pavenet/radio_test.cpp.o"
  "CMakeFiles/test_pavenet.dir/pavenet/radio_test.cpp.o.d"
  "test_pavenet"
  "test_pavenet.pdb"
  "test_pavenet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pavenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
