# Empty dependencies file for test_pavenet.
# This may be replaced when dependencies are built.
