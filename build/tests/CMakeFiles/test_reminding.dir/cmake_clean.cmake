file(REMOVE_RECURSE
  "CMakeFiles/test_reminding.dir/reminding/catalog_test.cpp.o"
  "CMakeFiles/test_reminding.dir/reminding/catalog_test.cpp.o.d"
  "CMakeFiles/test_reminding.dir/reminding/reminder_test.cpp.o"
  "CMakeFiles/test_reminding.dir/reminding/reminder_test.cpp.o.d"
  "CMakeFiles/test_reminding.dir/reminding/trigger_test.cpp.o"
  "CMakeFiles/test_reminding.dir/reminding/trigger_test.cpp.o.d"
  "test_reminding"
  "test_reminding.pdb"
  "test_reminding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reminding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
