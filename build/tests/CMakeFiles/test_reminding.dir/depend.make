# Empty dependencies file for test_reminding.
# This may be replaced when dependencies are built.
