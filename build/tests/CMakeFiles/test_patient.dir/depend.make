# Empty dependencies file for test_patient.
# This may be replaced when dependencies are built.
