file(REMOVE_RECURSE
  "CMakeFiles/test_patient.dir/patient/actor_test.cpp.o"
  "CMakeFiles/test_patient.dir/patient/actor_test.cpp.o.d"
  "CMakeFiles/test_patient.dir/patient/generator_test.cpp.o"
  "CMakeFiles/test_patient.dir/patient/generator_test.cpp.o.d"
  "CMakeFiles/test_patient.dir/patient/profile_test.cpp.o"
  "CMakeFiles/test_patient.dir/patient/profile_test.cpp.o.d"
  "test_patient"
  "test_patient.pdb"
  "test_patient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_patient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
