// Caregiver report: a week of assisted ADLs across dementia severities.
//
// The paper's motivation is reducing caregiver burden; the quantity a care
// facility would actually look at is "how often does the resident finish
// the activity, and how much prompting did it take". This example runs a
// simulated week (tea-making + tooth-brushing, one session of each per
// day) for residents at several severity levels and prints the summary a
// caregiver dashboard would show. Per-session rows are also written to
// caregiver_report.csv for further analysis.

#include <cstdio>
#include <fstream>

#include "core/system.hpp"
#include "trace/dataset.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace coreda;

struct Aggregate {
  int sessions = 0;
  int completed = 0;
  std::size_t prompts = 0;
  std::size_t minimal = 0;
  std::size_t specific = 0;
  double total_seconds = 0.0;
};

}  // namespace

int main() {
  adl::AdlLibrary library;
  constexpr int kDays = 7;
  const double severities[] = {0.0, 0.3, 0.6, 0.9};

  std::ofstream csv_file("caregiver_report.csv");
  util::CsvWriter csv(csv_file);
  csv.header({"severity", "day", "adl", "completed", "steps", "prompts",
              "minimal", "specific", "praises", "elapsed_s"});

  util::TextTable table("Weekly caregiver report (simulated)");
  table.set_header({"Severity", "ADL", "Completed", "Prompts/session",
                    "Minimal : specific", "Mean duration"});

  for (double severity : severities) {
    for (const char* adl_name : {"Tea-making", "Tooth-brushing"}) {
      const adl::Adl& adl = library.by_name(adl_name);

      core::SystemConfig config;
      config.seed = 1000 + static_cast<std::uint64_t>(severity * 10);
      core::CoredaSystem system(library, adl, config);
      trace::DatasetBuilder datasets(
          library, patient::PatientProfile::with_severity("R", 0.0),
          config.seed + 1);
      system.pretrain(datasets.sensed_training_set(adl, 120));

      patient::PatientProfile profile =
          patient::PatientProfile::with_severity("Resident", severity);

      Aggregate agg;
      for (int day = 0; day < kDays; ++day) {
        const core::SessionResult r =
            system.run_session(profile, sim::Duration::minutes(45.0));
        ++agg.sessions;
        agg.completed += r.completed;
        agg.prompts += r.prompts_total;
        agg.minimal += r.prompts_minimal;
        agg.specific += r.prompts_specific;
        agg.total_seconds += r.elapsed.to_seconds();

        csv.field(severity)
            .field(day)
            .field(adl_name)
            .field(r.completed)
            .field(static_cast<std::uint64_t>(r.steps_completed))
            .field(static_cast<std::uint64_t>(r.prompts_total))
            .field(static_cast<std::uint64_t>(r.prompts_minimal))
            .field(static_cast<std::uint64_t>(r.prompts_specific))
            .field(static_cast<std::uint64_t>(r.praises))
            .field(r.elapsed.to_seconds());
        csv.end_row();
      }

      table.add_row(
          {util::format_fixed(severity, 1), adl_name,
           std::to_string(agg.completed) + "/" + std::to_string(agg.sessions),
           util::format_fixed(
               static_cast<double>(agg.prompts) / agg.sessions, 1),
           std::to_string(agg.minimal) + " : " + std::to_string(agg.specific),
           util::format_fixed(agg.total_seconds / agg.sessions, 0) + " s"});
    }
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts("\nPer-session rows written to caregiver_report.csv");
  return 0;
}
