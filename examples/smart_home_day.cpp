// A day in an instrumented home — the multi-ADL deployment.
//
// Every tool in the house carries a PAVENET node on one shared radio. The
// resident moves through their day (tooth-brushing in the morning, tea in
// the afternoon, hand-washing before dinner, dressing in between); the
// HomeDeployment recognizes each activity from the usage stream, routes
// StepIDs to that activity's learned planner, and assists — optionally
// primed by the care plan's schedule hints.

#include <cstdio>

#include "core/home.hpp"

int main() {
  using namespace coreda;

  adl::AdlLibrary library;
  core::SystemConfig config;
  config.user_name = "Sato";
  config.seed = 2026;

  std::puts("Deploying nodes on every tool and training per-ADL planners"
            " (120 sensed episodes each)...");
  core::HomeDeployment home(library, config);
  home.pretrain(120, 2027);
  std::printf("Recognizer knows %zu activities.\n\n",
              home.recognizer().known_adls());

  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Sato", 0.5);
  profile.comply_minimal = 0.9;
  profile.comply_specific = 1.0;

  struct PlannedActivity {
    const char* when;
    const char* adl;
    const char* hint;  // the care plan's expectation ("" = none)
  };
  const PlannedActivity day[] = {
      {"07:30", "Tooth-brushing", "Tooth-brushing"},
      {"08:10", "Dressing", ""},
      {"14:00", "Tea-making", "Tea-making"},
      {"18:30", "Hand-washing", "Hand-washing"},  // pre-dinner care plan
      {"21:45", "Tooth-brushing", "Tooth-brushing"},
  };

  int completed = 0;
  int recognized = 0;
  for (const PlannedActivity& planned : day) {
    // Idle home time before the activity.
    home.scheduler().run_for(sim::Duration::minutes(45.0));

    const core::HomeSessionResult result = home.run_session(
        planned.adl, profile, sim::Duration::minutes(40.0), planned.hint);
    completed += result.completed;
    recognized += result.recognized_correctly;

    std::printf("[%s] %-15s  recognized: %-15s (%zu steps)  %s  "
                "prompts: %zu, praises: %zu\n",
                planned.when, planned.adl,
                result.recognized_adl.empty() ? "(hint only)"
                                              : result.recognized_adl.c_str(),
                result.steps_to_recognition,
                result.completed ? "completed" : "NOT completed",
                result.prompts_total, result.praises);
  }

  std::printf("\nDay summary: %d/5 activities completed, %d/5 recognized "
              "from the usage stream.\n",
              completed, recognized);
  return completed == 5 ? 0 : 1;
}
