// Generalizing to a new ADL — the paper's key deployment claim:
//
//   "Since the programs on different PAVENETs are almost the same, it is
//    very convenient to generalize the sensing subsystem to other ADLs.
//    What we need do is only attach one PAVENET to a tool, and configure
//    its uid as the tool ID."
//
// This example builds a coffee-making ADL from scratch — new tools, new
// routine, fresh nodes — and shows the identical pipeline (sensing,
// planning, reminding) working on it without touching any library code.

#include <cstdio>

#include "core/system.hpp"
#include "patient/generator.hpp"
#include "planning/learner.hpp"
#include "trace/sensing_pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace coreda;

  // --- 1. Define the tools and "attach a PAVENET to each" --------------
  // (ids are arbitrary nonzero uids; sensor kinds and usage statistics
  //  describe the physical manipulation).
  constexpr adl::ToolId kGrinder = 61;
  constexpr adl::ToolId kFilter = 62;
  constexpr adl::ToolId kCoffeePot = 63;
  constexpr adl::ToolId kMug = 64;

  adl::AdlLibrary library;  // reuse the default catalog for its registry...
  adl::ToolRegistry tools;  // ...or build a standalone registry:
  auto add_tool = [&tools](adl::ToolId id, const char* name,
                           adl::SensorKind sensor, double mean_s,
                           double stddev_s, double intensity) {
    adl::Tool t;
    t.id = id;
    t.name = name;
    t.sensor = sensor;
    t.typical_usage_mean = sim::Duration::seconds(mean_s);
    t.typical_usage_stddev = sim::Duration::seconds(stddev_s);
    t.usage_intensity = intensity;
    tools.add(t);
  };
  add_tool(kGrinder, "coffee grinder", adl::SensorKind::kAccelerometer,
           15.0, 3.0, 1.3);
  add_tool(kFilter, "paper filter", adl::SensorKind::kAccelerometer,
           4.0, 1.0, 0.8);
  add_tool(kCoffeePot, "coffee pot", adl::SensorKind::kAccelerometer,
           8.0, 2.0, 1.2);
  add_tool(kMug, "mug", adl::SensorKind::kAccelerometer, 6.0, 1.5, 0.9);

  // --- 2. Describe the user's routine ----------------------------------
  adl::Adl coffee(
      "Coffee-making",
      {adl::AdlRoutine("standard",
                       {adl::AdlStep{"Grind the beans", kGrinder},
                        adl::AdlStep{"Put filter in the pot", kFilter},
                        adl::AdlStep{"Brew the coffee", kCoffeePot},
                        adl::AdlStep{"Drink from the mug", kMug}})});

  // --- 3. Sensing subsystem works unchanged ----------------------------
  trace::SensingPipeline pipeline(tools, coffee.tools(), /*seed=*/21);
  patient::BehaviorGenerator generator(
      coffee, tools, patient::PatientProfile::with_severity("Sato", 0.0),
      util::Rng(22));

  util::TextTable extraction("Extract precision of the new ADL's steps");
  extraction.set_header({"Step", "Tool", "Extract precision (100 trials)"});
  for (const adl::AdlStep& step : coffee.primary_routine().steps()) {
    int hits = 0;
    util::Rng durations(23 + step.tool);
    const adl::Tool& tool = tools.at(step.tool);
    for (int i = 0; i < 100; ++i) {
      const double mean = tool.typical_usage_mean.to_seconds();
      const double drawn = std::max(
          mean * 0.4,
          durations.normal(mean, tool.typical_usage_stddev.to_seconds()));
      hits += pipeline.single_tool_trial(step.tool,
                                         sim::Duration::seconds(drawn));
    }
    extraction.add_row({step.name, tool.name,
                        util::format_percent(hits / 100.0)});
  }
  std::fputs(extraction.render().c_str(), stdout);

  // --- 4. Planning subsystem works unchanged ---------------------------
  planning::RoutineLearner planner(coffee, util::Rng(24));
  for (int i = 0; i < 120; ++i) {
    const auto episode = pipeline.run(generator.timed_episode());
    planner.train_episode(episode.extracted);
  }
  std::printf("\nPlanner accuracy on Coffee-making after 120 sensed "
              "episodes: %.0f%%\n",
              planner.greedy_accuracy() * 100.0);
  for (const planning::PlannerState& s : planner.predicting_states()) {
    const auto prompt = planner.predict(s);
    if (!prompt) continue;
    std::printf("  <%2u,%2u> -> prompt \"%s\" (%s)\n", s.prev, s.cur,
                tools.at(prompt->action.tool).name.c_str(),
                planning::to_string(prompt->action.level).c_str());
  }
  return 0;
}
