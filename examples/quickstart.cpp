// Quickstart: the smallest useful CoReDA program.
//
// 1. Load the deployment catalog (tools + ADLs from the paper's Table 2).
// 2. Train the planning subsystem on recorded tea-making processes.
// 3. Ask it what to prompt from a given context.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "adl/library.hpp"
#include "planning/learner.hpp"

int main() {
  using namespace coreda;

  // The deployment: every tool carries a PAVENET node whose uid is the
  // ToolID; an ADL step's StepID is its main tool's ID.
  adl::AdlLibrary library;
  const adl::Adl& tea = library.tea_making();

  std::puts("Tea-making routine:");
  for (const adl::AdlStep& step : tea.primary_routine().steps()) {
    std::printf("  step %u: %s (tool: %s)\n", step.step_id(),
                step.name.c_str(), library.tools().at(step.tool).name.c_str());
  }

  // The planning subsystem: TD(lambda) Q-Learning over
  // <StepID_{i-1}, StepID_i> states and <ToolID, Level> prompts.
  planning::RoutineLearner planner(tea, util::Rng(/*seed=*/42));

  // Train on 120 recorded processes (the paper's training-set size). Here
  // the recordings are the clean routine; in the full system they come out
  // of the sensing subsystem (see trace::DatasetBuilder).
  std::vector<adl::StepId> recording;
  for (const adl::AdlStep& step : tea.primary_routine().steps()) {
    recording.push_back(step.step_id());
  }
  for (int i = 0; i < 120; ++i) planner.train_episode(recording);

  std::printf("\nPolicy accuracy after training: %.0f%%\n",
              planner.greedy_accuracy() * 100.0);

  // Ask for a prompt: the user put tea leaves in the kettle (step 21) and
  // is now stuck. What next?
  const auto prompt = planner.predict(adl::kIdleStep, adl::tools::kTeaBox);
  if (prompt) {
    std::printf(
        "Context <idle, tea box> -> prompt tool %u (%s), level %s\n",
        prompt->action.tool,
        library.tools().at(prompt->action.tool).name.c_str(),
        planning::to_string(prompt->action.level).c_str());
  }

  // The planner also knows what to do when the user has not even started.
  const auto first = planner.predict(adl::kIdleStep, adl::kIdleStep);
  if (first) {
    std::printf("Context <idle, idle>   -> prompt tool %u (%s)\n",
                first->action.tool,
                library.tools().at(first->action.tool).name.c_str());
  }
  return 0;
}
