// A full assisted tea-making session — the paper's motivating scenario.
//
// A simulated care recipient with moderate dementia attempts the routine;
// the complete CoReDA stack (PAVENET nodes on every tool, radio, base
// station, TD(lambda) planner, reminding subsystem) watches and intervenes.
// The program prints the interleaved transcript: what the patient did,
// what the system sensed, and every reminder with its modalities.

#include <cstdio>

#include "core/system.hpp"
#include "trace/dataset.hpp"

int main() {
  using namespace coreda;

  adl::AdlLibrary library;
  core::SystemConfig config;
  config.user_name = "Tanaka";
  config.seed = 7;

  core::CoredaSystem coreda(library, library.tea_making(), config);

  // Learn Mr. Tanaka's routine from sensed recordings first.
  trace::DatasetBuilder datasets(
      library, patient::PatientProfile::with_severity("Tanaka", 0.0), 11);
  coreda.pretrain(datasets.sensed_training_set(library.tea_making(), 120));
  std::printf("Planner trained: policy accuracy %.0f%%\n\n",
              coreda.learner().greedy_accuracy() * 100.0);

  // A moderately impaired patient: freezes or grabs wrong tools at times,
  // but responds to prompts.
  patient::PatientProfile profile =
      patient::PatientProfile::with_severity("Tanaka", 0.6);
  profile.comply_specific = 1.0;
  profile.comply_minimal = 0.9;

  const core::SessionResult result =
      coreda.run_session(profile, sim::Duration::minutes(30.0));

  std::puts("--- patient transcript ---");
  for (const patient::PatientEvent& ev : coreda.last_actor()->events()) {
    std::printf("[%7.1fs] %-16s", ev.at.to_seconds(),
                std::string(to_string(ev.kind)).c_str());
    if (ev.tool != adl::kNoTool) {
      std::printf(" %s", library.tools().at(ev.tool).name.c_str());
    }
    std::puts("");
  }

  std::puts("\n--- reminders delivered ---");
  for (const reminding::DeliveredReminder& r : coreda.reminder().log()) {
    std::printf("[%7.1fs] %-12s %-8s \"%s\" (green LED x%d on %s",
                r.at.to_seconds(), std::string(to_string(r.trigger)).c_str(),
                planning::to_string(r.level).c_str(), r.text.c_str(),
                static_cast<int>(r.green_blinks),
                library.tools().at(r.target_tool).name.c_str());
    if (r.wrong_tool) {
      std::printf(", red LED x%d on %s", static_cast<int>(r.red_blinks),
                  library.tools().at(*r.wrong_tool).name.c_str());
    }
    std::puts(")");
  }

  std::puts("\n--- session result ---");
  std::printf("completed: %s in %.0f s\n", result.completed ? "yes" : "no",
              result.elapsed.to_seconds());
  std::printf("steps completed: %zu/4\n", result.steps_completed);
  std::printf("prompts: %zu total (%zu idle, %zu wrong-tool; %zu minimal, "
              "%zu specific), %zu praises\n",
              result.prompts_total, result.prompts_idle,
              result.prompts_wrong_tool, result.prompts_minimal,
              result.prompts_specific, result.praises);
  std::printf("radio: %llu frames sent, %.1f%% delivered\n",
              static_cast<unsigned long long>(coreda.channel().stats().sent),
              coreda.channel().stats().delivery_ratio() * 100.0);
  return result.completed ? 0 : 1;
}
